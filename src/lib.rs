//! Umbrella package for the StencilFlow reproduction workspace.
//!
//! This crate only hosts the repository-level examples (`examples/`) and
//! cross-crate integration tests (`tests/`); the actual functionality lives
//! in the `stencilflow-*` crates under `crates/`.

#![forbid(unsafe_code)]
pub use stencilflow as api;
