//! The static shard-link sizing pass against the live runtime watchdog:
//! the undersized-link deadlock that `tests/sharded_golden.rs` detects at
//! runtime must be *predicted* by `analyze_shard_links` from the program
//! and configuration alone — with the same words, on the same constants —
//! and the default sizing it proves safe must actually run clean.

use std::time::Duration;

use stencilflow::analysis::{analyze_sharding, Severity};
use stencilflow::core::{analyze_shard_links, ShardLinkSpec};
use stencilflow::reference::{generate_inputs, ReferenceExecutor, ShardConfig};
use stencilflow::workloads::jacobi3d;

const STEPS: usize = 4;
const SHARDS: usize = 4;
const WINDOW: usize = 1;

fn program() -> stencilflow::StencilProgram {
    jacobi3d(1, &[24, 10, 8], 1)
}

/// jacobi3d feeds one output back into one input per step.
const FEEDBACK_PAIRS: usize = 1;

fn spec(link_capacity_words: Option<usize>) -> ShardLinkSpec {
    let spec = ShardLinkSpec::new(SHARDS, WINDOW, STEPS).with_feedback_pairs(FEEDBACK_PAIRS);
    match link_capacity_words {
        Some(words) => spec.with_link_capacity_words(words),
        None => spec,
    }
}

#[test]
fn static_pass_predicts_the_undersized_link_deadlock() {
    let program = program();

    // Static verdict first: 4 words cannot hold one frame.
    let requirement = analyze_shard_links(&program, &spec(Some(4))).unwrap();
    assert!(
        requirement.deadlock_predicted,
        "static pass missed the undersized link: {requirement:?}"
    );

    // Now run the exact same configuration (window pinned so the runtime
    // planner resolves the same geometry the static pass analyzed).
    let inputs = generate_inputs(&program, 29);
    let outcome = ReferenceExecutor::new()
        .run_steps_sharded(
            &program,
            &inputs,
            STEPS,
            &ShardConfig::shards(SHARDS)
                .with_window(WINDOW)
                .with_link_capacity_words(4)
                .with_watchdog(Duration::from_millis(500)),
        )
        .unwrap();
    assert!(outcome.report.degraded, "undersized link did not degrade");
    let watchdog = outcome
        .report
        .watchdog
        .as_ref()
        .expect("watchdog report for the undersized link");

    // Prediction and detection must agree number for number: same shared
    // constants, same halo geometry, same verdict.
    assert_eq!(
        watchdog.configured_capacity_words,
        requirement.configured_capacity_words
    );
    assert_eq!(
        watchdog.required_frame_words,
        requirement.required_frame_words
    );
    assert!(watchdog.analysis_agrees);
    assert_eq!(outcome.report.shards, requirement.shards);
    assert_eq!(outcome.report.window, requirement.window);
    assert_eq!(outcome.report.radius, requirement.radius);
    assert_eq!(outcome.report.halo_rows, requirement.halo_rows);
}

#[test]
fn static_pass_proves_the_default_sizing_safe_and_it_runs_clean() {
    let program = program();
    let requirement = analyze_shard_links(&program, &spec(None)).unwrap();
    assert!(!requirement.deadlock_predicted);
    assert!(requirement.configured_capacity_words >= requirement.required_frame_words);

    let inputs = generate_inputs(&program, 29);
    let outcome = ReferenceExecutor::new()
        .run_steps_sharded(
            &program,
            &inputs,
            STEPS,
            &ShardConfig::shards(SHARDS).with_window(WINDOW),
        )
        .unwrap();
    assert!(
        !outcome.report.degraded,
        "default sizing degraded: {:?}",
        outcome.report.degrade_reason
    );
    assert!(outcome.report.watchdog.is_none());
}

#[test]
fn diagnostic_layer_reports_the_prediction_as_sf0301() {
    let (requirement, diags) = analyze_sharding(&program(), &spec(Some(4)));
    let requirement = requirement.unwrap();
    assert!(requirement.deadlock_predicted);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "SF0301");
    assert_eq!(diags[0].severity, Severity::Error);
}
