//! Golden suite for the sharded runtime: every combination of shard count
//! and fault schedule must produce outputs bitwise identical to the
//! tree-walking interpreter, unrecoverable faults must degrade (and still
//! match), and induced deadlocks must be *detected* — reported with the
//! starved edge — rather than hung.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use stencilflow::reference::{generate_inputs, FaultPlan, Grid, ReferenceExecutor, ShardConfig};
use stencilflow::workloads::jacobi3d;

const STEPS: usize = 4;

fn program() -> stencilflow::StencilProgram {
    jacobi3d(1, &[24, 10, 8], 1)
}

/// Ground truth: the tree-walking interpreter, stepped by hand through the
/// jacobi feedback pair (output `f1` feeds back into input `f0`).
fn interpreter_reference(
    executor: &ReferenceExecutor,
    program: &stencilflow::StencilProgram,
    inputs: &BTreeMap<String, Grid>,
) -> stencilflow::reference::ExecutionResult {
    let mut work = inputs.clone();
    let mut last = None;
    for _ in 0..STEPS {
        let result = executor.run_interpreted(program, &work).unwrap();
        work.insert("f0".to_string(), result.field("f1").unwrap().clone());
        last = Some(result);
    }
    last.expect("at least one step")
}

fn assert_bitwise_identical(
    program: &stencilflow::StencilProgram,
    reference: &stencilflow::reference::ExecutionResult,
    sharded: &stencilflow::reference::ExecutionResult,
    context: &str,
) {
    for name in program.outputs() {
        let expected = reference.field(name).expect("reference output");
        let actual = sharded.field(name).expect("sharded output");
        assert_eq!(
            expected.shape(),
            actual.shape(),
            "{context}: shape of `{name}`"
        );
        for (index, (e, a)) in expected
            .as_slice()
            .iter()
            .zip(actual.as_slice())
            .enumerate()
        {
            assert_eq!(
                e.to_bits(),
                a.to_bits(),
                "{context}: `{name}` differs at linear index {index} ({e} vs {a})"
            );
        }
        assert_eq!(
            reference.valid_mask(name),
            sharded.valid_mask(name),
            "{context}: validity mask of `{name}`"
        );
    }
}

#[test]
fn sharded_runs_stay_bitwise_identical_to_the_interpreter_under_every_fault_schedule() {
    let program = program();
    let inputs = generate_inputs(&program, 29);
    let executor = ReferenceExecutor::new();
    let reference = interpreter_reference(&executor, &program, &inputs);
    let schedules: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        ("dropped_halo", FaultPlan::dropped_halo(41)),
        ("delayed_halo", FaultPlan::delayed_halo(41)),
        ("duplicated_halo", FaultPlan::duplicated_halo(41)),
        ("corrupted_halo", FaultPlan::corrupted_halo(41)),
        ("worker_panic", FaultPlan::worker_panic(1, 1)),
    ];
    for shards in [2usize, 4, 8] {
        for (name, plan) in &schedules {
            let config = ShardConfig::shards(shards).with_fault_plan(plan.clone());
            let outcome = executor
                .run_steps_sharded(&program, &inputs, STEPS, &config)
                .unwrap();
            assert_bitwise_identical(
                &program,
                &reference,
                &outcome.result,
                &format!("{shards} shards, schedule {name}"),
            );
            if *name == "worker_panic" {
                // A dead worker is unrecoverable: the run must degrade to
                // the single-shard tier — and, per the assertion above,
                // still match the interpreter bit for bit.
                assert!(
                    outcome.report.degraded,
                    "{shards} shards: worker panic did not degrade"
                );
            } else {
                assert!(
                    !outcome.report.degraded,
                    "{shards} shards, schedule {name}: degraded unnecessarily ({:?})",
                    outcome.report.degrade_reason
                );
            }
        }
    }
}

#[test]
fn recovery_statistics_show_the_protocol_actually_ran() {
    // Guard against a trivially-passing suite: the dropped-halo schedule
    // must actually drop frames and recover them via resends, and the
    // corrupted-halo schedule must actually detect checksum mismatches.
    let program = program();
    let inputs = generate_inputs(&program, 29);
    let executor = ReferenceExecutor::new();
    let dropped = executor
        .run_steps_sharded(
            &program,
            &inputs,
            STEPS,
            &ShardConfig::shards(4).with_fault_plan(FaultPlan::dropped_halo(41)),
        )
        .unwrap();
    let injected: usize = dropped
        .report
        .per_shard
        .iter()
        .map(|s| s.faults_injected)
        .sum();
    let resent: usize = dropped
        .report
        .per_shard
        .iter()
        .map(|s| s.frames_resent)
        .sum();
    assert!(injected > 0, "no faults injected by the dropped-halo plan");
    assert!(
        resent >= injected,
        "dropped frames not recovered by resends"
    );
    let corrupted = executor
        .run_steps_sharded(
            &program,
            &inputs,
            STEPS,
            &ShardConfig::shards(4).with_fault_plan(FaultPlan::corrupted_halo(41)),
        )
        .unwrap();
    let detected: usize = corrupted
        .report
        .per_shard
        .iter()
        .map(|s| s.corrupt_detected)
        .sum();
    assert!(detected > 0, "no corrupt frames detected by the checksum");
}

#[test]
fn undersized_halo_link_is_detected_and_reported_not_hung() {
    // Induce the fig04 deadlock: a link too small to hold one halo frame
    // can never drain. The run must *detect* this — naming the starved
    // edge and agreeing with the static buffer analysis — then degrade
    // and still match the interpreter, all well within wall-clock bounds
    // (no sleep longer than the watchdog bound may be involved).
    let program = program();
    let inputs = generate_inputs(&program, 29);
    let executor = ReferenceExecutor::new();
    let reference = interpreter_reference(&executor, &program, &inputs);
    let watchdog = Duration::from_millis(500);
    let started = Instant::now();
    let outcome = executor
        .run_steps_sharded(
            &program,
            &inputs,
            STEPS,
            &ShardConfig::shards(4)
                .with_link_capacity_words(4)
                .with_watchdog(watchdog),
        )
        .unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "deadlock detection took {elapsed:?}"
    );
    assert!(outcome.report.degraded, "undersized link did not degrade");
    let report = outcome
        .report
        .watchdog
        .as_ref()
        .expect("watchdog report for the undersized link");
    assert!(
        report.starved_edge.contains("halo["),
        "starved edge `{}` does not name a halo link",
        report.starved_edge
    );
    assert!(
        report.configured_capacity_words < report.required_frame_words,
        "report does not show the capacity shortfall"
    );
    assert!(
        report.analysis_agrees,
        "live detection disagrees with the fig04-style analysis"
    );
    assert_bitwise_identical(&program, &reference, &outcome.result, "undersized link");
}

#[test]
fn stall_longer_than_the_watchdog_trips_it_and_still_matches() {
    let program = program();
    let inputs = generate_inputs(&program, 29);
    let executor = ReferenceExecutor::new();
    let reference = interpreter_reference(&executor, &program, &inputs);
    let outcome = executor
        .run_steps_sharded(
            &program,
            &inputs,
            STEPS,
            &ShardConfig::shards(3)
                .with_fault_plan(FaultPlan::worker_stall(1, 1, Duration::from_millis(400)))
                .with_watchdog(Duration::from_millis(100)),
        )
        .unwrap();
    assert!(
        outcome.report.degraded,
        "long stall did not trip the watchdog"
    );
    assert!(
        outcome.report.watchdog.is_some(),
        "watchdog report missing after a tripped stall"
    );
    assert_bitwise_identical(&program, &reference, &outcome.result, "stalled worker");
}
