//! Property-based cross-crate invariants: for randomly generated stencil
//! DAGs, the buffering analysis is structurally sound and the simulated
//! spatial execution matches the sequential reference executor.

use proptest::prelude::*;
use stencilflow::core::{analyze, AnalysisConfig};
use stencilflow::program::{StencilProgram, StencilProgramBuilder};
use stencilflow::reference::{generate_inputs, ReferenceExecutor};
use stencilflow::sim::{SimConfig, SimOutcome, Simulator};
use stencilflow_expr::DataType;

/// A randomly generated small stencil DAG over a 2D domain: each stage reads
/// one or two previous fields at small offsets and applies simple arithmetic.
fn arb_program() -> impl Strategy<Value = StencilProgram> {
    let stage = (0usize..3, -1i64..2, -1i64..2, 0usize..3, any::<bool>());
    proptest::collection::vec(stage, 1..6).prop_map(|stages| {
        let mut builder = StencilProgramBuilder::new("random", &[10, 12]).input(
            "src",
            DataType::Float32,
            &["i", "j"],
        );
        let mut produced = vec!["src".to_string()];
        for (index, (pick_a, di, dj, pick_b, use_second)) in stages.iter().enumerate() {
            let name = format!("s{index}");
            let a = produced[pick_a % produced.len()].clone();
            let b = produced[pick_b % produced.len()].clone();
            let access = |field: &str, di: i64, dj: i64| {
                let fi = if di == 0 {
                    "i".to_string()
                } else if di > 0 {
                    format!("i+{di}")
                } else {
                    format!("i{di}")
                };
                let fj = if dj == 0 {
                    "j".to_string()
                } else if dj > 0 {
                    format!("j+{dj}")
                } else {
                    format!("j{dj}")
                };
                format!("{field}[{fi},{fj}]")
            };
            let code = if *use_second {
                format!(
                    "0.5 * ({} + {}) + 0.125 * {}",
                    access(&a, *di, *dj),
                    access(&a, -di, -dj),
                    access(&b, 0, 0)
                )
            } else {
                format!("{} * 0.75 + 1.0", access(&a, *di, *dj))
            };
            builder = builder.stencil(&name, &code).shrink(&name);
            produced.push(name);
        }
        let last = produced.last().unwrap().clone();
        builder
            .output(&last)
            .build()
            .expect("generated programs are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The delay-buffer analysis always leaves at least one zero-delay edge
    /// per node and reports a pipeline latency no smaller than any single
    /// node's delay.
    #[test]
    fn delay_analysis_invariants(program in arb_program()) {
        let config = AnalysisConfig::paper_defaults();
        let analysis = analyze(&program, &config).unwrap();
        let dag = program.dag().unwrap();
        analysis.delay.check_invariants(&dag).unwrap();
        for node in dag.nodes() {
            prop_assert!(analysis.delay.pipeline_latency() >= analysis.delay.node_delay(&node.name));
        }
        // Eq. 1 consistency.
        let perf = &analysis.performance;
        prop_assert_eq!(perf.expected_cycles, perf.pipeline_latency + perf.iterations);
    }

    /// The spatial simulator completes (deadlock freedom with the computed
    /// buffers) and matches the sequential reference executor.
    #[test]
    fn simulator_matches_reference(program in arb_program()) {
        let config = AnalysisConfig::paper_defaults();
        let inputs = generate_inputs(&program, 123);
        let reference = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let report = Simulator::build(&program, &config, &SimConfig::default())
            .unwrap()
            .run(&inputs)
            .unwrap();
        prop_assert_eq!(report.outcome, SimOutcome::Completed);
        for output in program.outputs() {
            let err = reference
                .compare_field(output, report.output(output).unwrap())
                .unwrap();
            prop_assert!(err < 1e-4, "output {} diverges by {}", output, err);
        }
        // The pipeline is never slower than twice the analytical expectation
        // (and never faster than the iteration count).
        let analysis = analyze(&program, &config).unwrap();
        prop_assert!(report.cycles as f64 >= analysis.performance.iterations as f64 * 0.99);
        prop_assert!(report.cycles <= 3 * analysis.performance.expected_cycles + 1_000);
    }

    /// Fusion never changes program outputs.
    #[test]
    fn fusion_preserves_outputs(program in arb_program()) {
        let fused = stencilflow::dataflow::fuse_all(&program).unwrap();
        prop_assert!(fused.stencil_count() <= program.stencil_count());
        let inputs = generate_inputs(&program, 7);
        let before = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let after = ReferenceExecutor::new().run(&fused, &inputs).unwrap();
        for output in program.outputs() {
            let a = before.field(output).unwrap();
            let b = after.field(output).unwrap();
            prop_assert!(a.approx_eq(b, 1e-4));
        }
    }
}
