//! Cross-crate integration tests: the full pipeline from program description
//! to simulated spatial execution, validated against the reference executor.

use stencilflow::core::{AnalysisConfig, MultiDevicePlan, PartitionConfig};
use stencilflow::reference::{generate_inputs, ReferenceExecutor};
use stencilflow::sim::{SimConfig, SimOutcome, Simulator};
use stencilflow::workloads::{
    self, chain_program, horizontal_diffusion, jacobi2d, ChainSpec, HorizontalDiffusionSpec,
};
use stencilflow::Pipeline;

#[test]
fn json_round_trip_through_the_whole_stack() {
    let program = workloads::listing1::listing1_with_shape(&[8, 8, 8]);
    let json = stencilflow::program::to_json(&program);
    let pipeline = Pipeline::from_json(&json).unwrap();
    let result = pipeline.execute(11).unwrap();
    assert_eq!(result.simulation.outcome, SimOutcome::Completed);
    assert!(result.max_error_vs_reference < 1e-5);
}

#[test]
fn jacobi_chain_simulation_matches_reference_and_eq1() {
    let program = jacobi2d(4, &[24, 24], 1);
    let config = AnalysisConfig::paper_defaults();
    let analysis = stencilflow::core::analyze(&program, &config).unwrap();
    let inputs = generate_inputs(&program, 5);
    let reference = ReferenceExecutor::new().run(&program, &inputs).unwrap();
    let report = Simulator::build(&program, &config, &SimConfig::default())
        .unwrap()
        .run(&inputs)
        .unwrap();
    assert_eq!(report.outcome, SimOutcome::Completed);
    let err = reference
        .compare_field("f4", report.output("f4").unwrap())
        .unwrap();
    assert!(err < 1e-4);
    // Eq. 1: the measured cycle count is at least N and close to L + N.
    let n = program.space().num_cells() as u64;
    assert!(report.cycles >= n);
    assert!(report.cycles <= 2 * analysis.performance.expected_cycles + 1_000);
}

#[test]
fn fusion_mapping_and_simulation_agree_for_horizontal_diffusion() {
    let program = horizontal_diffusion(&HorizontalDiffusionSpec::small());
    let fused = stencilflow::dataflow::fuse_all(&program).unwrap();
    assert!(fused.stencil_count() < program.stencil_count());
    let result = Pipeline::new(program).execute(13).unwrap();
    assert_eq!(result.simulation.outcome, SimOutcome::Completed);
    assert!(result.max_error_vs_reference < 1e-4);
    // The generated kernels contain one autorun kernel per fused stencil.
    assert_eq!(
        result
            .kernel_code
            .matches("__attribute__((autorun))")
            .count(),
        result.program.stencil_count()
    );
}

#[test]
fn multi_device_execution_is_equivalent_to_single_device() {
    let program = chain_program(&ChainSpec::new(8, 8).with_shape(&[16, 8, 8]));
    let config = AnalysisConfig::paper_defaults();
    let inputs = generate_inputs(&program, 2);
    let single = Simulator::build(&program, &config, &SimConfig::default())
        .unwrap()
        .run(&inputs)
        .unwrap();
    for devices in [2usize, 4] {
        let plan =
            MultiDevicePlan::partition(&program, &PartitionConfig::devices(devices)).unwrap();
        let multi = Simulator::build_multi_device(&program, &config, &plan, &SimConfig::default())
            .unwrap()
            .run(&inputs)
            .unwrap();
        assert_eq!(multi.outcome, SimOutcome::Completed);
        let a = single.output("f8").unwrap();
        let b = multi.output("f8").unwrap();
        assert!(a.approx_eq(b, 1e-9), "{devices}-device run diverges");
    }
}

#[test]
fn deadlock_freedom_requires_the_computed_buffers() {
    let program = workloads::listing1::listing1_with_shape(&[6, 6, 6]);
    let config = AnalysisConfig::paper_defaults();
    let inputs = generate_inputs(&program, 1);
    let ok = Simulator::build(&program, &config, &SimConfig::default())
        .unwrap()
        .run(&inputs)
        .unwrap();
    let starved = Simulator::build(&program, &config, &SimConfig::with_minimal_channels())
        .unwrap()
        .run(&inputs)
        .unwrap();
    assert_eq!(ok.outcome, SimOutcome::Completed);
    assert_eq!(starved.outcome, SimOutcome::Deadlocked);
}

#[test]
fn vectorization_reduces_expected_runtime() {
    let config = AnalysisConfig::paper_defaults();
    let narrow = stencilflow::core::analyze(
        &chain_program(&ChainSpec::new(8, 8).with_shape(&[256, 16, 16])),
        &config,
    )
    .unwrap();
    let wide = stencilflow::core::analyze(
        &chain_program(
            &ChainSpec::new(8, 8)
                .with_shape(&[256, 16, 16])
                .with_vectorization(4),
        ),
        &config,
    )
    .unwrap();
    assert!(wide.performance.expected_cycles < narrow.performance.expected_cycles);
    assert!(wide.performance.gops() > narrow.performance.gops() * 2.0);
}
