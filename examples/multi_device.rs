//! Multi-device mapping (§III-B): partition a long stencil chain over
//! several FPGAs, inspect the replicated inputs and remote streams, and
//! verify that the distributed design computes the same result as the
//! single-device one — then *execute* the same program on the host
//! sharded runtime, which splits the iteration space across worker
//! threads exchanging halos over the same channel abstractions, and show
//! that it stays bitwise identical to the reference even with faults
//! injected into the halo traffic.
//!
//! Run with: `cargo run --release --example multi_device`

use stencilflow::core::{AnalysisConfig, MultiDevicePlan, PartitionConfig};
use stencilflow::reference::{generate_inputs, FaultPlan, ReferenceExecutor, ShardConfig};
use stencilflow::sim::{SimConfig, Simulator};
use stencilflow::workloads::{chain_program, jacobi3d, ChainSpec};

fn main() {
    // A 12-stage chain on a reduced domain, analogous to the paper's
    // iterative-stencil scaling experiments.
    let spec = ChainSpec::new(12, 8).with_shape(&[32, 16, 16]);
    let program = chain_program(&spec);
    let analysis_config = AnalysisConfig::paper_defaults();
    let inputs = generate_inputs(&program, 3);

    // Single-device baseline.
    let single = Simulator::build(&program, &analysis_config, &SimConfig::default())
        .expect("single-device design builds")
        .run(&inputs)
        .expect("single-device design runs");

    // Partition over 4 devices.
    let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(4))
        .expect("partitioning succeeds");
    println!(
        "partitioned {} stencils over {} devices:",
        program.stencil_count(),
        plan.device_count()
    );
    for device in &plan.devices {
        println!(
            "  device {}: {:?}, local inputs {:?}, {} remote in, {} remote out",
            device.index,
            device.stencils,
            device.local_inputs,
            device.remote_inputs.len(),
            device.remote_outputs.len()
        );
    }
    println!("replicated inputs: {:?}", plan.replicated_inputs);
    println!(
        "peak boundary traffic: {:.1} words/cycle, network feasible: {}",
        plan.peak_link_words_per_cycle,
        plan.network_feasible()
    );

    // Simulate the distributed design (remote streams get network latency
    // and bandwidth limits) and compare.
    let multi =
        Simulator::build_multi_device(&program, &analysis_config, &plan, &SimConfig::default())
            .expect("multi-device design builds")
            .run(&inputs)
            .expect("multi-device design runs");
    let output = program.outputs().last().unwrap().clone();
    let max_diff = single
        .output(&output)
        .unwrap()
        .max_abs_diff(multi.output(&output).unwrap());
    println!(
        "single device: {} cycles; {} devices: {} cycles; max output difference: {max_diff:.2e}",
        single.cycles,
        plan.device_count(),
        multi.cycles
    );

    // Now *execute* the plan's worker count on the host sharded runtime:
    // the iteration space is split into slabs across worker threads that
    // exchange halo slabs over the same FIFO channel layer the simulator
    // models, and the assembled outputs must be bitwise identical to the
    // single-process reference executor.
    let executor = ReferenceExecutor::new();
    let reference = executor
        .run(&program, &inputs)
        .expect("single-process reference run");
    let sharded = executor
        .run_sharded(&program, &inputs, &ShardConfig::shards(plan.device_count()))
        .expect("sharded run");
    let report = &sharded.report;
    println!(
        "sharded host run: {} worker shards (of {} requested), {} halo bytes exchanged",
        report.shards,
        plan.device_count(),
        report.halo_bytes_sent()
    );
    for name in program.outputs() {
        let reference_bits: Vec<u64> = reference
            .field(name)
            .expect("reference output")
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let sharded_bits: Vec<u64> = sharded
            .result
            .field(name)
            .expect("sharded output")
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            reference_bits, sharded_bits,
            "sharded output `{name}` diverged from the reference"
        );
    }
    println!("sharded chain outputs bitwise-identical to the reference");

    // The robustness layer needs live halo traffic, so switch to an
    // iterative jacobi time loop (feedback pairs are exchanged at every
    // window): drop a third of all first-transmission halo frames, and
    // sequence numbers, checksums, and bounded resends must recover every
    // one of them without changing a single bit.
    let iterative = jacobi3d(1, &[32, 16, 16], 1);
    let iterative_inputs = generate_inputs(&iterative, 5);
    let steps = 6;
    let baseline = executor
        .run_steps(&iterative, &iterative_inputs, steps)
        .expect("iterative baseline");
    let faulty = executor
        .run_steps_sharded(
            &iterative,
            &iterative_inputs,
            steps,
            &ShardConfig::shards(plan.device_count()).with_fault_plan(FaultPlan::dropped_halo(9)),
        )
        .expect("fault-injected sharded run");
    let resent: usize = faulty
        .report
        .per_shard
        .iter()
        .map(|s| s.frames_resent)
        .sum();
    let injected: usize = faulty
        .report
        .per_shard
        .iter()
        .map(|s| s.faults_injected)
        .sum();
    for name in iterative.outputs() {
        let baseline_bits: Vec<u64> = baseline
            .field(name)
            .expect("baseline output")
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let faulty_bits: Vec<u64> = faulty
            .result
            .field(name)
            .expect("sharded output")
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            baseline_bits, faulty_bits,
            "fault-injected output `{name}` diverged from the stepper"
        );
    }
    println!(
        "fault-injected jacobi time loop ({} shards, {} halo bytes): {injected} frames \
         dropped, {resent} recovered by resend; outputs bitwise-identical to the stepper",
        faulty.report.shards,
        faulty.report.halo_bytes_sent()
    );
}
