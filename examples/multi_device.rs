//! Multi-device mapping (§III-B): partition a long stencil chain over
//! several FPGAs, inspect the replicated inputs and remote streams, and
//! verify that the distributed design computes the same result as the
//! single-device one.
//!
//! Run with: `cargo run --release --example multi_device`

use stencilflow::core::{AnalysisConfig, MultiDevicePlan, PartitionConfig};
use stencilflow::reference::generate_inputs;
use stencilflow::sim::{SimConfig, Simulator};
use stencilflow::workloads::{chain_program, ChainSpec};

fn main() {
    // A 12-stage chain on a reduced domain, analogous to the paper's
    // iterative-stencil scaling experiments.
    let spec = ChainSpec::new(12, 8).with_shape(&[32, 16, 16]);
    let program = chain_program(&spec);
    let analysis_config = AnalysisConfig::paper_defaults();
    let inputs = generate_inputs(&program, 3);

    // Single-device baseline.
    let single = Simulator::build(&program, &analysis_config, &SimConfig::default())
        .expect("single-device design builds")
        .run(&inputs)
        .expect("single-device design runs");

    // Partition over 4 devices.
    let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(4))
        .expect("partitioning succeeds");
    println!(
        "partitioned {} stencils over {} devices:",
        program.stencil_count(),
        plan.device_count()
    );
    for device in &plan.devices {
        println!(
            "  device {}: {:?}, local inputs {:?}, {} remote in, {} remote out",
            device.index,
            device.stencils,
            device.local_inputs,
            device.remote_inputs.len(),
            device.remote_outputs.len()
        );
    }
    println!("replicated inputs: {:?}", plan.replicated_inputs);
    println!(
        "peak boundary traffic: {:.1} words/cycle, network feasible: {}",
        plan.peak_link_words_per_cycle,
        plan.network_feasible()
    );

    // Simulate the distributed design (remote streams get network latency
    // and bandwidth limits) and compare.
    let multi =
        Simulator::build_multi_device(&program, &analysis_config, &plan, &SimConfig::default())
            .expect("multi-device design builds")
            .run(&inputs)
            .expect("multi-device design runs");
    let output = program.outputs().last().unwrap().clone();
    let max_diff = single
        .output(&output)
        .unwrap()
        .max_abs_diff(multi.output(&output).unwrap());
    println!(
        "single device: {} cycles; {} devices: {} cycles; max output difference: {max_diff:.2e}",
        single.cycles,
        plan.device_count(),
        multi.cycles
    );
}
