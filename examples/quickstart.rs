//! Quickstart: define a stencil program in the JSON format of the paper's
//! Lst. 1, run the full StencilFlow pipeline (analysis, fusion, mapping,
//! code generation, simulated execution), and validate against the reference
//! executor.
//!
//! Run with: `cargo run --example quickstart`

use stencilflow::Pipeline;

fn main() {
    let description = r#"{
      "name": "quickstart",
      "inputs": {
        "a0": {"dtype": "float32", "dims": ["i", "j", "k"]},
        "a1": {"dtype": "float32", "dims": ["i", "j", "k"]},
        "a2": {"dtype": "float32", "dims": ["i", "k"]}
      },
      "outputs": ["b4"],
      "shape": [16, 16, 16],
      "program": {
        "b0": {"code": "a0[i,j,k] + a1[i,j,k]",
               "boundary_condition": {"a0": {"type": "constant", "value": 1},
                                       "a1": {"type": "copy"}}},
        "b1": {"code": "0.5*(b0[i,j,k] + a2[i,k])", "boundary_condition": "shrink"},
        "b2": {"code": "0.5*(b0[i,j,k] - a2[i,k])", "boundary_condition": "shrink"},
        "b3": {"code": "b1[i-1,j,k] + b1[i+1,j,k]", "boundary_condition": "shrink"},
        "b4": {"code": "b2[i,j,k] + b3[i,j,k]", "boundary_condition": "shrink"}
      }
    }"#;

    let pipeline = Pipeline::from_json(description).expect("valid program description");
    let result = pipeline.execute(42).expect("pipeline runs");

    println!("program: {}", result.program.name());
    println!(
        "stencil units: {}   channels: {}   on-chip buffer elements: {}",
        result.mapping.unit_count(),
        result.mapping.channels.len(),
        result.analysis.total_buffer_elements()
    );
    println!(
        "expected cycles (Eq. 1): {}  =  L {} + N {}",
        result.analysis.performance.expected_cycles,
        result.analysis.performance.pipeline_latency,
        result.analysis.performance.iterations
    );
    println!(
        "simulated cycles: {}   outcome: {:?}",
        result.simulation.cycles, result.simulation.outcome
    );
    println!(
        "max error vs. sequential reference: {:.2e}",
        result.max_error_vs_reference
    );
    println!("\n--- first lines of the generated OpenCL kernels ---");
    for line in result.kernel_code.lines().take(15) {
        println!("{line}");
    }
}
