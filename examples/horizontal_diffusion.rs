//! The COSMO horizontal-diffusion application study (§IX): build the full
//! stencil DAG, fuse it aggressively, analyze its buffering and arithmetic
//! intensity, map it, and run a reduced-domain functional simulation
//! validated against the reference executor.
//!
//! Run with: `cargo run --release --example horizontal_diffusion`

use stencilflow::core::{analyze, AnalysisConfig, HardwareMapping};
use stencilflow::dataflow::transforms::fuse_all_with_report;
use stencilflow::hwmodel::{estimate_resources, BandwidthModel, Device, Roofline};
use stencilflow::workloads::{horizontal_diffusion, HorizontalDiffusionSpec};
use stencilflow::Pipeline;

fn main() {
    // Production-size program for the analysis (128 x 128 x 80, W = 8).
    let program = horizontal_diffusion(&HorizontalDiffusionSpec::production(8));
    let ops = program.ops_per_cell();
    println!(
        "horizontal diffusion: {} stencils, {} inputs, {} outputs",
        program.stencil_count(),
        program.inputs().count(),
        program.outputs().len()
    );
    println!(
        "operations per point: {} add, {} mul, {} sqrt, {} min, {} max, {} branches",
        ops.additions,
        ops.multiplications,
        ops.square_roots,
        ops.minimums,
        ops.maximums,
        ops.branches
    );
    println!(
        "arithmetic intensity: {:.3} Op/B (paper Eq. 2: 65/18 = {:.3})",
        program.arithmetic_intensity(),
        65.0 / 18.0
    );

    // Aggressive stencil fusion (§V-B).
    let fusion = fuse_all_with_report(&program).expect("fusion succeeds");
    println!(
        "fusion: {} -> {} stencils ({} pairs fused)",
        program.stencil_count(),
        fusion.program.stencil_count(),
        fusion.fused.len()
    );

    // Buffering analysis and hardware mapping of the fused program.
    let config = AnalysisConfig::paper_defaults().with_vectorization(8);
    let analysis = analyze(&fusion.program, &config).expect("analysis succeeds");
    let mapping = HardwareMapping::build(&fusion.program, &config).expect("mapping succeeds");
    let device = Device::stratix10_gx2800();
    let resources = estimate_resources(&mapping);
    let (alm, _, m20k, dsp) = resources.utilization(&device);
    println!(
        "mapping: {} Op/cycle, {} operands/cycle from DRAM, {:.1} MB on-chip buffers",
        mapping.ops_per_cycle(),
        mapping.memory_operands_per_cycle(),
        analysis.total_buffer_bytes(4) as f64 / 1e6
    );
    println!(
        "estimated utilization: {:.0}% ALM, {:.0}% M20K, {:.0}% DSP",
        alm * 100.0,
        m20k * 100.0,
        dsp * 100.0
    );

    // Roofline bound (Eq. 3).
    let bw = BandwidthModel::stratix10().effective_bytes_per_s(
        mapping.memory_access_points(),
        mapping.vector_width,
        300e6,
    );
    let bound = Roofline::new(bw, f64::INFINITY).attainable_gops(program.arithmetic_intensity());
    println!(
        "roofline bound at {:.1} GB/s: {:.1} GOp/s (paper: 210.5 at 58.3 GB/s)",
        bw / 1e9,
        bound
    );

    // Functional validation on a reduced domain (the production domain would
    // take a while in a cycle-level software simulator).
    let small = horizontal_diffusion(&HorizontalDiffusionSpec::small());
    let result = Pipeline::new(small).execute(7).expect("pipeline runs");
    println!(
        "reduced-domain simulation: {:?} in {} cycles, max error vs. reference {:.2e}",
        result.simulation.outcome, result.simulation.cycles, result.max_error_vs_reference
    );
}
