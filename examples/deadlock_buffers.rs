//! Delay buffers and deadlock freedom (§III-A / §IV-B, Fig. 4 and Fig. 8):
//! shows the per-edge FIFO depths StencilFlow computes for a fork/join
//! program, and demonstrates that the design deadlocks when those buffers
//! are removed.
//!
//! Run with: `cargo run --example deadlock_buffers`

use stencilflow::core::{analyze, AnalysisConfig};
use stencilflow::reference::generate_inputs;
use stencilflow::sim::{SimConfig, SimOutcome, Simulator};
use stencilflow::workloads::listing1::listing1_with_shape;

fn main() {
    let program = listing1_with_shape(&[8, 8, 8]);
    let config = AnalysisConfig::paper_defaults();
    let analysis = analyze(&program, &config).expect("analysis succeeds");

    println!("delay buffers computed for the Lst. 1 fork/join program:");
    for channel in analysis.delay.channels() {
        println!(
            "  {:<10} -> {:<10}  delay {:>6} words  (FIFO depth {:>6})",
            channel.from, channel.to, channel.delay_words, channel.depth_words
        );
    }
    println!(
        "pipeline latency L = {} cycles, iterations N = {}",
        analysis.performance.pipeline_latency, analysis.performance.iterations
    );

    let inputs = generate_inputs(&program, 1);
    let buffered = Simulator::build(&program, &config, &SimConfig::default())
        .unwrap()
        .run(&inputs)
        .unwrap();
    let starved = Simulator::build(&program, &config, &SimConfig::with_minimal_channels())
        .unwrap()
        .run(&inputs)
        .unwrap();
    println!(
        "with computed buffers: {:?} after {} cycles",
        buffered.outcome, buffered.cycles
    );
    println!(
        "with unit-depth channels: {:?} (Fig. 4's circular wait)",
        starved.outcome
    );
    assert_eq!(buffered.outcome, SimOutcome::Completed);
    assert_eq!(starved.outcome, SimOutcome::Deadlocked);
}
