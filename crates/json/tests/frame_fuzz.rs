//! Property tests for the binary grid framing: random frames must
//! round-trip bit-exactly through the `SFGB`/`SFGS` encodings and
//! value-exactly through the text escape hatch (for finite values — text
//! JSON has no NaN), and the decoders must return errors, never panic, on
//! truncated or corrupted bytes.

use proptest::prelude::*;
use stencilflow_json::{
    decode_grid_set, decode_grid_set_auto, detect, encode_grid_set, parse, Encoding, GridFrame,
};

const DIM_NAMES: &[&str] = &["i", "j", "k", "t", "lane"];

/// A random valid frame. `finite_only` restricts values to ones the text
/// escape hatch can represent; otherwise raw u64 bit patterns (NaNs,
/// infinities, subnormals) are thrown in.
fn random_frame(rng: &mut TestRng, finite_only: bool) -> GridFrame {
    let rank = rng.below(4) as usize;
    let mut dims = Vec::with_capacity(rank);
    let mut shape = Vec::with_capacity(rank);
    for name in &DIM_NAMES[..rank] {
        dims.push(name.to_string());
        shape.push(rng.below(5) as usize); // zero extents allowed
    }
    let narrow = rng.below(2) == 0;
    let cells = shape.iter().product::<usize>().max(1);
    let values: Vec<f64> = (0..cells)
        .map(|_| {
            if finite_only || rng.below(4) != 0 {
                // Dyadic rationals survive both f32 narrowing and text
                // printing exactly.
                (rng.below(1 << 16) as f64 - 32768.0) / 256.0
            } else if narrow {
                f32::from_bits(rng.next_u64() as u32) as f64
            } else {
                f64::from_bits(rng.next_u64())
            }
        })
        .collect();
    GridFrame::new(
        if narrow { "float32" } else { "float64" },
        dims,
        shape,
        values,
    )
    .expect("generated frames are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary round trip: every bit pattern survives, including NaN
    /// payloads and infinities the text path cannot carry.
    #[test]
    fn binary_frames_round_trip_bit_exactly(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("frame_bits", seed);
        for _ in 0..4 {
            let frame = random_frame(&mut rng, false);
            let decoded = GridFrame::decode(&frame.encode()).unwrap();
            prop_assert_eq!(&decoded.dtype, &frame.dtype);
            prop_assert_eq!(&decoded.dims, &frame.dims);
            prop_assert_eq!(&decoded.shape, &frame.shape);
            let narrow = frame.dtype == "float32";
            for (a, b) in decoded.values.iter().zip(&frame.values) {
                if narrow {
                    prop_assert_eq!((*a as f32).to_bits(), (*b as f32).to_bits());
                } else {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// The text escape hatch agrees with the binary path for finite
    /// values: encode → print → parse → frame is the identity.
    #[test]
    fn text_escape_hatch_matches_binary_for_finite_values(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("frame_text", seed);
        for _ in 0..4 {
            let frame = random_frame(&mut rng, true);
            let via_binary = GridFrame::decode(&frame.encode()).unwrap();
            let text = frame.to_json().to_string_compact();
            let via_text = GridFrame::from_json(&parse(&text).unwrap()).unwrap();
            prop_assert_eq!(&via_text, &via_binary);
        }
    }

    /// Grid-set containers round-trip names, order, and frames.
    #[test]
    fn grid_sets_round_trip(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("frame_set", seed);
        let count = rng.below(4) as usize;
        let entries: Vec<(String, GridFrame)> = (0..count)
            .map(|ix| (format!("g{ix}"), random_frame(&mut rng, true)))
            .collect();
        let bytes = encode_grid_set(&entries).unwrap();
        prop_assert_eq!(detect(&bytes), Encoding::BinaryGridSet);
        let decoded = decode_grid_set(&bytes).unwrap();
        prop_assert_eq!(&decoded, &entries);
        prop_assert_eq!(&decode_grid_set_auto(&bytes).unwrap(), &entries);
    }

    /// Every truncation of a valid frame errors; no prefix may decode.
    #[test]
    fn truncated_frames_error_never_panic(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("frame_trunc", seed);
        let bytes = random_frame(&mut rng, false).encode();
        let cut = rng.below(bytes.len() as u64) as usize;
        prop_assert!(GridFrame::decode(&bytes[..cut]).is_err());
    }

    /// Random byte flips in a valid container either decode (flips inside
    /// the payload are just different numbers) or error — never panic.
    #[test]
    fn corrupted_grid_sets_never_panic(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("frame_corrupt", seed);
        let entries = vec![
            ("u".to_string(), random_frame(&mut rng, false)),
            ("v".to_string(), random_frame(&mut rng, false)),
        ];
        let mut bytes = encode_grid_set(&entries).unwrap();
        for _ in 0..1 + rng.below(4) {
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] ^= 1 << rng.below(8);
        }
        let _ = decode_grid_set(&bytes);
        let _ = decode_grid_set_auto(&bytes);
    }

    /// Pure byte soup through the auto-detecting reader: errors only.
    #[test]
    fn random_bytes_never_panic(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("frame_soup", seed);
        let len = rng.below(256) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        if rng.below(2) == 0 && bytes.len() >= 4 {
            // Half the cases wear a valid magic so the structured decoders
            // get exercised past the first four bytes.
            let magic = if rng.below(2) == 0 { b"SFGB" } else { b"SFGS" };
            bytes[..4].copy_from_slice(magic);
        }
        let _ = GridFrame::decode(&bytes);
        let _ = decode_grid_set(&bytes);
        let _ = decode_grid_set_auto(&bytes);
    }
}
