//! A minimal, dependency-free JSON implementation.
//!
//! The StencilFlow program description format (paper Lst. 1) is plain JSON.
//! This crate provides exactly what the `stencilflow-program` crate needs to
//! read and write that format — a [`Json`] value type, a strict recursive-
//! descent parser, and compact / pretty printers — without pulling in an
//! external serialization stack. Object member order is preserved on parse
//! and emit, so descriptions round-trip stably.

#![forbid(unsafe_code)]

pub mod binary;

pub use binary::{
    decode_grid_set, decode_grid_set_auto, detect, encode_grid_set, Encoding, FrameError, GridFrame,
};

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like ECMA-404 interchange).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; member order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object member list, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Look up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short type name used in error messages (`"string"`, `"object"`, ...).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => out.push_str(&format_number(*n)),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, idx| {
                    items[idx].write(out, indent, level + 1);
                });
            }
            Json::Object(members) => {
                write_seq(out, indent, level, '{', '}', members.len(), |out, idx| {
                    let (key, value) = &members[idx];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                });
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for idx in 0..len {
        if idx > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, idx);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn format_number(n: f64) -> String {
    if n.is_nan() || n.is_infinite() {
        // JSON has no non-finite numbers; emit null like lenient encoders do.
        return "null".to_string();
    }
    if n == 0.0 && n.is_sign_negative() {
        // `n as i64` would drop the sign; -0.0 must survive a round trip.
        "-0.0".to_string()
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input at which the error occurred.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte offset {}", self.message, self.position)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document. Trailing non-whitespace input is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(value)
}

/// Maximum container nesting depth accepted by [`parse`].
///
/// The parser is recursive-descent, so every `[` or `{` consumes stack; a
/// bound turns pathological inputs like `[[[[…` into a normal [`JsonError`]
/// instead of a stack overflow. 128 is far beyond any document this crate's
/// consumers produce.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        inner: fn(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error(&format!(
                "nesting deeper than {MAX_DEPTH} levels is not supported"
            )));
        }
        self.depth += 1;
        let result = inner(self);
        self.depth -= 1;
        result
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let combined =
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        // High surrogate followed by a
                                        // non-low-surrogate escape.
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                }
                Some(c) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let width = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    out.push_str(
                        std::str::from_utf8(&self.bytes[self.pos..end])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.error("expected four hex digits"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("3.5").unwrap(), Json::Number(3.5));
        assert_eq!(parse("-2e3").unwrap(), Json::Number(-2000.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // Regression: the recursive-descent parser used to recurse once per
        // `[`/`{`, so a few hundred kilobytes of brackets overflowed the
        // stack. Depth is now bounded by MAX_DEPTH.
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting deeper"));
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(parse(&deep_obj).is_err());
        // Depth right at the limit still parses.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(parse(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::String("a\"b\\c\nd\te\u{1F600}".into());
        let text = original.to_string_compact();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::String("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::String("\u{1F600}".into()));
        // Surrogate pair escapes combine...
        assert_eq!(
            parse(r#""\uD83D\uDE00""#).unwrap(),
            Json::String("\u{1F600}".into())
        );
        // ...but a high surrogate needs a valid low surrogate after it.
        assert!(parse(r#""\uD834A""#).is_err());
        assert!(parse(r#""\uD834x""#).is_err());
        // Lone low surrogate is invalid too.
        assert!(parse(r#""\uDC00""#).is_err());
    }

    #[test]
    fn negative_zero_round_trips() {
        let v = Json::Number(-0.0);
        let text = v.to_string_compact();
        assert_eq!(text, "-0.0");
        let back = parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(back, 0.0);
        assert!(back.is_sign_negative());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn pretty_printing_round_trips() {
        let v =
            parse(r#"{"outputs": ["b4"], "shape": [32, 32, 32], "empty": {}, "n": 1.25}"#).unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn member_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Number(32.0).to_string_compact(), "32");
        assert_eq!(Json::Number(1.5).to_string_compact(), "1.5");
    }
}
