//! Compact binary grid framing for the service ingestion path.
//!
//! Text JSON is a fine control-plane format, but shipping a million-cell
//! grid as decimal literals costs ~20 bytes/cell to print and parse. This
//! module defines a little-endian, dtype-tagged frame that carries the
//! payload as raw IEEE-754 bytes, plus a text-JSON escape hatch so every
//! frame has a human-readable equivalent:
//!
//! ```text
//! grid frame ("SFGB", version 1):
//!   magic  b"SFGB"
//!   u8     version (1)
//!   u8     dtype name length, then that many UTF-8 bytes ("float32"/"float64")
//!   u8     rank
//!   per dimension: u8 name length + UTF-8 bytes
//!   per dimension: u64 LE extent
//!   payload: product(extents).max(1) values, f32 LE when dtype is
//!            "float32", f64 LE otherwise
//!
//! grid-set container ("SFGS", version 1):
//!   magic  b"SFGS"
//!   u8     version (1)
//!   u32 LE entry count
//!   per entry: u16 LE name length + UTF-8 bytes,
//!              u64 LE frame length, then the grid frame
//! ```
//!
//! The text escape hatch is an object `{"dims", "shape", "dtype",
//! "values"}` with row-major values. Binary frames round-trip every bit
//! pattern including NaN and infinities; the text path inherits JSON's
//! number model (non-finite values print as `null`), which is exactly why
//! the binary framing exists. [`detect`] sniffs the magic so ingestion
//! points can accept either encoding from the same flag.

use crate::{parse, Json, JsonError};

/// Magic prefix of a single binary grid frame.
pub const GRID_MAGIC: &[u8; 4] = b"SFGB";
/// Magic prefix of a binary grid-set container.
pub const GRID_SET_MAGIC: &[u8; 4] = b"SFGS";
/// Framing version emitted by this module.
pub const FRAME_VERSION: u8 = 1;

/// How a byte payload is encoded, as sniffed by [`detect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// A single binary grid frame (`SFGB`).
    BinaryGrid,
    /// A binary grid-set container (`SFGS`).
    BinaryGridSet,
    /// Anything else: treated as text JSON.
    Text,
}

/// Sniff the encoding of an ingested payload by its magic bytes.
pub fn detect(bytes: &[u8]) -> Encoding {
    if bytes.starts_with(GRID_MAGIC) {
        Encoding::BinaryGrid
    } else if bytes.starts_with(GRID_SET_MAGIC) {
        Encoding::BinaryGridSet
    } else {
        Encoding::Text
    }
}

/// A decoding failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for FrameError {}

impl From<JsonError> for FrameError {
    fn from(err: JsonError) -> FrameError {
        FrameError {
            offset: err.position,
            message: err.message,
        }
    }
}

/// One dense row-major grid, decoupled from any executor type so the
/// framing stays dependency-free. `values` always holds
/// `shape.iter().product().max(1)` entries (a rank-0 frame is a scalar).
#[derive(Debug, Clone, PartialEq)]
pub struct GridFrame {
    /// Element type name: `"float32"` or `"float64"`.
    pub dtype: String,
    /// Dimension names, one per rank.
    pub dims: Vec<String>,
    /// Extents, one per rank.
    pub shape: Vec<usize>,
    /// Row-major cell values (f32 payloads are widened on decode).
    pub values: Vec<f64>,
}

/// Reader cursor with offset-carrying failures.
struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, offset: 0 }
    }

    fn fail<T>(&self, message: impl Into<String>) -> Result<T, FrameError> {
        Err(FrameError {
            offset: self.offset,
            message: message.into(),
        })
    }

    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], FrameError> {
        if self.bytes.len() - self.offset < len {
            return self.fail(format!(
                "truncated frame: needed {len} bytes for {what}, {} left",
                self.bytes.len() - self.offset
            ));
        }
        let slice = &self.bytes[self.offset..self.offset + len];
        self.offset += len;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, FrameError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn name(&mut self, len: usize, what: &str) -> Result<String, FrameError> {
        let raw = self.take(len, what)?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.fail(format!("{what} is not valid UTF-8")),
        }
    }

    fn done(&self) -> bool {
        self.offset == self.bytes.len()
    }
}

impl GridFrame {
    /// Construct a frame, validating the rank/extent/payload invariants
    /// that [`decode`](GridFrame::decode) enforces.
    pub fn new(
        dtype: impl Into<String>,
        dims: Vec<String>,
        shape: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<GridFrame, FrameError> {
        let frame = GridFrame {
            dtype: dtype.into(),
            dims,
            shape,
            values,
        };
        frame.validate()?;
        Ok(frame)
    }

    fn validate(&self) -> Result<(), FrameError> {
        let fail = |message: String| Err(FrameError { offset: 0, message });
        if self.dtype != "float32" && self.dtype != "float64" {
            return fail(format!(
                "unsupported dtype `{}` (expected float32 or float64)",
                self.dtype
            ));
        }
        if self.dims.len() != self.shape.len() {
            return fail(format!(
                "{} dimension names for rank-{} shape",
                self.dims.len(),
                self.shape.len()
            ));
        }
        if self.dims.len() > u8::MAX as usize {
            return fail(format!("rank {} exceeds the frame limit", self.dims.len()));
        }
        for name in &self.dims {
            if name.is_empty() || name.len() > u8::MAX as usize {
                return fail(format!("dimension name `{name}` length out of range"));
            }
        }
        if self.dtype.len() > u8::MAX as usize {
            return fail("dtype name too long".to_string());
        }
        let cells: usize = self.shape.iter().product::<usize>().max(1);
        if self.values.len() != cells {
            return fail(format!(
                "payload holds {} values, shape {:?} needs {cells}",
                self.values.len(),
                self.shape
            ));
        }
        Ok(())
    }

    /// Serialize to the `SFGB` binary layout.
    pub fn encode(&self) -> Vec<u8> {
        let narrow = self.dtype == "float32";
        let cell_bytes = if narrow { 4 } else { 8 };
        let mut out = Vec::with_capacity(64 + self.values.len() * cell_bytes);
        out.extend_from_slice(GRID_MAGIC);
        out.push(FRAME_VERSION);
        out.push(self.dtype.len() as u8);
        out.extend_from_slice(self.dtype.as_bytes());
        out.push(self.dims.len() as u8);
        for dim in &self.dims {
            out.push(dim.len() as u8);
            out.extend_from_slice(dim.as_bytes());
        }
        for &extent in &self.shape {
            out.extend_from_slice(&(extent as u64).to_le_bytes());
        }
        for &value in &self.values {
            if narrow {
                out.extend_from_slice(&(value as f32).to_le_bytes());
            } else {
                out.extend_from_slice(&value.to_le_bytes());
            }
        }
        out
    }

    /// Decode one `SFGB` frame, requiring the payload to consume the whole
    /// input. Truncated, oversized, or corrupt inputs error; they never
    /// panic (fuzzed in `tests/frame_fuzz.rs`).
    pub fn decode(bytes: &[u8]) -> Result<GridFrame, FrameError> {
        let mut cursor = Cursor::new(bytes);
        let frame = GridFrame::decode_at(&mut cursor)?;
        if !cursor.done() {
            return cursor.fail("trailing bytes after grid payload");
        }
        Ok(frame)
    }

    fn decode_at(cursor: &mut Cursor<'_>) -> Result<GridFrame, FrameError> {
        if cursor.take(4, "frame magic")? != GRID_MAGIC {
            cursor.offset -= 4;
            return cursor.fail("bad magic: not an SFGB grid frame");
        }
        let version = cursor.u8("frame version")?;
        if version != FRAME_VERSION {
            return cursor.fail(format!("unsupported frame version {version}"));
        }
        let dtype_len = cursor.u8("dtype length")? as usize;
        let dtype = cursor.name(dtype_len, "dtype name")?;
        if dtype != "float32" && dtype != "float64" {
            return cursor.fail(format!("unsupported dtype `{dtype}`"));
        }
        let rank = cursor.u8("rank")? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let len = cursor.u8("dimension name length")? as usize;
            if len == 0 {
                return cursor.fail("empty dimension name");
            }
            dims.push(cursor.name(len, "dimension name")?);
        }
        let mut shape = Vec::with_capacity(rank);
        let mut cells: usize = 1;
        for _ in 0..rank {
            let extent = cursor.u64("extent")?;
            let extent = usize::try_from(extent)
                .ok()
                .filter(|&e| {
                    cells
                        .checked_mul(e.max(1))
                        .is_some_and(|c| c <= MAX_FRAME_CELLS)
                })
                .ok_or_else(|| FrameError {
                    offset: cursor.offset,
                    message: format!("extent {extent} overflows the frame cell limit"),
                })?;
            cells = cells.saturating_mul(extent.max(1));
            shape.push(extent);
        }
        let cells = shape.iter().product::<usize>().max(1);
        let narrow = dtype == "float32";
        let cell_bytes = if narrow { 4 } else { 8 };
        let payload = cursor.take(cells * cell_bytes, "cell payload")?;
        let mut values = Vec::with_capacity(cells);
        if narrow {
            for chunk in payload.chunks_exact(4) {
                values.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as f64);
            }
        } else {
            for chunk in payload.chunks_exact(8) {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(chunk);
                values.push(f64::from_le_bytes(raw));
            }
        }
        Ok(GridFrame {
            dtype,
            dims,
            shape,
            values,
        })
    }

    /// The text escape hatch: `{"dims", "shape", "dtype", "values"}`.
    /// Non-finite values degrade to `null` when printed (JSON has no NaN);
    /// use the binary frame when bit-exactness matters.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "dims".to_string(),
                Json::Array(self.dims.iter().map(|d| Json::String(d.clone())).collect()),
            ),
            (
                "shape".to_string(),
                Json::Array(self.shape.iter().map(|&e| Json::Number(e as f64)).collect()),
            ),
            ("dtype".to_string(), Json::String(self.dtype.clone())),
            (
                "values".to_string(),
                Json::Array(self.values.iter().map(|&v| Json::Number(v)).collect()),
            ),
        ])
    }

    /// Parse the text escape hatch produced by
    /// [`to_json`](GridFrame::to_json).
    pub fn from_json(json: &Json) -> Result<GridFrame, FrameError> {
        let fail = |message: String| FrameError { offset: 0, message };
        let object = json
            .as_object()
            .ok_or_else(|| fail(format!("grid must be an object, got {}", json.type_name())))?;
        for (key, _) in object {
            if !matches!(key.as_str(), "dims" | "shape" | "dtype" | "values") {
                return Err(fail(format!("unknown grid key `{key}`")));
            }
        }
        let field = |key: &str| {
            json.get(key)
                .ok_or_else(|| fail(format!("grid is missing `{key}`")))
        };
        let dims = field("dims")?
            .as_array()
            .ok_or_else(|| fail("`dims` must be an array of strings".to_string()))?
            .iter()
            .map(|d| {
                d.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| fail("`dims` must be an array of strings".to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let shape = field("shape")?
            .as_array()
            .ok_or_else(|| fail("`shape` must be an array of extents".to_string()))?
            .iter()
            .map(|e| {
                e.as_usize().ok_or_else(|| {
                    fail("`shape` extents must be non-negative integers".to_string())
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let dtype = field("dtype")?
            .as_str()
            .ok_or_else(|| fail("`dtype` must be a string".to_string()))?
            .to_string();
        let values = field("values")?
            .as_array()
            .ok_or_else(|| fail("`values` must be an array of numbers".to_string()))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| fail("`values` must be an array of numbers".to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        GridFrame::new(dtype, dims, shape, values)
    }
}

/// Cells a single frame may declare (1 GiB of f64 payload); extents that
/// multiply past this are rejected before any allocation happens, so a
/// corrupt length field cannot OOM the decoder.
pub const MAX_FRAME_CELLS: usize = 1 << 27;

/// Serialize a named grid set to the `SFGS` container layout. Entries keep
/// their given order.
pub fn encode_grid_set(entries: &[(String, GridFrame)]) -> Result<Vec<u8>, FrameError> {
    let fail = |message: String| Err(FrameError { offset: 0, message });
    if entries.len() > u32::MAX as usize {
        return fail("too many grids for one container".to_string());
    }
    let mut out = Vec::new();
    out.extend_from_slice(GRID_SET_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, frame) in entries {
        frame.validate()?;
        if name.len() > u16::MAX as usize {
            return fail(format!("grid name `{name}` too long"));
        }
        let encoded = frame.encode();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
        out.extend_from_slice(&encoded);
    }
    Ok(out)
}

/// Decode an `SFGS` container back into its named frames.
pub fn decode_grid_set(bytes: &[u8]) -> Result<Vec<(String, GridFrame)>, FrameError> {
    let mut cursor = Cursor::new(bytes);
    if cursor.take(4, "container magic")? != GRID_SET_MAGIC {
        cursor.offset -= 4;
        return cursor.fail("bad magic: not an SFGS grid set");
    }
    let version = cursor.u8("container version")?;
    if version != FRAME_VERSION {
        return cursor.fail(format!("unsupported container version {version}"));
    }
    let count = cursor.u32("entry count")? as usize;
    let mut entries = Vec::new();
    for _ in 0..count {
        let name_len = cursor.u16("grid name length")? as usize;
        let name = cursor.name(name_len, "grid name")?;
        let frame_len = cursor.u64("frame length")?;
        let frame_len = usize::try_from(frame_len).map_err(|_| FrameError {
            offset: cursor.offset,
            message: format!("frame length {frame_len} out of range"),
        })?;
        let frame_bytes = cursor.take(frame_len, "grid frame")?;
        let frame = GridFrame::decode(frame_bytes).map_err(|err| FrameError {
            offset: cursor.offset - frame_len + err.offset,
            message: format!("grid `{name}`: {}", err.message),
        })?;
        entries.push((name, frame));
    }
    if !cursor.done() {
        return cursor.fail("trailing bytes after last grid");
    }
    Ok(entries)
}

/// Decode a named grid set from either encoding: `SFGS` binary or a text
/// JSON object of `{name: grid}` escape-hatch entries (object order kept).
pub fn decode_grid_set_auto(bytes: &[u8]) -> Result<Vec<(String, GridFrame)>, FrameError> {
    match detect(bytes) {
        Encoding::BinaryGridSet => decode_grid_set(bytes),
        Encoding::BinaryGrid => Err(FrameError {
            offset: 0,
            message: "expected a grid set, found a single grid frame".to_string(),
        }),
        Encoding::Text => {
            let text = std::str::from_utf8(bytes).map_err(|err| FrameError {
                offset: err.valid_up_to(),
                message: "grid set is neither SFGS binary nor UTF-8 JSON".to_string(),
            })?;
            let json = parse(text)?;
            let object = json.as_object().ok_or_else(|| FrameError {
                offset: 0,
                message: format!(
                    "text grid set must be an object of grids, got {}",
                    json.type_name()
                ),
            })?;
            object
                .iter()
                .map(|(name, grid)| {
                    GridFrame::from_json(grid)
                        .map(|frame| (name.clone(), frame))
                        .map_err(|err| FrameError {
                            offset: err.offset,
                            message: format!("grid `{name}`: {}", err.message),
                        })
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GridFrame {
        GridFrame::new(
            "float64",
            vec!["i".to_string(), "j".to_string()],
            vec![2, 3],
            vec![0.5, -1.0, f64::NAN, f64::INFINITY, 1e-300, -0.0],
        )
        .unwrap()
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let frame = sample();
        let decoded = GridFrame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded.dims, frame.dims);
        assert_eq!(decoded.shape, frame.shape);
        assert_eq!(decoded.dtype, frame.dtype);
        for (a, b) in decoded.values.iter().zip(&frame.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn float32_payload_is_four_bytes_per_cell() {
        let frame = GridFrame::new(
            "float32",
            vec!["i".to_string()],
            vec![4],
            vec![1.5, -2.25, 0.0, 3.0],
        )
        .unwrap();
        let bytes = frame.encode();
        let decoded = GridFrame::decode(&bytes).unwrap();
        assert_eq!(decoded, frame);
        // header: magic 4 + ver 1 + dtype (1+7) + rank 1 + dim (1+1) + extent 8
        assert_eq!(bytes.len(), 24 + 4 * 4);
    }

    #[test]
    fn scalar_frame_has_one_value() {
        let frame = GridFrame::new("float64", vec![], vec![], vec![42.0]).unwrap();
        let decoded = GridFrame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded.values, vec![42.0]);
        assert!(GridFrame::new("float64", vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn truncation_and_trailing_bytes_error() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(GridFrame::decode(&bytes[..len]).is_err(), "len {len}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(GridFrame::decode(&long).is_err());
    }

    #[test]
    fn huge_extents_are_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(GRID_MAGIC);
        bytes.push(FRAME_VERSION);
        bytes.push(7);
        bytes.extend_from_slice(b"float64");
        bytes.push(2);
        bytes.push(1);
        bytes.push(b'i');
        bytes.push(1);
        bytes.push(b'j');
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = GridFrame::decode(&bytes).unwrap_err();
        assert!(err.message.contains("overflow"), "{err}");
    }

    #[test]
    fn grid_set_round_trips_and_keeps_order() {
        let entries = vec![
            ("u".to_string(), sample()),
            (
                "coeff".to_string(),
                GridFrame::new("float32", vec!["k".to_string()], vec![2], vec![1.0, 2.0]).unwrap(),
            ),
        ];
        let bytes = encode_grid_set(&entries).unwrap();
        assert_eq!(detect(&bytes), Encoding::BinaryGridSet);
        let decoded = decode_grid_set(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, "u");
        assert_eq!(decoded[1].0, "coeff");
        assert_eq!(decoded[1].1, entries[1].1);
        // Auto-detection takes the same bytes.
        assert_eq!(decode_grid_set_auto(&bytes).unwrap().len(), 2);
    }

    #[test]
    fn text_escape_hatch_round_trips_finite_values() {
        let frame = GridFrame::new(
            "float64",
            vec!["i".to_string()],
            vec![3],
            vec![0.5, -2.0, 1e-9],
        )
        .unwrap();
        let text = frame.to_json().to_string_compact();
        let parsed = GridFrame::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, frame);
        // And through the auto-detecting set reader.
        let set_text = format!("{{\"u\": {text}}}");
        assert_eq!(detect(set_text.as_bytes()), Encoding::Text);
        let set = decode_grid_set_auto(set_text.as_bytes()).unwrap();
        assert_eq!(set[0].1, frame);
    }

    #[test]
    fn text_rejects_unknown_keys_and_bad_shapes() {
        let bad = parse("{\"dims\": [\"i\"], \"shape\": [2], \"dtype\": \"float64\", \"values\": [1], \"extra\": 0}").unwrap();
        assert!(GridFrame::from_json(&bad).is_err());
        let short =
            parse("{\"dims\": [\"i\"], \"shape\": [2], \"dtype\": \"float64\", \"values\": [1]}")
                .unwrap();
        assert!(GridFrame::from_json(&short).is_err());
    }
}
