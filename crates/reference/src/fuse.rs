//! Tile-fused multi-stencil execution.
//!
//! The default compiled path of the [`crate::ReferenceExecutor`]
//! *materializes*: every stencil of a program sweeps the full iteration
//! space and writes a full grid before the next stencil starts, and every
//! [`crate::ReferenceExecutor::run_steps`] iteration round-trips the whole
//! state through full grids. The paper's central claim (§I, §VIII-C) is
//! that chained stencils should *stream* through each other instead; this
//! module is the CPU analogue of that FIFO pipelining: the iteration space
//! is partitioned into **tiles** (innermost-contiguous slabs of the
//! outermost dimension) and each tile is swept through *all* stencils of
//! the program — and, for time stepping, through a bounded **window** of
//! time steps (temporal blocking) — before the next tile is touched, with
//! every intermediate held in a small per-worker scratch buffer instead of
//! a full grid.
//!
//! # How a tile executes
//!
//! For a tile `T = [t_lo, t_hi)` of the outermost dimension, each stage is
//! computed over `T` *dilated* by the cumulative downstream access
//! footprint ([`AccessFootprints`], chained backward along the DAG at
//! [`FusePlan`] build time): the last consumer needs exactly `T`, its
//! producers need `T` plus their consumers' halo, and so on — the classic
//! overlapped (redundant-compute) tiling. For `run_steps`, a window of `w`
//! steps additionally dilates step `t` by `(w - t)` times the per-step
//! footprint, and the state fields of the feedback pairing ping-pong
//! between two scratch buffers; only the final step of the final window is
//! written back to full grids.
//!
//! Every scratch buffer is **halo-padded**: out-of-domain border cells are
//! pre-filled with the (per-field) constant boundary value, so the sweep
//! itself is a pure contiguous lane sweep — no interior/halo split, no
//! bounds checks, no per-lane boundary gathers. Rows are evaluated in full
//! lane batches ([`TypedKernel::eval_lanes`] at a width chosen from the
//! innermost extent, wider than the materializing tier's default since
//! fused rows have no mixed halo batches); the batch that straddles the
//! row end simply *over-computes* into write-slack cells whose values are
//! never read (typed kernels are total — IEEE float arithmetic cannot
//! fail — so evaluating garbage lanes is safe), and the clobbered tail pad
//! is re-filled after each row.
//!
//! # Eligibility and the fallback
//!
//! The padded-scratch fast path requires (checked once at
//! [`FusePlan::build`]):
//!
//! * every stencil carries a branch-free type-specialized kernel
//!   ([`TypedKernel::supports_lanes`] — since typed if-conversion this
//!   includes division-heavy ternaries);
//! * every non-scalar field spans the full iteration space, indexed in
//!   iteration-space dimension order (scratch tiles are laid out in space
//!   order, so transposed accesses cannot be expressed as constant flat
//!   offsets);
//! * every out-of-domain access resolves to a `Constant` boundary
//!   condition, and all consumers of a field agree on the constant (a
//!   `Copy` boundary reads the *accessing cell's* center, which a
//!   position-indexed pad cell cannot represent).
//!
//! Ineligible programs transparently fall back to the materializing path
//! (`run_compiled` / `run_steps_compiled`); the result is restricted to
//! the program outputs either way, which is the fused tier's contract —
//! intermediates are deliberately *not* materialized (this is where the
//! speed comes from, and it matches the simulator's unused-intermediate
//! elision: values that cannot be observed need not exist).
//!
//! # Bit-identity
//!
//! Fused results are bit-identical to the interpreted tier on every output
//! cell (golden suite: `fused_equivalence.rs`):
//!
//! * every computed cell evaluates through the same [`TypedKernel`] lane
//!   interpreter as the materializing tier, on loads that are raw grid
//!   payloads (inputs are copied in verbatim, stage results are rounded
//!   through the stencil's output type before the store — exactly the
//!   store rounding of the full-grid sweep), so each cell performs the
//!   identical operation sequence on identical bits;
//! * out-of-domain loads read pad cells holding the boundary constant
//!   pre-rounded through the field's element type — exactly the value the
//!   materializing halo pass computes per access;
//! * tile overlap recomputes boundary-region cells from identical inputs,
//!   producing identical bits, so it does not matter which tile's copy of
//!   an overlapped cell a consumer reads;
//! * shrink masks depend on access geometry only (never on data): the
//!   per-cell "did any access leave the domain" predicate of the
//!   interpreter is equivalent to membership in a per-stencil valid *box*,
//!   which is filled directly into the result mask.

use crate::executor::{CompiledProgram, ExecutionResult};
use crate::grid::Grid;
use crate::plan::round_lanes;
use crate::ReferenceExecutor;
use std::collections::BTreeMap;
use stencilflow_codegen::{jit_translation_unit, JitSlotKind, JitStageSpec};
use stencilflow_expr::{DataType, LaneScratch, TypedKernel, Value};
use stencilflow_jit::{SlotArg, StageFn, SweepArgs};
use stencilflow_program::{
    AccessFootprints, BoundaryCondition, ProgramError, Result, StencilProgram,
};

/// Default number of time steps fused into one temporal-blocking window.
/// Each extra step dilates every tile by one more per-step footprint on
/// each side (redundant recompute grows linearly per step, quadratically
/// per window), so the window is kept small; see
/// [`ReferenceExecutor::with_fusion_window`].
pub(crate) const DEFAULT_FUSION_WINDOW: usize = 4;

/// Scratch-budget target in bytes per worker for the automatic tile
/// height. Larger tiles amortize the per-tile copies and the temporal-
/// blocking overlap better than small cache-resident tiles help locality
/// (the lane sweep is dispatch-bound, not DRAM-bound), so the budget sits
/// at the last-level-cache scale rather than L2.
const TILE_SCRATCH_BUDGET_BYTES: usize = 1 << 21;

/// One field (program input or stencil output) of a fuse plan, with the
/// geometry of its per-tile scratch buffer.
#[derive(Debug)]
struct FusedField {
    name: String,
    /// Scalar program input: prefilled into the lane template, no buffer.
    scalar: bool,
    /// Program input (copied into scratch per tile) vs. stage output
    /// (computed into scratch).
    input: bool,
    /// Whether the field is read by any live stage (or is an output).
    live: bool,
    /// Pad fill value: the consumers' shared boundary constant, rounded
    /// through the field's element type.
    pad_constant: f64,
    /// Per-dimension pad extents (≥ the consumers' largest offsets).
    pad_lo: Vec<usize>,
    pad_hi: Vec<usize>,
    /// Within-step dilation of the region this field must cover, in
    /// outermost-dimension slices relative to the tile.
    grow_lo: usize,
    grow_hi: usize,
    /// Feedback partner (state pairing) for temporal blocking; paired
    /// fields share unified geometry and ping-pong their two buffers.
    pair: Option<usize>,
}

/// How one kernel slot of a fused stage reads its field.
#[derive(Debug)]
enum FusedSlot {
    /// Scalar symbol, prefilled once per run.
    Scalar(usize),
    /// Field tap at a constant per-space-dimension offset.
    Tap { field: usize, off: Vec<i64> },
}

/// One stencil of a fuse plan.
#[derive(Debug)]
struct FusedStage {
    /// Index into the compiled program's stencil list (same order).
    stencil: usize,
    /// Output field of this stage.
    field: usize,
    /// Whether the stage contributes to any program output. Dead stages
    /// are elided entirely (their values are unobservable in the fused
    /// result), consistent with the simulator's unused-intermediate
    /// elision.
    live: bool,
    slots: Vec<FusedSlot>,
    out_dtype: DataType,
    shrink: bool,
    /// The shrink-validity box per dimension (`[lo, hi)`): a cell is
    /// valid iff every coordinate lies inside — exactly the interpreter's
    /// "no access left the domain" predicate, which is a box because
    /// every check constrains one coordinate independently.
    mask_lo: Vec<usize>,
    mask_hi: Vec<usize>,
}

/// The temporal-blocking extension of a fuse plan.
#[derive(Debug)]
struct StepPlan {
    /// Feedback pairs as `(output field, state input field)`.
    pairs: Vec<(usize, usize)>,
    /// Per-step dilation of the tile footprint (outermost dimension).
    step_lo: usize,
    step_hi: usize,
}

/// A program analyzed for tile-fused execution. Built once per
/// [`CompiledProgram`]; owns only geometry (kernels stay in the compiled
/// stencils).
#[derive(Debug)]
pub(crate) struct FusePlan {
    dims: Vec<String>,
    shape: Vec<usize>,
    rank: usize,
    /// Lane width of the fused sweep, chosen from the innermost extent.
    lanes: usize,
    fields: Vec<FusedField>,
    stages: Vec<FusedStage>,
    /// `(stage index, field index)` of every program output, in program
    /// output order.
    outputs: Vec<(usize, usize)>,
    steps: Option<StepPlan>,
}

/// Pick the fused lane width from the innermost extent: the widest of
/// 32/16/8 whose end-of-row over-compute stays below 25 % of the row.
/// Wider batches pay off inside the fused sweep because every batch is a
/// full contiguous batch (pads replace the mixed halo path entirely).
fn fused_lane_width(row_len: usize) -> usize {
    for lanes in [32usize, 16, 8] {
        let padded = row_len.div_ceil(lanes) * lanes;
        if (padded - row_len) * 4 <= row_len {
            return lanes;
        }
    }
    8
}

impl FusePlan {
    /// Analyze `program` for fused execution. Returns a human-readable
    /// reason when the program must stay on the materializing path.
    pub(crate) fn build(
        program: &StencilProgram,
        compiled: &CompiledProgram,
    ) -> std::result::Result<FusePlan, String> {
        let space = program.space();
        let rank = space.rank();
        let shape = space.shape.clone();

        // Field table: program inputs first, then stage outputs in
        // topological (compiled) order.
        let mut fields: Vec<FusedField> = Vec::new();
        let mut field_ids: BTreeMap<String, usize> = BTreeMap::new();
        let mut dtypes: Vec<DataType> = Vec::new();
        let new_field = |fields: &mut Vec<FusedField>,
                         dtypes: &mut Vec<DataType>,
                         field_ids: &mut BTreeMap<String, usize>,
                         name: &str,
                         dtype: DataType,
                         scalar: bool,
                         input: bool| {
            field_ids.insert(name.to_string(), fields.len());
            dtypes.push(dtype);
            fields.push(FusedField {
                name: name.to_string(),
                scalar,
                input,
                live: false,
                pad_constant: 0.0,
                pad_lo: vec![0; rank],
                pad_hi: vec![0; rank],
                grow_lo: 0,
                grow_hi: 0,
                pair: None,
            });
        };
        for (name, decl) in program.inputs() {
            let scalar = decl.is_scalar();
            if !scalar && decl.dims != space.dims {
                return Err(format!(
                    "input `{name}` does not span the full iteration space"
                ));
            }
            new_field(
                &mut fields,
                &mut dtypes,
                &mut field_ids,
                name,
                decl.data_type(),
                scalar,
                true,
            );
        }
        let plans = compiled.stencil_plans();
        for plan in plans {
            new_field(
                &mut fields,
                &mut dtypes,
                &mut field_ids,
                plan.name(),
                plan.out_dtype(),
                false,
                false,
            );
        }

        // Stages: typed branch-free kernels with space-ordered taps.
        let mut stages: Vec<FusedStage> = Vec::with_capacity(plans.len());
        for (ix, plan) in plans.iter().enumerate() {
            let Some(typed) = plan.typed_kernel() else {
                return Err(format!("stencil `{}` has no typed kernel", plan.name()));
            };
            if !typed.supports_lanes() {
                return Err(format!(
                    "stencil `{}` keeps control flow in its typed kernel",
                    plan.name()
                ));
            }
            let mut slots = Vec::with_capacity(plan.compiled_kernel().slots().len());
            for slot in plan.compiled_kernel().slots() {
                let field = *field_ids
                    .get(&slot.field)
                    .ok_or_else(|| format!("unknown field `{}`", slot.field))?;
                if slot.is_scalar() {
                    slots.push(FusedSlot::Scalar(field));
                    continue;
                }
                if slot.index_vars != space.dims {
                    return Err(format!(
                        "stencil `{}` accesses `{}` with transposed indices",
                        plan.name(),
                        slot.field
                    ));
                }
                slots.push(FusedSlot::Tap {
                    field,
                    off: slot.offsets.clone(),
                });
            }
            // The shrink-validity box from the same deduplicated check set
            // the materializing halo pass evaluates per cell.
            let mut mask_lo = vec![0usize; rank];
            let mut mask_hi = shape.clone();
            for &(dim, off) in plan.shrink_mask_checks() {
                if off < 0 {
                    mask_lo[dim] = mask_lo[dim].max((-off) as usize);
                } else {
                    mask_hi[dim] = mask_hi[dim].min(shape[dim].saturating_sub(off as usize));
                }
            }
            stages.push(FusedStage {
                stencil: ix,
                field: field_ids[plan.name()],
                live: false,
                slots,
                out_dtype: plan.out_dtype(),
                shrink: plan.is_shrink(),
                mask_lo,
                mask_hi,
            });
        }

        // Liveness: outputs backward through the taps.
        let mut outputs = Vec::with_capacity(program.outputs().len());
        for output in program.outputs() {
            let field = field_ids[output];
            let stage = stages
                .iter()
                .position(|s| s.field == field)
                .expect("program outputs are stencils");
            stages[stage].live = true;
            fields[field].live = true;
            outputs.push((stage, field));
        }
        for s in (0..stages.len()).rev() {
            if !stages[s].live {
                continue;
            }
            let slot_fields: Vec<usize> = stages[s]
                .slots
                .iter()
                .map(|slot| match slot {
                    FusedSlot::Scalar(f) | FusedSlot::Tap { field: f, .. } => *f,
                })
                .collect();
            for field in slot_fields {
                fields[field].live = true;
                if !fields[field].input {
                    let producer = stages
                        .iter()
                        .position(|p| p.field == field)
                        .expect("non-input fields are stage outputs");
                    stages[producer].live = true;
                }
            }
        }

        // Footprints drive boundary-constant collection, pads, and the
        // backward dilation chain.
        let footprints = AccessFootprints::of_program(program);
        let mut constants: Vec<Option<f64>> = vec![None; fields.len()];
        for stage in stages.iter().filter(|s| s.live) {
            let stencil = program
                .stencil(plans[stage.stencil].name())
                .expect("compiled stencils exist in the program");
            for slot in &stage.slots {
                let FusedSlot::Tap { field, .. } = slot else {
                    continue;
                };
                let Some(extent) = footprints.extent(&stencil.name, &fields[*field].name) else {
                    continue;
                };
                for (d, &(lo, hi)) in extent.iter().enumerate() {
                    fields[*field].pad_lo[d] = fields[*field].pad_lo[d].max((-lo).max(0) as usize);
                    fields[*field].pad_hi[d] = fields[*field].pad_hi[d].max(hi.max(0) as usize);
                }
                if extent.iter().all(|&(lo, hi)| lo == 0 && hi == 0) {
                    // Center-only accesses never leave the domain; the
                    // boundary condition is irrelevant.
                    continue;
                }
                match stencil.boundary.condition_for(&fields[*field].name) {
                    BoundaryCondition::Constant(c) => {
                        let rounded = Value::from_f64(c, dtypes[*field]).as_f64();
                        match constants[*field] {
                            Some(previous) if previous.to_bits() != rounded.to_bits() => {
                                return Err(format!(
                                    "consumers of `{}` disagree on the boundary constant",
                                    fields[*field].name
                                ));
                            }
                            _ => constants[*field] = Some(rounded),
                        }
                    }
                    BoundaryCondition::Copy => {
                        return Err(format!(
                            "stencil `{}` reads `{}` with a copy boundary",
                            stencil.name, fields[*field].name
                        ));
                    }
                }
            }
        }
        for (field, constant) in constants.iter().enumerate() {
            if let Some(c) = constant {
                fields[field].pad_constant = *c;
            }
        }

        // Backward dilation chain (outermost dimension): a field must
        // cover its consumers' regions dilated by their footprints.
        // Reverse topological order visits every consumer before its
        // producers.
        for s in (0..stages.len()).rev() {
            if !stages[s].live {
                continue;
            }
            let name = plans[stages[s].stencil].name();
            let (own_lo, own_hi) = {
                let f = &fields[stages[s].field];
                (f.grow_lo, f.grow_hi)
            };
            for slot in &stages[s].slots {
                let FusedSlot::Tap { field, .. } = slot else {
                    continue;
                };
                if let Some(extent) = footprints.extent(name, &fields[*field].name) {
                    let (lo, hi) = extent[0];
                    let f = &mut fields[*field];
                    f.grow_lo = f.grow_lo.max(own_lo + (-lo).max(0) as usize);
                    f.grow_hi = f.grow_hi.max(own_hi + hi.max(0) as usize);
                }
            }
        }

        // Temporal blocking: a derivable feedback pairing with compatible
        // pad constants lets state fields ping-pong through shared-geometry
        // buffers. Failure here only disables the *fused* time stepper —
        // single runs stay fused, and `run_steps_fused` falls back.
        let steps = compiled.feedback_pairs().ok().and_then(|pairs| {
            let mut step_lo = 0usize;
            let mut step_hi = 0usize;
            let mut mapped = Vec::with_capacity(pairs.len());
            for (output, input) in &pairs {
                let o = field_ids[output];
                let i = field_ids[input];
                // A shared buffer holds one pad constant: both sides must
                // agree whenever both are read out of domain.
                if constants[o].is_some()
                    && constants[i].is_some()
                    && fields[o].pad_constant.to_bits() != fields[i].pad_constant.to_bits()
                {
                    return None;
                }
                step_lo = step_lo.max(fields[i].grow_lo.saturating_sub(fields[o].grow_lo));
                step_hi = step_hi.max(fields[i].grow_hi.saturating_sub(fields[o].grow_hi));
                mapped.push((o, i));
            }
            // Unify the pair's pads and fill constant so the two buffers
            // are interchangeable across the ping-pong. The *dilation*
            // (`grow_*`) stays per field — regions must follow the exact
            // backward chain, or consumer regions would outgrow their
            // producers — and only the buffer sizing takes the pair
            // maximum (see `FusePlan::geometries`).
            for &(o, i) in &mapped {
                let constant = if constants[i].is_some() {
                    fields[i].pad_constant
                } else {
                    fields[o].pad_constant
                };
                for d in 0..rank {
                    let lo = fields[o].pad_lo[d].max(fields[i].pad_lo[d]);
                    let hi = fields[o].pad_hi[d].max(fields[i].pad_hi[d]);
                    fields[o].pad_lo[d] = lo;
                    fields[i].pad_lo[d] = lo;
                    fields[o].pad_hi[d] = hi;
                    fields[i].pad_hi[d] = hi;
                }
                for f in [o, i] {
                    fields[f].pad_constant = constant;
                    fields[f].live = true;
                }
                fields[o].pair = Some(i);
                fields[i].pair = Some(o);
            }
            Some(StepPlan {
                pairs: mapped,
                step_lo,
                step_hi,
            })
        });

        Ok(FusePlan {
            dims: space.dims.clone(),
            shape: shape.clone(),
            rank,
            lanes: fused_lane_width(shape[rank - 1]),
            fields,
            stages,
            outputs,
            steps,
        })
    }

    /// Whether the fused time stepper can run (a derivable feedback
    /// pairing with compatible pad constants).
    pub(crate) fn supports_steps(&self) -> bool {
        self.steps.is_some()
    }

    /// Build the Tier-4 native translation unit for this plan: one
    /// `sf_stage_{i}` sweep function per live stage, emitted from the
    /// typed bytecode (see `stencilflow_codegen::jit_unit`). Eligibility
    /// on top of fuse eligibility:
    ///
    /// * every live stage's kernel re-verifies against its bind-time slot
    ///   types and the judgment must support native emission
    ///   (branch-free — the same property the lane sweep needs, but taken
    ///   from the independent verifier, not compiler bookkeeping);
    /// * stage output types are `f32`/`f64` (the native store rounding
    ///   mirrors `round_lanes`, which has no third arm in C);
    /// * emission itself succeeds (no NaN constants).
    ///
    /// The returned error doubles as the program's JIT fallback reason.
    pub(crate) fn jit_unit(
        &self,
        compiled: &CompiledProgram,
    ) -> std::result::Result<crate::jit::JitUnit, String> {
        let plans = compiled.stencil_plans();
        let mut specs = Vec::new();
        let mut symbols: Vec<Option<String>> = vec![None; self.stages.len()];
        for (ix, stage) in self.stages.iter().enumerate() {
            if !stage.live {
                continue;
            }
            let plan = &plans[stage.stencil];
            if !matches!(stage.out_dtype, DataType::Float32 | DataType::Float64) {
                return Err(format!(
                    "stage `{}` output type {} is not a float type",
                    plan.name(),
                    stage.out_dtype
                ));
            }
            stencilflow_expr::verify_kernel(plan.compiled_kernel(), Some(&plan.slot_dtypes()))
                .map_err(|e| {
                    format!("stage `{}` failed bytecode verification: {e}", plan.name())
                })?;
            let typed = plan
                .typed_kernel()
                .ok_or_else(|| format!("stage `{}` has no type-specialized kernel", plan.name()))?;
            // The emitter consumes the *typed* stream, so branch-freedom is
            // judged there: typed if-conversion speculates IEEE-total
            // division where the untyped pass must keep the diamond.
            let judgment = stencilflow_expr::verify_typed(typed)
                .map_err(|e| format!("stage `{}` failed typed verification: {e}", plan.name()))?;
            if !judgment.supports_native() {
                return Err(format!(
                    "stage `{}` kernel is not branch-free after optimization",
                    plan.name()
                ));
            }
            let slot_kinds = stage
                .slots
                .iter()
                .map(|s| match s {
                    FusedSlot::Scalar(_) => JitSlotKind::Scalar,
                    FusedSlot::Tap { .. } => JitSlotKind::Tap,
                })
                .collect();
            let symbol = format!("sf_stage_{ix}");
            specs.push(JitStageSpec {
                symbol: symbol.clone(),
                kernel: typed,
                slot_kinds,
                round_output: stage.out_dtype == DataType::Float32,
            });
            symbols[ix] = Some(symbol);
        }
        let source = jit_translation_unit(&specs)?;
        Ok(crate::jit::JitUnit { source, symbols })
    }

    fn slice_cells(&self) -> usize {
        self.shape[1..].iter().product::<usize>().max(1)
    }

    fn step_dilation(&self) -> (usize, usize) {
        self.steps
            .as_ref()
            .map(|s| (s.step_lo, s.step_hi))
            .unwrap_or((0, 0))
    }

    /// Tile bounds along the outermost dimension. One-dimensional spaces
    /// use a single tile (the outermost dimension *is* the contiguous row
    /// the sweep batches over).
    fn tile_bounds(
        &self,
        w_max: usize,
        override_rows: Option<usize>,
        threads: usize,
    ) -> Vec<(usize, usize)> {
        let extent = self.shape[0];
        if self.rank == 1 {
            return vec![(0, extent)];
        }
        let tile_h = match override_rows {
            Some(rows) => rows.max(1),
            None => {
                let live_buffers = self
                    .fields
                    .iter()
                    .filter(|f| f.live && !f.scalar)
                    .count()
                    .max(1);
                let budget =
                    TILE_SCRATCH_BUDGET_BYTES / 8 / (live_buffers * self.slice_cells()).max(1);
                // Keep the redundant recompute of temporal blocking small
                // relative to the tile.
                let (step_lo, step_hi) = self.step_dilation();
                let step_overhead = (step_lo + step_hi) * w_max.saturating_sub(1) * 2;
                budget.max(step_overhead).max(4)
            }
        };
        let tile_h = tile_h.clamp(1, extent);
        // Give parallel workers at least one tile each where possible.
        let tile_h = tile_h.min(extent.div_ceil(threads.max(1))).max(1);
        let mut tiles = Vec::with_capacity(extent.div_ceil(tile_h));
        let mut lo = 0usize;
        while lo < extent {
            let hi = (lo + tile_h).min(extent);
            tiles.push((lo, hi));
            lo = hi;
        }
        tiles
    }

    /// Scratch geometry of every live non-scalar field for tiles of height
    /// `max_tile_h` in windows of up to `w_max` steps at lane width
    /// `lanes`.
    fn geometries(&self, max_tile_h: usize, w_max: usize, lanes: usize) -> Vec<FieldGeom> {
        let (step_lo, step_hi) = self.step_dilation();
        let window_slack = w_max.saturating_sub(1);
        self.fields
            .iter()
            .map(|f| {
                if !f.live || f.scalar {
                    return FieldGeom::default();
                }
                // Paired buffers swap owners across the ping-pong, so the
                // shared geometry is sized for both fields' dilation.
                let (grow_lo, grow_hi) = match f.pair {
                    Some(p) => (
                        f.grow_lo.max(self.fields[p].grow_lo),
                        f.grow_hi.max(self.fields[p].grow_hi),
                    ),
                    None => (f.grow_lo, f.grow_hi),
                };
                let back0 = grow_lo + window_slack * step_lo + f.pad_lo[0];
                // Rows hold whole lane batches: the last batch's
                // over-compute writes (and reads) up to `batches * lanes`,
                // which also covers the in-domain extent and the tail pad.
                let row_span = self.shape[self.rank - 1].div_ceil(lanes) * lanes;
                let mut ext = Vec::with_capacity(self.rank);
                for d in 0..self.rank {
                    let mut e = self.shape[d] + f.pad_lo[d] + f.pad_hi[d];
                    if d == 0 {
                        let full = max_tile_h
                            + grow_lo
                            + grow_hi
                            + window_slack * (step_lo + step_hi)
                            + f.pad_lo[0]
                            + f.pad_hi[0];
                        // Positions above `shape + pad_hi` are never
                        // touched, so deep dilation chains need not
                        // allocate past them.
                        e = full.min(back0 + self.shape[0] + f.pad_hi[0]);
                    }
                    if d == self.rank - 1 {
                        let lead = if self.rank == 1 {
                            // The row origin of a 1-D space sits `back0`
                            // cells into the buffer (d == 0 above computed
                            // the padded extent; replace it).
                            back0
                        } else {
                            f.pad_lo[d]
                        };
                        e = lead + row_span + f.pad_hi[d];
                    }
                    ext.push(e);
                }
                let mut stride = vec![1usize; self.rank];
                for d in (0..self.rank - 1).rev() {
                    stride[d] = stride[d + 1] * ext[d + 1];
                }
                FieldGeom {
                    len: stride[0] * ext[0],
                    stride,
                    back0,
                }
            })
            .collect()
    }
}

/// Per-field scratch geometry of one `execute` call (extents fixed across
/// tiles; the outermost origin slides with the tile: the buffer's first
/// slice holds outermost coordinate `tile_lo - back0`).
#[derive(Debug, Clone, Default)]
struct FieldGeom {
    /// Row-major strides over the padded extents.
    stride: Vec<usize>,
    /// Slices the outermost origin sits *before* the tile start.
    back0: usize,
    len: usize,
}

/// Region of the outermost dimension `field` must cover for tile
/// `(t_lo, t_hi)` at step `t` of a `w`-step window.
#[inline]
fn stage_region(
    plan: &FusePlan,
    field: usize,
    tile: (usize, usize),
    t: usize,
    w: usize,
) -> (usize, usize) {
    let (step_lo, step_hi) = plan.step_dilation();
    let slack = w - t;
    let f = &plan.fields[field];
    let lo = tile.0.saturating_sub(f.grow_lo + slack * step_lo);
    let hi = (tile.1 + f.grow_hi + slack * step_hi).min(plan.shape[0]);
    (lo, hi.max(lo))
}

/// The buffer a field resolves to at step `t`. State pairs share two
/// buffers and alternate roles: the stage writing the pair's *output*
/// field targets buffer `t % 2` (counting the input field's buffer as
/// index 0) and same-step readers of the output follow it there, while
/// readers of the *state input* field resolve to buffer `(t - 1) % 2` —
/// the window's initial state copy at `t = 1`, the previous step's output
/// afterwards.
#[inline]
fn resolve_buffer(plan: &FusePlan, field: usize, t: usize) -> usize {
    let f = &plan.fields[field];
    let Some(pair) = f.pair else {
        return field;
    };
    let (input_buf, output_buf) = if f.input {
        (field, pair)
    } else {
        (pair, field)
    };
    let parity = if f.input { (t + 1) % 2 } else { t % 2 };
    if parity == 1 {
        output_buf
    } else {
        input_buf
    }
}

/// Iterate the leading-dimension rows of `region` (outermost range × full
/// extents of the middle dimensions). Rank-1 spaces have a single row —
/// the tile already spans the whole dimension.
#[inline]
fn for_each_region_row(plan: &FusePlan, region: (usize, usize), mut body: impl FnMut(&[usize])) {
    let rank = plan.rank;
    if rank == 1 {
        body(&[]);
        return;
    }
    let inner: usize = plan.shape[1..rank - 1].iter().product();
    let mut lead = vec![0usize; rank - 1];
    for x0 in region.0..region.1 {
        lead[0] = x0;
        for row in 0..inner.max(1) {
            let mut rem = row;
            for d in (1..rank - 1).rev() {
                lead[d] = rem % plan.shape[d];
                rem /= plan.shape[d];
            }
            body(&lead);
        }
    }
}

/// Flat offset of the `k = 0` cell (shifted by `off`) of a row in a
/// field's scratch buffer.
#[inline]
fn field_row_base(
    plan: &FusePlan,
    geom: &FieldGeom,
    field: &FusedField,
    tile: (usize, usize),
    lead: &[usize],
    off: &[i64],
) -> usize {
    let rank = plan.rank;
    if rank == 1 {
        return (off[0] - (tile.0 as i64 - geom.back0 as i64)) as usize;
    }
    let mut base = 0i64;
    for (d, &l) in lead.iter().enumerate() {
        let origin = if d == 0 {
            tile.0 as i64 - geom.back0 as i64
        } else {
            -(field.pad_lo[d] as i64)
        };
        base += (l as i64 + off[d] - origin) * geom.stride[d] as i64;
    }
    base += off[rank - 1] + field.pad_lo[rank - 1] as i64;
    base as usize
}

/// Everything a worker needs for one window, shared read-only.
struct TileCtx<'a> {
    plan: &'a FusePlan,
    compiled: &'a CompiledProgram,
    geoms: &'a [FieldGeom],
    /// Raw source data per input field (user grids, or the pooled state
    /// grids of the previous window).
    sources: Vec<Option<&'a [f64]>>,
    /// Scalar values per field (scalar inputs only).
    scalars: &'a [f64],
    /// Steps in this window.
    w: usize,
    /// Whether this is the final window (outputs + masks are written).
    last: bool,
    tiles: &'a [(usize, usize)],
    /// Tier-4 native stage functions, indexed like `plan.stages` (`None`
    /// entries and `None` overall both mean "sweep through the bytecode").
    jit: Option<&'a [Option<StageFn>]>,
}

/// Mutable write targets of one worker for one window.
struct WorkerTargets<'a> {
    /// Final window: per-output grid slabs covering the worker's tiles.
    grids: Vec<&'a mut [f64]>,
    /// Final window: per-output mask slabs.
    masks: Vec<&'a mut [bool]>,
    /// Non-final windows: per-state-pair next-state slabs.
    state: Vec<&'a mut [f64]>,
}

/// Execute `compiled` through the fused tier for `steps` time steps
/// (`steps == 1` is a plain fused run; callers have already validated the
/// inputs and, for `steps > 1`, that the plan supports stepping).
pub(crate) fn execute(
    executor: &ReferenceExecutor,
    compiled: &CompiledProgram,
    plan: &FusePlan,
    inputs: &BTreeMap<String, Grid>,
    steps: usize,
) -> Result<ExecutionResult> {
    execute_with(executor, compiled, plan, inputs, steps, None)
}

/// [`execute`] with optional Tier-4 native stage functions: when `jit`
/// provides a function for a stage, its sweeps run through the compiled
/// `.so` instead of the bytecode lane interpreter — same tiles, same
/// windows, same pads, same copies, so everything in the bit-identity
/// argument above carries over except the innermost kernel evaluation,
/// which the native unit replicates operation-for-operation (see
/// [`FusePlan::jit_unit`]).
pub(crate) fn execute_with(
    executor: &ReferenceExecutor,
    compiled: &CompiledProgram,
    plan: &FusePlan,
    inputs: &BTreeMap<String, Grid>,
    steps: usize,
    jit: Option<&[Option<StageFn>]>,
) -> Result<ExecutionResult> {
    let w_max = executor.fusion_window().clamp(1, steps);
    let num_cells: usize = plan.shape.iter().product();
    let live_stages = plan.stages.iter().filter(|s| s.live).count();
    let threads = executor.sweep_workers(
        plan.shape[0],
        num_cells * live_stages.max(1) * steps.min(w_max),
        2,
    );
    let tiles = plan.tile_bounds(w_max, executor.fusion_tile_rows(), threads);
    let max_tile_h = tiles.iter().map(|&(lo, hi)| hi - lo).max().unwrap_or(1);
    let geoms = plan.geometries(max_tile_h, w_max, plan.lanes);

    // Scalar prefills and input sources.
    let mut scalars = vec![0.0f64; plan.fields.len()];
    let mut user_sources: Vec<Option<&[f64]>> = vec![None; plan.fields.len()];
    for (ix, field) in plan.fields.iter().enumerate() {
        if !field.input || !field.live {
            continue;
        }
        let grid = inputs
            .get(&field.name)
            .ok_or_else(|| ProgramError::Invalid {
                message: format!("missing input grid `{}`", field.name),
            })?;
        if field.scalar {
            scalars[ix] = grid.as_slice()[0];
        } else {
            user_sources[ix] = Some(grid.as_slice());
        }
    }

    // Result grids and masks for the program outputs.
    let dim_refs: Vec<&str> = plan.dims.iter().map(String::as_str).collect();
    // Under the service tier (pooled results) these buffers come from the
    // executor pools — zero-filled / all-true exactly like the fresh
    // allocations the sweeps below were written against.
    let mut out_grids: Vec<Grid> = plan
        .outputs
        .iter()
        .map(|&(stage, _)| {
            Grid::from_data(
                &dim_refs,
                &plan.shape,
                plan.stages[stage].out_dtype,
                executor.alloc_result_cells(num_cells),
            )
        })
        .collect();
    let mut out_masks: Vec<Vec<bool>> = plan
        .outputs
        .iter()
        .map(|_| executor.alloc_result_mask(num_cells))
        .collect();

    // Window partition of the step count.
    let windows: Vec<usize> = {
        let mut remaining = steps;
        let mut w = Vec::new();
        while remaining > 0 {
            let take = remaining.min(w_max);
            w.push(take);
            remaining -= take;
        }
        w
    };

    // Pooled full-size state grids for window boundaries (two alternating
    // sets; none needed when one window covers every step).
    let pairs: &[(usize, usize)] = plan
        .steps
        .as_ref()
        .map(|s| s.pairs.as_slice())
        .unwrap_or(&[]);
    let mut state_a: Vec<Vec<f64>> = Vec::new();
    let mut state_b: Vec<Vec<f64>> = Vec::new();
    if windows.len() > 1 {
        state_a = pairs
            .iter()
            .map(|_| executor.pool_acquire(num_cells))
            .collect();
        state_b = pairs
            .iter()
            .map(|_| executor.pool_acquire(num_cells))
            .collect();
    }

    // Per-worker scratch buffers, acquired once for the whole call.
    let worker_count = threads.min(tiles.len()).max(1);
    let mut worker_scratch: Vec<Vec<Vec<f64>>> = (0..worker_count)
        .map(|_| {
            geoms
                .iter()
                .map(|g| {
                    if g.len == 0 {
                        // Dead or scalar field: no buffer.
                        Vec::new()
                    } else {
                        executor.pool_acquire(g.len)
                    }
                })
                .collect()
        })
        .collect();

    // Contiguous tile ranges per worker.
    let per_worker = tiles.len().div_ceil(worker_count);
    let worker_tiles: Vec<(usize, usize)> = (0..worker_count)
        .map(|ix| {
            let lo = (ix * per_worker).min(tiles.len());
            (lo, ((ix + 1) * per_worker).min(tiles.len()))
        })
        .collect();

    let slice_cells = plan.slice_cells();
    let mut cells_evaluated = 0usize;
    for (wix, &w) in windows.iter().enumerate() {
        let last = wix + 1 == windows.len();
        // Windows alternate between the two pooled state sets: window 0
        // writes A, window 1 reads A and writes B, and so on (the final
        // window writes the result grids instead).
        let (read_set, write_set): (&Vec<Vec<f64>>, &mut Vec<Vec<f64>>) = if wix % 2 == 0 {
            (&state_b, &mut state_a)
        } else {
            (&state_a, &mut state_b)
        };
        // This window's state sources: user inputs first, the previous
        // window's pooled outputs afterwards.
        let mut sources = user_sources.clone();
        if wix > 0 {
            for (p, &(_, input)) in pairs.iter().enumerate() {
                sources[input] = Some(read_set[p].as_slice());
            }
        }

        // Split the write targets into disjoint per-worker slabs.
        let mut grid_slabs: Vec<Vec<&mut [f64]>> = Vec::new();
        let mut mask_slabs: Vec<Vec<&mut [bool]>> = Vec::new();
        let mut state_slabs: Vec<Vec<&mut [f64]>> = Vec::new();
        if last {
            for grid in out_grids.iter_mut() {
                grid_slabs.push(split_slabs(
                    grid.as_mut_slice(),
                    &worker_tiles,
                    &tiles,
                    slice_cells,
                ));
            }
            for mask in out_masks.iter_mut() {
                mask_slabs.push(split_slabs(mask, &worker_tiles, &tiles, slice_cells));
            }
        } else {
            for buf in write_set.iter_mut() {
                state_slabs.push(split_slabs(
                    buf.as_mut_slice(),
                    &worker_tiles,
                    &tiles,
                    slice_cells,
                ));
            }
        }
        // Transpose target-major slabs into worker-major bundles.
        let mut bundles: Vec<WorkerTargets<'_>> = (0..worker_count)
            .map(|_| WorkerTargets {
                grids: Vec::new(),
                masks: Vec::new(),
                state: Vec::new(),
            })
            .collect();
        for slabs in grid_slabs {
            for (worker, slab) in slabs.into_iter().enumerate() {
                bundles[worker].grids.push(slab);
            }
        }
        for slabs in mask_slabs {
            for (worker, slab) in slabs.into_iter().enumerate() {
                bundles[worker].masks.push(slab);
            }
        }
        for slabs in state_slabs {
            for (worker, slab) in slabs.into_iter().enumerate() {
                bundles[worker].state.push(slab);
            }
        }

        let ctx = TileCtx {
            plan,
            compiled,
            geoms: &geoms,
            sources,
            scalars: &scalars,
            w,
            last,
            tiles: &tiles,
            jit,
        };
        let evaluated: Vec<usize> = if worker_count == 1 {
            let bundle = bundles.pop().expect("one bundle per worker");
            vec![run_worker(
                &ctx,
                worker_tiles[0],
                bundle,
                &mut worker_scratch[0],
            )]
        } else {
            std::thread::scope(|scope| {
                let ctx = &ctx;
                let mut handles = Vec::with_capacity(worker_count);
                for ((range, bundle), scratch) in worker_tiles
                    .iter()
                    .zip(bundles)
                    .zip(worker_scratch.iter_mut())
                {
                    let range = *range;
                    handles.push(scope.spawn(move || run_worker(ctx, range, bundle, scratch)));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fused workers do not panic"))
                    .collect()
            })
        };
        cells_evaluated += evaluated.iter().sum::<usize>();
    }

    for set in worker_scratch {
        for buf in set {
            if buf.capacity() > 0 {
                executor.pool_release(buf);
            }
        }
    }
    for buf in state_a.into_iter().chain(state_b) {
        executor.pool_release(buf);
    }

    let mut result_fields = BTreeMap::new();
    let mut result_masks = BTreeMap::new();
    for ((&(stage, _), grid), mask) in plan.outputs.iter().zip(out_grids).zip(out_masks) {
        let name = compiled.stencil_plans()[plan.stages[stage].stencil]
            .name()
            .to_string();
        result_fields.insert(name.clone(), grid);
        result_masks.insert(name, mask);
    }
    Ok(ExecutionResult::from_parts(
        result_fields,
        result_masks,
        cells_evaluated,
    ))
}

/// Split a full-grid buffer into per-worker slabs along the tile bounds.
fn split_slabs<'a, T>(
    mut buf: &'a mut [T],
    worker_tiles: &[(usize, usize)],
    tiles: &[(usize, usize)],
    slice_cells: usize,
) -> Vec<&'a mut [T]> {
    let mut slabs = Vec::with_capacity(worker_tiles.len());
    for &(tile_lo, tile_hi) in worker_tiles {
        if tile_lo >= tile_hi {
            slabs.push(&mut [] as &mut [T]);
            continue;
        }
        let rows = tiles[tile_hi - 1].1 - tiles[tile_lo].0;
        let (slab, rest) = buf.split_at_mut(rows * slice_cells);
        slabs.push(slab);
        buf = rest;
    }
    slabs
}

/// Execute one worker's tile range for one window; returns the number of
/// logical cells evaluated (tile-overlap recompute included, end-of-row
/// over-compute excluded).
fn run_worker(
    ctx: &TileCtx<'_>,
    range: (usize, usize),
    targets: WorkerTargets<'_>,
    scratch: &mut [Vec<f64>],
) -> usize {
    if range.0 >= range.1 {
        return 0;
    }
    match ctx.plan.lanes {
        32 => run_worker_lanes::<32>(ctx, range, targets, scratch),
        16 => run_worker_lanes::<16>(ctx, range, targets, scratch),
        _ => run_worker_lanes::<8>(ctx, range, targets, scratch),
    }
}

fn run_worker_lanes<const L: usize>(
    ctx: &TileCtx<'_>,
    range: (usize, usize),
    mut targets: WorkerTargets<'_>,
    scratch: &mut [Vec<f64>],
) -> usize {
    let plan = ctx.plan;
    let plans = ctx.compiled.stencil_plans();
    let mut lane_scratch = LaneScratch::<L>::default();
    let max_slots = plan.stages.iter().map(|s| s.slots.len()).max().unwrap_or(0);
    let mut lane_values: Vec<[f64; L]> = vec![[0.0; L]; max_slots];
    let mut cells = 0usize;
    let worker_row0 = ctx.tiles[range.0].0;

    for tile_ix in range.0..range.1 {
        let tile = ctx.tiles[tile_ix];
        // Seed the pad cells of every live buffer with its boundary
        // constant. Only actual pads are filled — in-domain cells are
        // either computed/copied this tile or provably never read.
        for (f, field) in plan.fields.iter().enumerate() {
            if field.live && !field.scalar {
                fill_pads(plan, &ctx.geoms[f], field, &mut scratch[f], tile);
            }
        }
        // Copy input fields (and the window's initial state) into scratch
        // over their step-1 region.
        for (f, field) in plan.fields.iter().enumerate() {
            if !field.live || field.scalar || !field.input {
                continue;
            }
            let Some(src) = ctx.sources[f] else { continue };
            let region = stage_region(plan, f, tile, 1, ctx.w);
            copy_region_in(
                plan,
                &ctx.geoms[f],
                field,
                src,
                &mut scratch[f],
                tile,
                region,
            );
        }

        for t in 1..=ctx.w {
            for (stage_ix, stage) in plan.stages.iter().enumerate() {
                if !stage.live {
                    continue;
                }
                let region = stage_region(plan, stage.field, tile, t, ctx.w);
                if region.0 >= region.1 {
                    continue;
                }
                if let Some(func) = ctx.jit.and_then(|fns| fns[stage_ix].as_ref()) {
                    cells += sweep_stage_native(
                        ctx,
                        stage,
                        func,
                        SweepSpan { tile, t, region },
                        scratch,
                    );
                    continue;
                }
                let typed = plans[stage.stencil]
                    .typed_kernel()
                    .expect("fuse eligibility requires typed kernels");
                cells += sweep_stage::<L>(
                    ctx,
                    stage,
                    typed,
                    SweepSpan { tile, t, region },
                    scratch,
                    &mut lane_values,
                    &mut lane_scratch,
                );
            }
        }

        // Write back the final step's outputs over the tile proper.
        let w = ctx.w;
        if ctx.last {
            for (o, &(stage_ix, field)) in plan.outputs.iter().enumerate() {
                let stage = &plan.stages[stage_ix];
                let buf = resolve_buffer(plan, field, w);
                copy_region_out(
                    plan,
                    &ctx.geoms[buf],
                    &plan.fields[buf],
                    &scratch[buf],
                    targets.grids[o],
                    tile,
                    worker_row0,
                );
                if stage.shrink {
                    fill_mask(plan, stage, targets.masks[o], tile, worker_row0);
                }
            }
        } else {
            let pairs = &plan
                .steps
                .as_ref()
                .expect("non-final windows only exist when stepping")
                .pairs;
            for (p, &(out_field, _)) in pairs.iter().enumerate() {
                let buf = resolve_buffer(plan, out_field, w);
                copy_region_out(
                    plan,
                    &ctx.geoms[buf],
                    &plan.fields[buf],
                    &scratch[buf],
                    targets.state[p],
                    tile,
                    worker_row0,
                );
            }
        }
    }
    cells
}

/// Where one stage sweep lands: the tile, the temporal step within the
/// window, and the dim0 region dilation assigns to that step.
#[derive(Clone, Copy)]
struct SweepSpan {
    tile: (usize, usize),
    t: usize,
    region: (usize, usize),
}

/// Sweep one stage over `span.region` of `span.tile` at step `span.t`.
/// Returns the number of logical cells computed.
fn sweep_stage<const L: usize>(
    ctx: &TileCtx<'_>,
    stage: &FusedStage,
    typed: &TypedKernel,
    span: SweepSpan,
    scratch: &mut [Vec<f64>],
    lane_values: &mut [[f64; L]],
    lane_scratch: &mut LaneScratch<L>,
) -> usize {
    let plan = ctx.plan;
    let SweepSpan { tile, t, region } = span;
    let rank = plan.rank;
    let shape_k = plan.shape[rank - 1];
    let batches = shape_k.div_ceil(L);
    let zero_off = vec![0i64; rank];

    // Prefill scalar lanes (the lane loader falls back to these).
    for (s, slot) in stage.slots.iter().enumerate() {
        if let FusedSlot::Scalar(field) = slot {
            lane_values[s] = [ctx.scalars[*field]; L];
        }
    }
    // Resolve the ping-pong-aware read buffers, then momentarily take the
    // write buffer out of the scratch set so reads can borrow the rest.
    let reads: Vec<Option<(usize, &[i64])>> = stage
        .slots
        .iter()
        .map(|slot| match slot {
            FusedSlot::Scalar(_) => None,
            FusedSlot::Tap { field, off } => {
                Some((resolve_buffer(plan, *field, t), off.as_slice()))
            }
        })
        .collect();
    let write_buf = resolve_buffer(plan, stage.field, t);
    let mut out = std::mem::take(&mut scratch[write_buf]);
    let out_geom = &ctx.geoms[write_buf];
    let out_field = &plan.fields[write_buf];
    let pad_hi_k = out_field.pad_hi[rank - 1];
    let refill_tail = pad_hi_k > 0 && batches * L > shape_k;

    // Iteration spaces have at most three dimensions, so rows of one
    // outermost slice advance by exactly one (middle-dimension) stride:
    // bases are computed once per slice and incremented per row.
    let inner = if rank >= 3 { plan.shape[1] } else { 1 };
    let x0_range = if rank == 1 { 0..1 } else { region.0..region.1 };
    let mut computed = 0usize;
    let mut slot_bases = vec![0usize; reads.len()];
    let mut lead = vec![0usize; rank.saturating_sub(1)];
    for x0 in x0_range {
        if rank >= 2 {
            lead[0] = x0;
        }
        if rank >= 3 {
            lead[1] = 0;
        }
        let mut out_base = field_row_base(plan, out_geom, out_field, tile, &lead, &zero_off);
        for (s, read) in reads.iter().enumerate() {
            if let Some((buf, off)) = read {
                slot_bases[s] =
                    field_row_base(plan, &ctx.geoms[*buf], &plan.fields[*buf], tile, &lead, off);
            }
        }
        for _j in 0..inner {
            for b in 0..batches {
                let k0 = b * L;
                // Each slot batch is built directly on the operand stack
                // from its contiguous scratch row (scalars broadcast from
                // the prefilled template).
                let result = typed.eval_lanes_with(
                    |s| match &reads[s] {
                        Some((buf, _)) => {
                            let mut batch = [0.0; L];
                            let base = slot_bases[s] + k0;
                            batch.copy_from_slice(&scratch[*buf][base..base + L]);
                            batch
                        }
                        None => lane_values[s],
                    },
                    lane_scratch,
                );
                round_lanes(
                    &result,
                    stage.out_dtype,
                    &mut out[out_base + k0..out_base + k0 + L],
                );
            }
            computed += shape_k;
            // Restore the tail pad the over-computed last batch clobbered.
            if refill_tail {
                out[out_base + shape_k..out_base + shape_k + pad_hi_k].fill(out_field.pad_constant);
            }
            if rank >= 3 {
                out_base += out_geom.stride[1];
                for (s, read) in reads.iter().enumerate() {
                    if let Some((buf, _)) = read {
                        slot_bases[s] += ctx.geoms[*buf].stride[1];
                    }
                }
            }
        }
    }
    scratch[write_buf] = out;
    computed
}

/// Sweep one stage through its compiled Tier-4 native function. The sweep
/// geometry is exactly [`sweep_stage`]'s: the same region rows, the same
/// ping-pong buffer resolution, the same `field_row_base` anchors — row
/// bases are linear in the leading coordinates, so the whole
/// `region × shape[1] × shape[k]` walk is three strides handed to the
/// native code. Differences from the bytecode sweep, both asymptotically
/// invisible to consumers:
///
/// * no end-of-row over-compute — the native loop writes exactly
///   `[0, nk)`, so the tail pad is never clobbered and never refilled
///   (the pads keep their `fill_pads` constants, which is what the
///   refill restores anyway);
/// * write-slack cells past the tail pad are left untouched instead of
///   holding garbage lane results (never read either way).
fn sweep_stage_native(
    ctx: &TileCtx<'_>,
    stage: &FusedStage,
    func: &StageFn,
    span: SweepSpan,
    scratch: &mut [Vec<f64>],
) -> usize {
    let plan = ctx.plan;
    let SweepSpan { tile, t, region } = span;
    let rank = plan.rank;
    let shape_k = plan.shape[rank - 1];
    let zero_off = vec![0i64; rank];

    let (n0, n1) = match rank {
        1 => (1usize, 1usize),
        2 => (region.1 - region.0, 1),
        _ => (region.1 - region.0, plan.shape[1]),
    };
    let lead: Vec<usize> = match rank {
        1 => Vec::new(),
        2 => vec![region.0],
        _ => vec![region.0, 0],
    };

    let write_buf = resolve_buffer(plan, stage.field, t);
    let mut out = std::mem::take(&mut scratch[write_buf]);
    let out_geom = &ctx.geoms[write_buf];
    let out_field = &plan.fields[write_buf];
    let out_base = field_row_base(plan, out_geom, out_field, tile, &lead, &zero_off);

    let stride01 = |geom: &FieldGeom| -> (usize, usize) {
        (
            if rank >= 2 { geom.stride[0] } else { 0 },
            if rank >= 3 { geom.stride[1] } else { 0 },
        )
    };
    let slots: Vec<SlotArg<'_>> = stage
        .slots
        .iter()
        .map(|slot| match slot {
            FusedSlot::Scalar(field) => SlotArg::Scalar(ctx.scalars[*field]),
            FusedSlot::Tap { field, off } => {
                let buf = resolve_buffer(plan, *field, t);
                let base =
                    field_row_base(plan, &ctx.geoms[buf], &plan.fields[buf], tile, &lead, off);
                let (s0, s1) = stride01(&ctx.geoms[buf]);
                SlotArg::Tap {
                    buf: &scratch[buf],
                    base,
                    s0,
                    s1,
                }
            }
        })
        .collect();
    let (out_s0, out_s1) = stride01(out_geom);
    let mut args = SweepArgs {
        slots: &slots,
        out: &mut out,
        out_base,
        out_s0,
        out_s1,
        n0,
        n1,
        nk: shape_k,
    };
    // The bounds validation inside `sweep` re-checks the geometry this
    // function just derived; a failure is a planner bug, not a runtime
    // condition to fall back from.
    if let Err(e) = func.sweep(&mut args) {
        panic!("jit sweep geometry rejected: {e}");
    }
    scratch[write_buf] = out;
    n0 * n1 * shape_k
}

/// Seed the pad cells of one scratch buffer for one tile:
///
/// * innermost head/tail pads on every row;
/// * full pad rows of the middle dimensions on every covered slice;
/// * the out-of-domain outermost mini-slabs the buffer covers (positions
///   `[-pad_lo, 0)` and `[shape, shape + pad_hi)` — positions further out
///   are never read).
///
/// In-domain cells are deliberately left as-is: every in-domain read is
/// contained in a computed (or copied) region by the dilation-chain
/// invariant, so stale values from previous tiles are unobservable.
fn fill_pads(
    plan: &FusePlan,
    geom: &FieldGeom,
    field: &FusedField,
    buf: &mut [f64],
    tile: (usize, usize),
) {
    let rank = plan.rank;
    let c = field.pad_constant;
    let ext0 = if geom.stride.is_empty() {
        return;
    } else {
        geom.len / geom.stride[0]
    };
    if rank == 1 {
        // Head [0, back0 + min offset .. ) — everything below the row
        // origin plus the row pads; the row occupies
        // [back0, back0 + row_span), reads reach `pad_lo` below and
        // `pad_hi` above it.
        let row_start = geom.back0;
        buf[row_start - field.pad_lo[0]..row_start].fill(c);
        let shape = plan.shape[0];
        let tail = row_start + shape;
        let tail_end = (tail + field.pad_hi[0]).min(buf.len());
        buf[tail..tail_end].fill(c);
        return;
    }
    let origin0 = tile.0 as i64 - geom.back0 as i64;
    // Out-of-domain outermost mini-slabs.
    for pos in -(field.pad_lo[0] as i64)..0 {
        let row = pos - origin0;
        if (0..ext0 as i64).contains(&row) {
            let start = row as usize * geom.stride[0];
            buf[start..start + geom.stride[0]].fill(c);
        }
    }
    for pos in plan.shape[0] as i64..(plan.shape[0] + field.pad_hi[0]) as i64 {
        let row = pos - origin0;
        if (0..ext0 as i64).contains(&row) {
            let start = row as usize * geom.stride[0];
            buf[start..start + geom.stride[0]].fill(c);
        }
    }
    // Middle-dimension pad rows, per covered slice.
    for slice in 0..ext0 {
        let slice_start = slice * geom.stride[0];
        for d in 1..rank - 1 {
            let ext_d = geom.stride[d - 1] / geom.stride[d];
            let lo = field.pad_lo[d];
            let hi_start = lo + plan.shape[d];
            // Fill rows [0, lo) and [hi_start, ext_d) of dimension d over
            // the remaining (inner) extent.
            for r in (0..lo).chain(hi_start..ext_d) {
                let start = slice_start + r * geom.stride[d];
                buf[start..start + geom.stride[d]].fill(c);
            }
        }
    }
    // Innermost head/tail pads on every (in-domain-or-not) row.
    let rows = geom.len / geom.stride[rank - 2];
    let row_len = geom.stride[rank - 2];
    let k_lo = field.pad_lo[rank - 1];
    let k_tail = k_lo + plan.shape[rank - 1];
    let k_tail_end = (k_tail + field.pad_hi[rank - 1]).min(row_len);
    for r in 0..rows {
        let start = r * row_len;
        buf[start..start + k_lo].fill(c);
        buf[start + k_tail..start + k_tail_end].fill(c);
    }
}

/// Copy the in-domain rows of `region` from a full grid into scratch.
fn copy_region_in(
    plan: &FusePlan,
    geom: &FieldGeom,
    field: &FusedField,
    src: &[f64],
    dst: &mut [f64],
    tile: (usize, usize),
    region: (usize, usize),
) {
    let rank = plan.rank;
    let shape_k = plan.shape[rank - 1];
    let mut gstride = vec![1usize; rank];
    for d in (0..rank - 1).rev() {
        gstride[d] = gstride[d + 1] * plan.shape[d + 1];
    }
    let zero_off = vec![0i64; rank];
    for_each_region_row(plan, region, |lead| {
        let mut gflat = 0usize;
        for (d, &l) in lead.iter().enumerate() {
            gflat += l * gstride[d];
        }
        let sbase = field_row_base(plan, geom, field, tile, lead, &zero_off);
        dst[sbase..sbase + shape_k].copy_from_slice(&src[gflat..gflat + shape_k]);
    });
}

/// Copy the tile-proper rows from scratch into the worker's output slab
/// (whose first row is outermost coordinate `worker_row0`).
fn copy_region_out(
    plan: &FusePlan,
    geom: &FieldGeom,
    field: &FusedField,
    src: &[f64],
    slab: &mut [f64],
    tile: (usize, usize),
    worker_row0: usize,
) {
    let rank = plan.rank;
    let shape_k = plan.shape[rank - 1];
    let mut gstride = vec![1usize; rank];
    for d in (0..rank - 1).rev() {
        gstride[d] = gstride[d + 1] * plan.shape[d + 1];
    }
    let zero_off = vec![0i64; rank];
    for_each_region_row(plan, (tile.0, tile.1), |lead| {
        let mut sflat = 0usize;
        if rank >= 2 {
            sflat += (lead[0] - worker_row0) * gstride[0];
            for d in 1..rank - 1 {
                sflat += lead[d] * gstride[d];
            }
        }
        let sbase = field_row_base(plan, geom, field, tile, lead, &zero_off);
        slab[sflat..sflat + shape_k].copy_from_slice(&src[sbase..sbase + shape_k]);
    });
}

/// Clear the invalid cells of a shrink mask over the tile's rows (masks
/// start all-true; only the cells outside the validity box are written).
fn fill_mask(
    plan: &FusePlan,
    stage: &FusedStage,
    slab: &mut [bool],
    tile: (usize, usize),
    worker_row0: usize,
) {
    let rank = plan.rank;
    let shape_k = plan.shape[rank - 1];
    let mut gstride = vec![1usize; rank];
    for d in (0..rank - 1).rev() {
        gstride[d] = gstride[d + 1] * plan.shape[d + 1];
    }
    let k_lo = stage.mask_lo[rank - 1].min(shape_k);
    let k_hi = stage.mask_hi[rank - 1].clamp(k_lo, shape_k);
    for_each_region_row(plan, (tile.0, tile.1), |lead| {
        let mut sflat = 0usize;
        let mut lead_valid = true;
        if rank >= 2 {
            sflat += (lead[0] - worker_row0) * gstride[0];
            for d in 1..rank - 1 {
                sflat += lead[d] * gstride[d];
            }
            for (d, &l) in lead.iter().enumerate() {
                lead_valid &= l >= stage.mask_lo[d] && l < stage.mask_hi[d];
            }
        }
        let row = &mut slab[sflat..sflat + shape_k];
        if !lead_valid {
            row.fill(false);
        } else {
            row[..k_lo].fill(false);
            row[k_hi..].fill(false);
        }
    });
}
