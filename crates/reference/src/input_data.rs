//! Deterministic input-data generation for tests and benchmarks.

use crate::grid::Grid;
use std::collections::BTreeMap;
use stencilflow_program::StencilProgram;

/// Small deterministic split-mix-64 generator. Input data only needs to be
/// reproducible and well-spread, not cryptographic, so a local generator
/// avoids an external dependency.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        // Pre-mix so that small consecutive seeds produce unrelated streams.
        let mut rng = SplitMix64(seed ^ 0x9e3779b97f4a7c15);
        rng.next_u64();
        rng
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[low, high)`.
    fn gen_range(&mut self, low: f64, high: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

/// Generates reproducible pseudo-random input grids for a program.
#[derive(Debug, Clone)]
pub struct InputGenerator {
    seed: u64,
    low: f64,
    high: f64,
}

impl InputGenerator {
    /// Create a generator with the given seed, producing values in
    /// `[0.1, 1.0)` (strictly positive, which keeps divisions and square
    /// roots in stencil codes well-defined).
    pub fn new(seed: u64) -> Self {
        InputGenerator {
            seed,
            low: 0.1,
            high: 1.0,
        }
    }

    /// Override the value range.
    pub fn with_range(mut self, low: f64, high: f64) -> Self {
        self.low = low;
        self.high = high;
        self
    }

    /// Generate one grid per program input, shaped per its declaration.
    pub fn generate(&self, program: &StencilProgram) -> BTreeMap<String, Grid> {
        let mut rng = SplitMix64::new(self.seed);
        let space = program.space();
        let mut grids = BTreeMap::new();
        for (name, decl) in program.inputs() {
            let dims: Vec<&str> = decl.dims.iter().map(String::as_str).collect();
            let shape: Vec<usize> = decl
                .dims
                .iter()
                .map(|d| space.dim_index(d).map(|ix| space.shape[ix]).unwrap_or(1))
                .collect();
            let grid = Grid::from_fn(&dims, &shape, decl.data_type(), |_| {
                rng.gen_range(self.low, self.high)
            });
            grids.insert(name.to_string(), grid);
        }
        grids
    }
}

/// Convenience wrapper: generate inputs for `program` with the default range.
pub fn generate_inputs(program: &StencilProgram, seed: u64) -> BTreeMap<String, Grid> {
    InputGenerator::new(seed).generate(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn program() -> StencilProgram {
        StencilProgramBuilder::new("p", &[4, 6])
            .input("a", DataType::Float32, &["i", "j"])
            .input("row", DataType::Float32, &["j"])
            .scalar("dt", DataType::Float32)
            .stencil("b", "a[i,j] + row[j] * dt")
            .output("b")
            .build()
            .unwrap()
    }

    #[test]
    fn shapes_match_declarations() {
        let inputs = generate_inputs(&program(), 7);
        assert_eq!(inputs["a"].shape(), &[4, 6]);
        assert_eq!(inputs["row"].shape(), &[6]);
        assert_eq!(inputs["dt"].shape(), &[] as &[usize]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_inputs(&program(), 7);
        let b = generate_inputs(&program(), 7);
        let c = generate_inputs(&program(), 8);
        assert_eq!(a["a"], b["a"]);
        assert_ne!(a["a"], c["a"]);
    }

    #[test]
    fn values_respect_range() {
        let inputs = InputGenerator::new(1)
            .with_range(2.0, 3.0)
            .generate(&program());
        for v in inputs["a"].as_slice() {
            assert!((2.0..3.0).contains(v));
        }
    }
}
