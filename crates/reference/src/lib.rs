//! Load/store reference executor for stencil programs.
//!
//! The paper (§VI-C) generates "reference CPU-executed graphs where stencil
//! evaluations are executed sequentially in topological order (i.e., no
//! fusion or parallelism between stencil evaluations), which we can verify
//! against the generated hardware kernels". This crate is that reference
//! path: a straightforward dense-grid executor that serves as functional
//! ground truth for the spatial simulator and the code generator.
//!
//! * [`Grid`] — a dense row-major array over a subset of the iteration-space
//!   dimensions (full-domain fields, lower-dimensional parameter fields, and
//!   scalars are all grids of different rank).
//! * [`ReferenceExecutor`] — evaluates every stencil over the full domain in
//!   topological order, applying the per-field boundary conditions
//!   (`constant`, `copy`) and computing the `shrink` validity mask. The
//!   default [`ReferenceExecutor::run`] path sweeps compiled execution
//!   plans (the private `plan` module) — slot-resolved bytecode,
//!   interior/halo splitting, lane batching, row parallelism — while
//!   [`ReferenceExecutor::run_interpreted`] keeps
//!   the tree-walking evaluator as the semantic baseline; both produce
//!   bit-identical results (see `docs/evaluation.md`).
//! * [`input_data`] — deterministic pseudo-random input generation shared by
//!   tests and benchmarks.

#![forbid(unsafe_code)]

pub mod executor;
mod fuse;
pub mod grid;
pub mod input_data;
mod jit;
mod plan;
pub mod serve;
pub mod shard;

pub use executor::{CompiledProgram, ExecutionResult, ReferenceExecutor};
pub use grid::Grid;
pub use input_data::{generate_inputs, InputGenerator};
pub use jit::{jit_available, jit_cache_stats};
pub use serve::daemon::{
    CancelReason, Daemon, DaemonConfig, DaemonOutcome, DaemonRequest, DaemonStats, DrainReport,
    JobStatus, RejectReason, TenantQuota,
};
pub use serve::{
    CancelToken, JobError, JobFault, JobOutcome, JobResult, JobSpec, ServeConfig, ServeExecutor,
    ServeStats, Tier, TierCacheLoad, TierChoice, TierPolicy,
};
pub use shard::{FaultPlan, ShardConfig, ShardReport, ShardStats, ShardedOutcome, WatchdogReport};
pub use stencilflow_jit::CacheStats as JitCacheStats;

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::{BoundaryCondition, StencilProgramBuilder};

    #[test]
    fn end_to_end_small_program() {
        let program = StencilProgramBuilder::new("p", &[4, 4])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("b", "a[i,j] * 2.0")
            .stencil("c", "b[i,j] + 1.0")
            .output("c")
            .build()
            .unwrap();
        let inputs = generate_inputs(&program, 42);
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let a = &inputs["a"];
        let c = result.field("c").unwrap();
        for index in program.space().indices() {
            let expected = a.get(&index) * 2.0 + 1.0;
            assert!((c.get(&index) - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn boundary_constant_and_copy() {
        let program = StencilProgramBuilder::new("p", &[4])
            .input("a", DataType::Float32, &["i"])
            .stencil("left", "a[i-1]")
            .boundary("left", "a", BoundaryCondition::Constant(7.0))
            .stencil("copyleft", "a[i-1]")
            .boundary("copyleft", "a", BoundaryCondition::Copy)
            .output("left")
            .output("copyleft")
            .build()
            .unwrap();
        let mut inputs = std::collections::BTreeMap::new();
        inputs.insert(
            "a".to_string(),
            Grid::from_values(&["i"], &[4], &[10.0, 20.0, 30.0, 40.0]),
        );
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        // left[0] reads a[-1] -> constant 7; left[1] reads a[0] = 10.
        assert_eq!(result.field("left").unwrap().get(&[0]), 7.0);
        assert_eq!(result.field("left").unwrap().get(&[1]), 10.0);
        // copyleft[0] reads a[-1] -> copy of center a[0] = 10.
        assert_eq!(result.field("copyleft").unwrap().get(&[0]), 10.0);
        assert_eq!(result.field("copyleft").unwrap().get(&[3]), 30.0);
    }
}
