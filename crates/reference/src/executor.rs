//! Topological-order execution of stencil programs.
//!
//! Stencils are evaluated one at a time in dependency order, each swept over
//! the full iteration space. Two execution paths produce bit-identical
//! results (checked by the golden-equivalence suite):
//!
//! * [`ReferenceExecutor::run`] — the fast path: each stencil is compiled to
//!   a slot-resolved [`stencilflow_expr::CompiledKernel`], bound to its
//!   grids in a [`crate::plan::StencilPlan`], and swept with interior/halo
//!   splitting and row parallelism.
//! * [`ReferenceExecutor::run_interpreted`] — the tree-walking evaluator,
//!   kept as the semantic reference ("reference C++" of the paper's
//!   Fig. 13) and as the baseline of the evaluation-throughput benchmark.

use crate::grid::Grid;
use crate::plan::StencilPlan;
use std::collections::BTreeMap;
use stencilflow_expr::{AccessResolver, Evaluator, Value};
use stencilflow_program::{
    BoundaryCondition, ProgramError, Result, StencilNode, StencilProgram,
};

/// Result of running a stencil program on the reference executor.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    fields: BTreeMap<String, Grid>,
    valid_masks: BTreeMap<String, Vec<bool>>,
    cells_evaluated: usize,
}

impl ExecutionResult {
    /// The computed grid of a stencil (any stencil, not just program
    /// outputs).
    pub fn field(&self, name: &str) -> Option<&Grid> {
        self.fields.get(name)
    }

    /// Iterate over all computed stencil fields.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &Grid)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Validity mask of a stencil output (row-major). Cells are invalid when
    /// the stencil has the `shrink` boundary condition and their computation
    /// read out-of-bounds values.
    pub fn valid_mask(&self, name: &str) -> Option<&[bool]> {
        self.valid_masks.get(name).map(Vec::as_slice)
    }

    /// Number of valid output cells of a stencil.
    pub fn valid_count(&self, name: &str) -> usize {
        self.valid_masks
            .get(name)
            .map(|m| m.iter().filter(|&&v| v).count())
            .unwrap_or(0)
    }

    /// Total number of stencil-cell evaluations performed.
    pub fn cells_evaluated(&self) -> usize {
        self.cells_evaluated
    }

    /// Compare a field against another grid, only at valid cells, with the
    /// given relative tolerance. Returns the maximum relative error seen.
    pub fn compare_field(&self, name: &str, other: &Grid) -> Option<f64> {
        let grid = self.fields.get(name)?;
        let mask = self.valid_masks.get(name)?;
        if grid.shape() != other.shape() {
            return None;
        }
        let mut max_err: f64 = 0.0;
        for (flat, index) in grid.indices().enumerate() {
            if !mask[flat] {
                continue;
            }
            let a = grid.get(&index);
            let b = other.get(&index);
            let scale = a.abs().max(b.abs()).max(1.0);
            max_err = max_err.max((a - b).abs() / scale);
        }
        Some(max_err)
    }
}

/// Reference executor.
///
/// Stencils are evaluated one at a time in topological order over the full
/// iteration space; no fusion or pipelining — exactly the "reference C++"
/// path of the paper's workflow (Fig. 13), used to validate the spatial
/// implementations. [`ReferenceExecutor::run`] sweeps each stencil through
/// a compiled execution plan (row-parallel, interior cells skip all bounds
/// checks); [`ReferenceExecutor::run_interpreted`] walks the expression
/// tree per cell and serves as the semantic baseline.
#[derive(Debug, Clone, Default)]
pub struct ReferenceExecutor {
    /// Worker-thread cap for the compiled sweep; `None` picks the available
    /// hardware parallelism.
    max_threads: Option<usize>,
}

/// Sweeps smaller than this stay single-threaded: thread spawn overhead
/// dominates below roughly a quarter-million cell·accesses.
const PARALLEL_THRESHOLD_CELLS: usize = 1 << 15;

impl ReferenceExecutor {
    /// Create a reference executor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the number of worker threads used by [`ReferenceExecutor::run`]
    /// (`1` forces a sequential sweep).
    pub fn with_max_threads(mut self, threads: usize) -> Self {
        self.max_threads = Some(threads.max(1));
        self
    }

    fn check_inputs(program: &StencilProgram, inputs: &BTreeMap<String, Grid>) -> Result<()> {
        for (name, decl) in program.inputs() {
            let grid = inputs.get(name).ok_or_else(|| ProgramError::Invalid {
                message: format!("missing input grid `{name}`"),
            })?;
            let expected_shape: Vec<usize> = decl
                .dims
                .iter()
                .map(|d| {
                    program
                        .space()
                        .dim_index(d)
                        .map(|ix| program.space().shape[ix])
                        .unwrap_or(1)
                })
                .collect();
            if grid.shape() != expected_shape.as_slice() {
                return Err(ProgramError::Invalid {
                    message: format!(
                        "input `{name}` has shape {:?}, expected {:?}",
                        grid.shape(),
                        expected_shape
                    ),
                });
            }
        }
        Ok(())
    }

    /// Run `program` on the given input grids through compiled execution
    /// plans (the fast path).
    ///
    /// Every input field of the program must be present in `inputs` with
    /// matching dimensions. The result contains a grid for every stencil
    /// node (intermediates included), plus validity masks, and is
    /// bit-identical to [`ReferenceExecutor::run_interpreted`].
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Invalid`] if an input grid is missing or has
    /// the wrong shape, and propagates evaluation errors (which indicate a
    /// bug in program validation) as [`ProgramError::Code`].
    pub fn run(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        Self::check_inputs(program, inputs)?;

        let space = program.space();
        let mut computed: BTreeMap<String, Grid> = BTreeMap::new();
        let mut masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
        let mut cells_evaluated = 0usize;
        let order = program.topological_stencils()?;
        let dim_refs: Vec<&str> = space.dims.iter().map(String::as_str).collect();

        for name in &order {
            let stencil = program
                .stencil(name)
                .expect("topological order only lists stencils");
            let code_error = |source| ProgramError::Code {
                stencil: name.clone(),
                source,
            };
            let plan =
                StencilPlan::build(program, stencil, inputs, &computed).map_err(code_error)?;
            let mut output = Grid::zeros(&dim_refs, &space.shape, stencil.output_type);
            let mut mask = vec![true; space.num_cells()];

            let rows = plan.row_count();
            let row_len = plan.row_len();
            let threads = self.worker_threads(rows, space.num_cells());
            if threads <= 1 {
                plan.run_rows(0, rows, output.as_mut_slice(), &mut mask)
                    .map_err(code_error)?;
            } else {
                let rows_per_worker = rows.div_ceil(threads);
                let outcomes: Vec<std::result::Result<(), stencilflow_expr::ExprError>> =
                    std::thread::scope(|scope| {
                        let plan = &plan;
                        let mut handles = Vec::with_capacity(threads);
                        let mut out_rest = output.as_mut_slice();
                        let mut mask_rest = mask.as_mut_slice();
                        let mut row = 0usize;
                        while row < rows {
                            let take = rows_per_worker.min(rows - row);
                            let (out_chunk, next_out) = out_rest.split_at_mut(take * row_len);
                            let (mask_chunk, next_mask) = mask_rest.split_at_mut(take * row_len);
                            out_rest = next_out;
                            mask_rest = next_mask;
                            let start = row;
                            row += take;
                            handles.push(scope.spawn(move || {
                                plan.run_rows(start, start + take, out_chunk, mask_chunk)
                            }));
                        }
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("sweep workers do not panic"))
                            .collect()
                    });
                for outcome in outcomes {
                    outcome.map_err(code_error)?;
                }
            }
            cells_evaluated += space.num_cells();
            computed.insert(name.clone(), output);
            masks.insert(name.clone(), mask);
        }

        Ok(ExecutionResult {
            fields: computed,
            valid_masks: masks,
            cells_evaluated,
        })
    }

    /// Run `program` through the tree-walking evaluator (the semantic
    /// reference path; one cell at a time, no compilation, no parallelism).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run`].
    pub fn run_interpreted(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        Self::check_inputs(program, inputs)?;

        let space = program.space();
        let mut computed: BTreeMap<String, Grid> = BTreeMap::new();
        let mut masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
        let mut cells_evaluated = 0usize;
        let order = program.topological_stencils()?;
        let dim_refs: Vec<&str> = space.dims.iter().map(String::as_str).collect();

        for name in &order {
            let stencil = program
                .stencil(name)
                .expect("topological order only lists stencils");
            let mut output = Grid::zeros(&dim_refs, &space.shape, stencil.output_type);
            let mut mask = vec![true; space.num_cells()];
            for (flat, index) in space.indices().enumerate() {
                let resolver = CellResolver {
                    program,
                    stencil,
                    inputs,
                    computed: &computed,
                    index: &index,
                };
                let value = Evaluator::new(&resolver)
                    .eval_program(&stencil.program)
                    .map_err(|source| ProgramError::Code {
                        stencil: name.clone(),
                        source,
                    })?;
                output.set(&index, value.as_f64());
                if stencil.boundary.shrink && resolver.read_out_of_bounds() {
                    mask[flat] = false;
                }
                cells_evaluated += 1;
            }
            computed.insert(name.clone(), output);
            masks.insert(name.clone(), mask);
        }

        Ok(ExecutionResult {
            fields: computed,
            valid_masks: masks,
            cells_evaluated,
        })
    }

    fn worker_threads(&self, rows: usize, cells: usize) -> usize {
        if cells < PARALLEL_THRESHOLD_CELLS {
            return 1;
        }
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.max_threads.unwrap_or(hardware).min(hardware).min(rows).max(1)
    }
}

/// Resolves field accesses for one cell of one stencil.
struct CellResolver<'a> {
    program: &'a StencilProgram,
    stencil: &'a StencilNode,
    inputs: &'a BTreeMap<String, Grid>,
    computed: &'a BTreeMap<String, Grid>,
    index: &'a [usize],
}

impl CellResolver<'_> {
    fn grid_for(&self, field: &str) -> Option<&Grid> {
        self.inputs.get(field).or_else(|| self.computed.get(field))
    }

    /// Whether any access of this cell fell out of bounds. Tracked by
    /// re-walking the accesses rather than interior mutability, keeping the
    /// resolver `Fn`-shaped for the evaluator.
    fn read_out_of_bounds(&self) -> bool {
        let space = self.program.space();
        for (field, info) in self.stencil.accesses.iter() {
            let Some(dims) = self.program.field_dims(field) else {
                continue;
            };
            for offsets in &info.offsets {
                for ((var, &off), _) in info.index_vars.iter().zip(offsets.iter()).zip(dims.iter())
                {
                    if let Some(dim_ix) = space.dim_index(var) {
                        let pos = self.index[dim_ix] as i64 + off;
                        if pos < 0 || pos >= space.shape[dim_ix] as i64 {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

impl AccessResolver for CellResolver<'_> {
    fn resolve(&self, field: &str, offsets: &[i64]) -> Option<Value> {
        let grid = self.grid_for(field)?;
        let space = self.program.space();
        let info = self.stencil.accesses.get(field)?;
        // Build the signed index into the field's own (possibly
        // lower-dimensional) space.
        let mut signed: Vec<i64> = Vec::with_capacity(info.index_vars.len());
        let mut center: Vec<i64> = Vec::with_capacity(info.index_vars.len());
        for (var, &off) in info.index_vars.iter().zip(offsets.iter()) {
            let dim_ix = space.dim_index(var)?;
            let pos = self.index[dim_ix] as i64 + off;
            signed.push(pos);
            center.push(self.index[dim_ix] as i64);
        }
        if offsets.is_empty() {
            // Scalar access.
            return Some(grid.get_value(&[]));
        }
        match grid.get_checked(&signed) {
            Some(v) => Some(Value::from_f64(v, grid.data_type())),
            None => {
                // Out of bounds: apply the boundary condition.
                match self.stencil.boundary.condition_for(field) {
                    BoundaryCondition::Constant(c) => {
                        Some(Value::from_f64(c, grid.data_type()))
                    }
                    BoundaryCondition::Copy => grid
                        .get_checked(&center)
                        .map(|v| Value::from_f64(v, grid.data_type())),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_data::generate_inputs;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn laplace_program(shape: &[usize]) -> StencilProgram {
        StencilProgramBuilder::new("laplace", shape)
            .input("a", DataType::Float32, &["i", "j"])
            .stencil(
                "lap",
                "-4.0*a[i,j] + a[i-1,j] + a[i+1,j] + a[i,j-1] + a[i,j+1]",
            )
            .shrink("lap")
            .output("lap")
            .build()
            .unwrap()
    }

    #[test]
    fn laplace_matches_hand_computation() {
        let program = laplace_program(&[4, 4]);
        let a = Grid::from_fn(&["i", "j"], &[4, 4], DataType::Float32, |ix| {
            (ix[0] * 4 + ix[1]) as f64
        });
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_string(), a.clone());
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let lap = result.field("lap").unwrap();
        // Interior point (1,1): -4*5 + 1 + 9 + 4 + 6 = 0.
        assert_eq!(lap.get(&[1, 1]), 0.0);
        // Interior point (2,1): -4*9 + 5 + 13 + 8 + 10 = 0.
        assert_eq!(lap.get(&[2, 1]), 0.0);
    }

    #[test]
    fn shrink_mask_marks_boundary_cells_invalid() {
        let program = laplace_program(&[4, 4]);
        let inputs = generate_inputs(&program, 1);
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let mask = result.valid_mask("lap").unwrap();
        // Only the 2x2 interior is valid.
        assert_eq!(result.valid_count("lap"), 4);
        assert!(!mask[0]); // corner
        let space = program.space();
        assert!(mask[space.flat_index(&[1, 1])]);
        assert!(mask[space.flat_index(&[2, 2])]);
        assert!(!mask[space.flat_index(&[0, 2])]);
    }

    #[test]
    fn missing_or_misshapen_inputs_are_rejected() {
        let program = laplace_program(&[4, 4]);
        let empty = BTreeMap::new();
        assert!(ReferenceExecutor::new().run(&program, &empty).is_err());
        let mut wrong = BTreeMap::new();
        wrong.insert(
            "a".to_string(),
            Grid::zeros(&["i", "j"], &[3, 3], DataType::Float32),
        );
        assert!(ReferenceExecutor::new().run(&program, &wrong).is_err());
    }

    #[test]
    fn lower_dimensional_and_scalar_inputs() {
        let program = StencilProgramBuilder::new("p", &[2, 3, 4])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .input("surf", DataType::Float32, &["i", "k"])
            .scalar("dt", DataType::Float32)
            .stencil("out", "a[i,j,k] + surf[i,k] * dt")
            .output("out")
            .build()
            .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "a".to_string(),
            Grid::from_fn(&["i", "j", "k"], &[2, 3, 4], DataType::Float32, |_| 1.0),
        );
        inputs.insert(
            "surf".to_string(),
            Grid::from_fn(&["i", "k"], &[2, 4], DataType::Float32, |ix| {
                (ix[0] * 4 + ix[1]) as f64
            }),
        );
        inputs.insert("dt".to_string(), Grid::scalar(0.5, DataType::Float32));
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let out = result.field("out").unwrap();
        // out[1, 2, 3] = 1 + surf[1,3] * 0.5 = 1 + 7*0.5 = 4.5.
        assert_eq!(out.get(&[1, 2, 3]), 4.5);
        // Independent of j.
        assert_eq!(out.get(&[1, 0, 3]), 4.5);
    }

    #[test]
    fn cells_evaluated_counts_all_stencils() {
        let program = StencilProgramBuilder::new("p", &[2, 2])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("b", "a[i,j] + 1.0")
            .stencil("c", "b[i,j] * 2.0")
            .output("c")
            .build()
            .unwrap();
        let inputs = generate_inputs(&program, 3);
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        assert_eq!(result.cells_evaluated(), 2 * 4);
        assert!(result.field("b").is_some());
        assert!(result.field("c").is_some());
    }

    #[test]
    fn data_dependent_branches() {
        let program = StencilProgramBuilder::new("p", &[4])
            .input("a", DataType::Float32, &["i"])
            .stencil("relu", "a[i] > 0.0 ? a[i] : 0.0")
            .output("relu")
            .build()
            .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "a".to_string(),
            Grid::from_values(&["i"], &[4], &[-1.0, 2.0, -3.0, 4.0]),
        );
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let relu = result.field("relu").unwrap();
        assert_eq!(relu.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }
}
