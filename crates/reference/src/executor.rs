//! Topological-order execution of stencil programs.
//!
//! Stencils are evaluated one at a time in dependency order, each swept over
//! the full iteration space. Two execution paths produce bit-identical
//! results (checked by the golden-equivalence suite):
//!
//! * [`ReferenceExecutor::run`] — the fast path: the program is compiled
//!   once into a [`CompiledProgram`] (slot-resolved — and, where possible,
//!   type-specialized — kernels plus interior/halo geometry, cached across
//!   runs), cheaply bound to this run's grids, and swept with interior/halo
//!   splitting and row parallelism.
//! * [`ReferenceExecutor::run_interpreted`] — the tree-walking evaluator,
//!   kept as the semantic reference ("reference C++" of the paper's
//!   Fig. 13) and as the baseline of the evaluation-throughput benchmark.
//!
//! For iterative workloads, [`ReferenceExecutor::run_steps`] time-steps a
//! program by ping-ponging its output grids back into its inputs, reusing
//! one compiled program across all steps.

use crate::grid::Grid;
use crate::plan::CompiledStencil;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use stencilflow_expr::{AccessResolver, DataType, Evaluator, Value};
use stencilflow_program::{BoundaryCondition, ProgramError, Result, StencilNode, StencilProgram};

/// Result of running a stencil program on the reference executor.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    fields: BTreeMap<String, Grid>,
    valid_masks: BTreeMap<String, Vec<bool>>,
    cells_evaluated: usize,
}

impl ExecutionResult {
    /// The computed grid of a stencil (any stencil, not just program
    /// outputs).
    pub fn field(&self, name: &str) -> Option<&Grid> {
        self.fields.get(name)
    }

    /// Iterate over all computed stencil fields.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &Grid)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Validity mask of a stencil output (row-major). Cells are invalid when
    /// the stencil has the `shrink` boundary condition and their computation
    /// read out-of-bounds values.
    pub fn valid_mask(&self, name: &str) -> Option<&[bool]> {
        self.valid_masks.get(name).map(Vec::as_slice)
    }

    /// Number of valid output cells of a stencil.
    pub fn valid_count(&self, name: &str) -> usize {
        self.valid_masks
            .get(name)
            .map(|m| m.iter().filter(|&&v| v).count())
            .unwrap_or(0)
    }

    /// Total number of stencil-cell evaluations performed (summed over all
    /// time steps for [`ReferenceExecutor::run_steps`]).
    pub fn cells_evaluated(&self) -> usize {
        self.cells_evaluated
    }

    /// Assemble a result from its parts (used by the fused tier, which
    /// builds output grids directly).
    pub(crate) fn from_parts(
        fields: BTreeMap<String, Grid>,
        valid_masks: BTreeMap<String, Vec<bool>>,
        cells_evaluated: usize,
    ) -> ExecutionResult {
        ExecutionResult {
            fields,
            valid_masks,
            cells_evaluated,
        }
    }

    /// Decompose the result into its parts (used by the sharded runtime,
    /// which reassembles global grids from shard interiors).
    pub(crate) fn into_parts(self) -> (BTreeMap<String, Grid>, BTreeMap<String, Vec<bool>>, usize) {
        (self.fields, self.valid_masks, self.cells_evaluated)
    }

    /// Remove and return a computed field (used by the sharded runtime to
    /// feed a window's output back as the next window's input without a
    /// copy).
    pub(crate) fn take_field(&mut self, name: &str) -> Option<Grid> {
        self.fields.remove(name)
    }

    /// Restrict the result to the given field names (the fused tier's
    /// outputs-only contract, applied to fallback results for
    /// consistency).
    pub(crate) fn retain_fields(&mut self, keep: &[String]) {
        self.fields.retain(|name, _| keep.contains(name));
        self.valid_masks.retain(|name, _| keep.contains(name));
    }

    /// Compare a field against another grid, only at valid cells, with the
    /// given relative tolerance. Returns the maximum relative error seen.
    pub fn compare_field(&self, name: &str, other: &Grid) -> Option<f64> {
        let grid = self.fields.get(name)?;
        let mask = self.valid_masks.get(name)?;
        if grid.shape() != other.shape() {
            return None;
        }
        let mut max_err: f64 = 0.0;
        for (flat, index) in grid.indices().enumerate() {
            if !mask[flat] {
                continue;
            }
            let a = grid.get(&index);
            let b = other.get(&index);
            let scale = a.abs().max(b.abs()).max(1.0);
            max_err = max_err.max((a - b).abs() / scale);
        }
        Some(max_err)
    }
}

/// Expected geometry of one input grid, baked at compile time.
#[derive(Debug)]
struct InputSpec {
    name: String,
    shape: Vec<usize>,
    dtype: DataType,
    /// Whether the input spans the full iteration space (and is therefore
    /// eligible as a time-stepping feedback target).
    full_rank: bool,
}

/// A stencil program compiled for repeated execution: slot-resolved (and,
/// where the types allow, type-specialized) kernels, declared-geometry slot
/// bindings, and interior/halo geometry for every stencil, in topological
/// order. Built once by [`ReferenceExecutor::prepare`]; each
/// [`ReferenceExecutor::run_compiled`] call only re-binds grids.
pub struct CompiledProgram {
    name: String,
    dims: Vec<String>,
    shape: Vec<usize>,
    num_cells: usize,
    inputs: Vec<InputSpec>,
    outputs: Vec<String>,
    stencils: Vec<CompiledStencil>,
    /// Tile-fusion analysis: the fused tier's plan, or the reason the
    /// program stays on the materializing path.
    fuse: std::result::Result<crate::fuse::FusePlan, String>,
    /// Hashed structural fingerprint of the source program (the executor
    /// cache key): FNV-1a streamed over the program's `Debug` rendering, so
    /// computing it allocates nothing. Its hex rendering also keys the
    /// Tier-4 disk code cache, salted with the compiler identity — see
    /// `stencilflow-jit`. (A 64-bit collision between structurally
    /// different programs would alias two cache entries; with the cache
    /// capped at [`COMPILED_CACHE_CAPACITY`] entries the odds are
    /// astronomically against it, and the service hot path — thousands of
    /// small jobs hashing on every submit — must not pay an O(program-size)
    /// `String` render per hit.)
    fingerprint: u64,
    /// Tier-4 analysis: the emitted C translation unit for the fused
    /// plan's live stages, or the reason native execution falls back to
    /// the fused tier.
    jit: std::result::Result<crate::jit::JitUnit, String>,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("name", &self.name)
            .field("shape", &self.shape)
            .field("stencils", &self.stencil_count())
            .field("typed_stencils", &self.typed_stencil_count())
            .finish()
    }
}

impl CompiledProgram {
    /// Name of the source program.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compiled stencils.
    pub fn stencil_count(&self) -> usize {
        self.stencils.len()
    }

    /// Number of stencils carrying a type-specialized (`Value`-free) kernel.
    pub fn typed_stencil_count(&self) -> usize {
        self.stencils.iter().filter(|s| s.is_typed()).count()
    }

    /// Number of stencils whose interior sweep can run lane-batched
    /// (branch-free typed kernel, unit- or zero-stride innermost accesses).
    pub fn lane_stencil_count(&self) -> usize {
        self.stencils.iter().filter(|s| s.is_lane_ready()).count()
    }

    /// Whether the tile-fused tier can execute this program directly
    /// (see `docs/evaluation.md`; ineligible programs transparently fall
    /// back to the materializing path).
    pub fn fused_tier_supported(&self) -> bool {
        self.fuse.is_ok()
    }

    /// Why the fused tier falls back to the materializing path, if it
    /// does.
    pub fn fused_fallback_reason(&self) -> Option<&str> {
        self.fuse.as_ref().err().map(String::as_str)
    }

    /// Whether the Tier-4 native backend can execute this program: the
    /// fused tier supports it, and every live stage's optimized bytecode
    /// passed the static verifier with a branch-free judgment and emitted
    /// cleanly as C (see `docs/evaluation.md`). Note this is *static*
    /// eligibility — a machine without a working `cc` still falls back at
    /// run time ([`crate::jit_available`]).
    pub fn jit_supported(&self) -> bool {
        self.jit.is_ok()
    }

    /// Why [`ReferenceExecutor::run_jit`] falls back to the fused tier, if
    /// the program is statically ineligible.
    pub fn jit_fallback_reason(&self) -> Option<&str> {
        self.jit.as_ref().err().map(String::as_str)
    }

    /// The emitted C translation unit for this program's live stages
    /// (`None` when Tier-4 is ineligible). Exposed so CI can archive the
    /// exact sources it compiled next to the bitwise-diff results.
    pub fn jit_source(&self) -> Option<&str> {
        self.jit.as_ref().ok().map(|unit| unit.source.as_str())
    }

    /// The hashed structural program fingerprint (the executor cache key;
    /// the service tier keys its tier-choice cache off it too).
    pub(crate) fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Hex rendering of the fingerprint: the Tier-4 code-cache key (before
    /// salting) and the identity shown in service-layer reports. Moving
    /// from the exact debug render to this hash deliberately bumped every
    /// JIT disk-cache key once (stale entries are simply rebuilt).
    pub(crate) fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }

    /// The program output names (service-tier internal).
    pub(crate) fn output_names(&self) -> &[String] {
        &self.outputs
    }

    /// Number of cells of the full iteration space (service-tier internal).
    pub(crate) fn cell_count(&self) -> usize {
        self.num_cells
    }

    /// Dimension names of the iteration space (service-tier internal).
    pub(crate) fn dim_names(&self) -> &[String] {
        &self.dims
    }

    /// Extents of the iteration space (service-tier internal).
    pub(crate) fn space_shape(&self) -> &[usize] {
        &self.shape
    }

    /// The Tier-4 emission result (JIT-internal).
    pub(crate) fn jit_unit(&self) -> &std::result::Result<crate::jit::JitUnit, String> {
        &self.jit
    }

    /// Whether the fused *time stepper* can run (fused-tier eligibility
    /// plus a derivable feedback pairing with compatible pad constants).
    pub fn fused_steps_supported(&self) -> bool {
        self.fuse
            .as_ref()
            .map(|plan| plan.supports_steps())
            .unwrap_or(false)
    }

    /// The compiled stencils in topological order (fused-tier internal).
    pub(crate) fn stencil_plans(&self) -> &[CompiledStencil] {
        &self.stencils
    }

    /// Number of lane-ready stencils that dispatch to the wide
    /// ([`stencilflow_expr::KERNEL_LANES_WIDE`]) lane width — all-`f32`
    /// kernels on rows long enough that full wide batches dominate.
    pub fn wide_lane_stencil_count(&self) -> usize {
        self.stencils
            .iter()
            .filter(|s| s.is_lane_ready() && s.lane_width() == stencilflow_expr::KERNEL_LANES_WIDE)
            .count()
    }

    /// The output-to-input feedback pairing used by time stepping. A
    /// single-output program pairs with its single full-rank input
    /// directly. A multi-field system must *name* the correspondence: each
    /// output pairs with the full-rank input whose name is the longest
    /// prefix of the output's name (`h -> h_next`, `h2 -> h2_next`), so no
    /// declaration or sort order can silently transpose coupled state.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Invalid`] if the program does not have
    /// exactly one full-rank input per output, if a multi-field pairing is
    /// not derivable by prefix (or two outputs claim the same input), or
    /// if an output's element type differs from the input it would feed.
    pub(crate) fn feedback_pairs(&self) -> Result<Vec<(String, String)>> {
        let feedback: Vec<&InputSpec> = self.inputs.iter().filter(|i| i.full_rank).collect();
        if feedback.len() != self.outputs.len() {
            return Err(ProgramError::Invalid {
                message: format!(
                    "time stepping requires one full-rank input per program output, \
                     but `{}` has {} output(s) and {} full-rank input(s)",
                    self.name,
                    self.outputs.len(),
                    feedback.len()
                ),
            });
        }
        let mut pairs = Vec::with_capacity(self.outputs.len());
        let mut used: Vec<Option<&str>> = vec![None; feedback.len()];
        for output in &self.outputs {
            let target = if feedback.len() == 1 {
                0
            } else {
                let mut best: Option<usize> = None;
                for (ix, spec) in feedback.iter().enumerate() {
                    let longer = match best {
                        None => true,
                        Some(b) => spec.name.len() > feedback[b].name.len(),
                    };
                    if longer && output.starts_with(spec.name.as_str()) {
                        best = Some(ix);
                    }
                }
                best.ok_or_else(|| ProgramError::Invalid {
                    message: format!(
                        "cannot pair output `{output}` with a state input: no full-rank \
                         input name is a prefix of it — name coupled-system outputs \
                         after their state fields (e.g. `h` -> `h_next`)"
                    ),
                })?
            };
            if let Some(previous) = used[target] {
                return Err(ProgramError::Invalid {
                    message: format!(
                        "outputs `{previous}` and `{output}` would both feed input `{}`",
                        feedback[target].name
                    ),
                });
            }
            used[target] = Some(output);
            let spec = feedback[target];
            let out_dtype = self
                .stencils
                .iter()
                .find(|s| s.name() == output)
                .expect("program outputs are stencils")
                .out_dtype();
            if out_dtype != spec.dtype {
                return Err(ProgramError::Invalid {
                    message: format!(
                        "output `{output}` has element type {out_dtype} but would feed \
                         input `{}` of type {}",
                        spec.name, spec.dtype
                    ),
                });
            }
            pairs.push((output.clone(), spec.name.clone()));
        }
        Ok(pairs)
    }
}

/// Reference executor.
///
/// Stencils are evaluated one at a time in topological order over the full
/// iteration space; no fusion or pipelining — exactly the "reference C++"
/// path of the paper's workflow (Fig. 13), used to validate the spatial
/// implementations. [`ReferenceExecutor::run`] sweeps each stencil through
/// a compiled execution plan (row-parallel, interior cells skip all bounds
/// checks, type-specialized kernels where the slot types allow), caching
/// compiled programs across calls so repeated runs never recompile;
/// [`ReferenceExecutor::run_interpreted`] walks the expression tree per
/// cell and serves as the semantic baseline.
#[derive(Debug)]
pub struct ReferenceExecutor {
    /// Worker-thread cap for the compiled sweep; `None` picks the available
    /// hardware parallelism.
    max_threads: Option<usize>,
    /// Whether compiled sweeps may use type-specialized kernels.
    use_typed: bool,
    /// Whether typed sweeps may batch interior cells into lanes.
    use_lanes: bool,
    /// Whether lane-batched sweeps may use the wide per-dtype lane width
    /// (disabling pins the default `KERNEL_LANES` width for differential
    /// tests and benchmarks).
    use_wide_lanes: bool,
    /// Upper bound on the number of time steps the fused tier blocks into
    /// one temporal window.
    fusion_window: usize,
    /// Explicit fused tile height (outermost-dimension slices); `None`
    /// picks a cache-budget heuristic.
    fusion_tile_rows: Option<usize>,
    /// Compiled programs keyed by the hashed structural fingerprint; hits
    /// skip compilation entirely.
    cache: Mutex<BTreeMap<u64, Arc<CompiledProgram>>>,
    /// Number of program compilations performed (cache misses).
    compiles: AtomicUsize,
    /// Reusable scratch/state buffers for the fused tier: steady-state
    /// `run_steps_fused` calls allocate nothing once the pool is warm.
    pool: Mutex<BufferPool>,
    /// Reusable validity-mask buffers (only used when `pool_results` is
    /// set; see [`ReferenceExecutor::with_pooled_results`]).
    mask_pool: Mutex<MaskPool>,
    /// Whether result grids and masks are drawn from the pools instead of
    /// freshly allocated. Off by default: callers of the plain `run_*` API
    /// never return their results, so pooling them would only drain the
    /// pool. The service tier turns this on and recycles results.
    pool_results: bool,
    /// Whether the convenience `run_fused`/`run_steps_fused` entry points
    /// measure the eligible execution paths on first sight of a program
    /// (mirroring the service layer's tier selection) instead of trusting
    /// the caller's tier choice.
    measure_tiers: bool,
    /// Measured winner per `(fingerprint, stepped?)` for the convenience
    /// entry points.
    auto_tiers: Mutex<BTreeMap<(u64, bool), AutoTier>>,
    /// First-sight measurements performed by the convenience entry points.
    auto_measurements: AtomicUsize,
}

/// The execution paths the convenience `run_fused` entry points choose
/// between (the in-process analogue of the service layer's `Tier`: the
/// materializing compiled sweep stands in for the banded SIMD tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AutoTier {
    /// Materializing compiled sweep, restricted to program outputs.
    Materializing,
    /// The tile-fused tier.
    Fused,
    /// The Tier-4 native backend.
    Jit,
}

impl Default for ReferenceExecutor {
    fn default() -> Self {
        ReferenceExecutor {
            max_threads: None,
            use_typed: true,
            use_lanes: true,
            use_wide_lanes: true,
            fusion_window: crate::fuse::DEFAULT_FUSION_WINDOW,
            fusion_tile_rows: None,
            cache: Mutex::new(BTreeMap::new()),
            compiles: AtomicUsize::new(0),
            pool: Mutex::new(BufferPool::default()),
            mask_pool: Mutex::new(MaskPool::default()),
            pool_results: false,
            measure_tiers: true,
            auto_tiers: Mutex::new(BTreeMap::new()),
            auto_measurements: AtomicUsize::new(0),
        }
    }
}

impl Clone for ReferenceExecutor {
    fn clone(&self) -> Self {
        ReferenceExecutor {
            max_threads: self.max_threads,
            use_typed: self.use_typed,
            use_lanes: self.use_lanes,
            use_wide_lanes: self.use_wide_lanes,
            fusion_window: self.fusion_window,
            fusion_tile_rows: self.fusion_tile_rows,
            cache: Mutex::new(self.cache.lock().expect("executor cache poisoned").clone()),
            compiles: AtomicUsize::new(self.compiles.load(Ordering::Relaxed)),
            // Buffer pools hold no semantic state; clones warm up their own
            // (but keep the configured retention capacity).
            pool: Mutex::new(BufferPool::with_capacity(
                self.pool.lock().expect("buffer pool poisoned").capacity,
            )),
            mask_pool: Mutex::new(MaskPool::with_capacity(
                self.mask_pool.lock().expect("mask pool poisoned").capacity,
            )),
            pool_results: self.pool_results,
            measure_tiers: self.measure_tiers,
            auto_tiers: Mutex::new(
                self.auto_tiers
                    .lock()
                    .expect("auto tier cache poisoned")
                    .clone(),
            ),
            auto_measurements: AtomicUsize::new(self.auto_measurements.load(Ordering::Relaxed)),
        }
    }
}

/// Sweeps smaller than this many cell·accesses stay single-threaded: thread
/// spawn overhead dominates below roughly a quarter-million cell·accesses.
/// Scaling by the per-cell access count lets small-but-heavy stencils
/// parallelize while light sweeps stay sequential.
pub(crate) const PARALLEL_THRESHOLD_CELL_ACCESSES: usize = 1 << 18;

/// Compiled-program cache entries kept per executor before the cache is
/// reset (a safety valve for program-generating loops, not a tuned policy).
const COMPILED_CACHE_CAPACITY: usize = 64;

/// Programs at or below this many cell·steps get a warmup pass before
/// each timed path measurement in the convenience tier router (mirrors
/// the service layer's `MEASURE_WARMUP_MAX_CELLS`).
const AUTO_MEASURE_WARMUP_MAX_CELLS: usize = 1 << 20;

/// Buffers kept in the fused tier's pool before further releases are
/// dropped (a safety valve, not a tuned policy: one fused `run_steps`
/// needs a handful of buffers per worker). The service tier raises the
/// retention cap via [`ReferenceExecutor::with_pool_capacity`] because it
/// keeps many jobs' grids in flight at once.
const BUFFER_POOL_CAPACITY: usize = 64;

/// A best-fit pool of reusable `f64` buffers backing the fused tier's
/// scratch tiles and window-boundary state grids. Acquire picks the
/// smallest pooled buffer whose capacity suffices, so a steady state of
/// identical requests is allocation-free; the miss counter (exposed as
/// [`ReferenceExecutor::pool_miss_count`]) increments only when an
/// allocation was unavoidable.
#[derive(Debug)]
pub(crate) struct BufferPool {
    buffers: Vec<Vec<f64>>,
    capacity: usize,
    pub(crate) acquires: usize,
    pub(crate) misses: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::with_capacity(BUFFER_POOL_CAPACITY)
    }
}

impl BufferPool {
    pub(crate) fn with_capacity(capacity: usize) -> BufferPool {
        BufferPool {
            buffers: Vec::new(),
            capacity: capacity.max(1),
            acquires: 0,
            misses: 0,
        }
    }

    pub(crate) fn acquire(&mut self, len: usize) -> Vec<f64> {
        self.acquires += 1;
        let best = self
            .buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(ix, _)| ix);
        match best {
            Some(ix) => {
                let mut buf = self.buffers.swap_remove(ix);
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.misses += 1;
                vec![0.0; len]
            }
        }
    }

    pub(crate) fn release(&mut self, buf: Vec<f64>) {
        if self.buffers.len() < self.capacity && buf.capacity() > 0 {
            self.buffers.push(buf);
        }
    }
}

/// Best-fit pool of reusable validity-mask buffers, mirroring
/// [`BufferPool`]. Only engaged when result pooling is on
/// ([`ReferenceExecutor::with_pooled_results`]): every result carries one
/// `Vec<bool>` mask per output, so the service tier's zero-steady-state
/// -allocation claim must cover masks too. Acquired masks come back
/// all-`true` (the state result sweeps expect), whatever the previous
/// user left in them.
#[derive(Debug)]
pub(crate) struct MaskPool {
    buffers: Vec<Vec<bool>>,
    capacity: usize,
    pub(crate) acquires: usize,
    pub(crate) misses: usize,
}

impl Default for MaskPool {
    fn default() -> Self {
        MaskPool::with_capacity(BUFFER_POOL_CAPACITY)
    }
}

impl MaskPool {
    pub(crate) fn with_capacity(capacity: usize) -> MaskPool {
        MaskPool {
            buffers: Vec::new(),
            capacity: capacity.max(1),
            acquires: 0,
            misses: 0,
        }
    }

    pub(crate) fn acquire(&mut self, len: usize) -> Vec<bool> {
        self.acquires += 1;
        let best = self
            .buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(ix, _)| ix);
        match best {
            Some(ix) => {
                let mut buf = self.buffers.swap_remove(ix);
                buf.clear();
                buf.resize(len, true);
                buf
            }
            None => {
                self.misses += 1;
                vec![true; len]
            }
        }
    }

    pub(crate) fn release(&mut self, buf: Vec<bool>) {
        if self.buffers.len() < self.capacity && buf.capacity() > 0 {
            self.buffers.push(buf);
        }
    }
}

impl ReferenceExecutor {
    /// Create a reference executor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the number of worker threads used by [`ReferenceExecutor::run`]
    /// (`1` forces a sequential sweep).
    pub fn with_max_threads(mut self, threads: usize) -> Self {
        self.max_threads = Some(threads.max(1));
        self
    }

    /// Enable or disable type-specialized kernels in compiled sweeps
    /// (enabled by default; disabling pins the dynamically typed `Value`
    /// bytecode path, which is useful for equivalence tests and as the
    /// benchmark baseline).
    pub fn with_typed_kernels(mut self, enabled: bool) -> Self {
        self.use_typed = enabled;
        self
    }

    /// Enable or disable lane batching of typed interior sweeps (enabled by
    /// default; disabling pins the scalar typed kernel, which is the
    /// baseline the lane tier is benchmarked and differentially tested
    /// against). Has no effect when typed kernels are disabled.
    pub fn with_lane_batching(mut self, enabled: bool) -> Self {
        self.use_lanes = enabled;
        self
    }

    /// Enable or disable the width-aware (wide) lane dispatch (enabled by
    /// default; disabling pins every lane-batched sweep to the default
    /// [`stencilflow_expr::KERNEL_LANES`] width, the baseline the wide
    /// dispatch is benchmarked and differentially tested against). Has no
    /// effect when typed kernels or lane batching are disabled.
    pub fn with_wide_lanes(mut self, enabled: bool) -> Self {
        self.use_wide_lanes = enabled;
        self
    }

    /// Bound the number of time steps [`ReferenceExecutor::run_steps_fused`]
    /// blocks into one temporal window (default
    /// `4`; `1` disables temporal blocking). Larger windows save full-grid
    /// state round-trips between windows but grow the overlapped recompute
    /// at tile edges linearly per step.
    pub fn with_fusion_window(mut self, window: usize) -> Self {
        self.fusion_window = window.max(1);
        self
    }

    /// Pin the fused tile height (outermost-dimension slices per tile)
    /// instead of the cache-budget heuristic. Mostly useful for tests that
    /// must exercise multi-tile execution on small domains.
    pub fn with_fusion_tile_rows(mut self, rows: usize) -> Self {
        self.fusion_tile_rows = if rows == 0 { None } else { Some(rows) };
        self
    }

    /// Raise (or lower) the number of buffers the executor's pools retain
    /// between runs (default: a handful, enough for one fused `run_steps`).
    /// The service tier keeps many jobs' grids, masks, and band buffers in
    /// flight concurrently and sets this high enough that sustained mixed
    /// traffic never drops a released buffer.
    pub fn with_pool_capacity(mut self, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        self.pool.get_mut().expect("buffer pool poisoned").capacity = capacity;
        self.mask_pool
            .get_mut()
            .expect("mask pool poisoned")
            .capacity = capacity;
        self
    }

    /// Draw result grids and validity masks from the executor pools
    /// instead of allocating them fresh (service-tier internal: only
    /// meaningful for callers that *return* results to the pool, which the
    /// plain `run_*` API has no way to do).
    pub(crate) fn with_pooled_results(mut self, enabled: bool) -> Self {
        self.pool_results = enabled;
        self
    }

    /// Enable or disable first-sight tier measurement in the convenience
    /// [`ReferenceExecutor::run_fused`] / `run_steps_fused` entry points
    /// (enabled by default). Disabling pins those calls to the fused tier
    /// (with its usual materializing fallback) — the bypass the bench
    /// harness uses so per-tier rows measure the tier they claim to.
    pub fn with_tier_measurement(mut self, enabled: bool) -> Self {
        self.measure_tiers = enabled;
        self
    }

    /// First-sight tier measurements performed by the convenience
    /// `run_fused` entry points (each covers one `(program fingerprint,
    /// stepped?)` key; repeat traffic hits the cached decision).
    pub fn tier_measure_count(&self) -> usize {
        self.auto_measurements.load(Ordering::Relaxed)
    }

    /// Number of program compilations this executor has performed. Cache
    /// hits in [`ReferenceExecutor::prepare`] (and therefore in repeated
    /// [`ReferenceExecutor::run`] / [`ReferenceExecutor::run_steps`] calls)
    /// do not increase this counter.
    pub fn compile_count(&self) -> usize {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Number of buffer allocations the fused tier's pool has performed
    /// (pool misses). Steady-state fused runs over the same program and
    /// shapes reuse pooled buffers and do not increase this counter.
    pub fn pool_miss_count(&self) -> usize {
        self.pool.lock().expect("buffer pool poisoned").misses
    }

    /// Number of buffer acquisitions the fused tier has made (hits and
    /// misses).
    pub fn pool_acquire_count(&self) -> usize {
        self.pool.lock().expect("buffer pool poisoned").acquires
    }

    pub(crate) fn fusion_window(&self) -> usize {
        self.fusion_window
    }

    pub(crate) fn fusion_tile_rows(&self) -> Option<usize> {
        self.fusion_tile_rows
    }

    pub(crate) fn pool_acquire(&self, len: usize) -> Vec<f64> {
        self.pool.lock().expect("buffer pool poisoned").acquire(len)
    }

    pub(crate) fn pool_release(&self, buf: Vec<f64>) {
        self.pool.lock().expect("buffer pool poisoned").release(buf);
    }

    /// Number of validity-mask buffer allocations (mask-pool misses). Only
    /// moves when result pooling is on; the service tier folds it into its
    /// zero-steady-state-allocation assertion.
    pub fn mask_pool_miss_count(&self) -> usize {
        self.mask_pool.lock().expect("mask pool poisoned").misses
    }

    /// Number of validity-mask buffer acquisitions (hits and misses).
    pub fn mask_pool_acquire_count(&self) -> usize {
        self.mask_pool.lock().expect("mask pool poisoned").acquires
    }

    /// A zeroed cell buffer for a result grid: pooled (and explicitly
    /// zero-filled — pooled buffers come back dirty) when result pooling
    /// is on, freshly allocated otherwise. Either way the caller sees
    /// exactly the `vec![0.0; len]` the sweeps were written against.
    pub(crate) fn alloc_result_cells(&self, len: usize) -> Vec<f64> {
        if self.pool_results {
            let mut buf = self.pool_acquire(len);
            buf.fill(0.0);
            buf
        } else {
            vec![0.0; len]
        }
    }

    /// An all-`true` validity mask for a result: pooled when result
    /// pooling is on, freshly allocated otherwise.
    pub(crate) fn alloc_result_mask(&self, len: usize) -> Vec<bool> {
        if self.pool_results {
            self.mask_pool
                .lock()
                .expect("mask pool poisoned")
                .acquire(len)
        } else {
            vec![true; len]
        }
    }

    /// Return a mask buffer to the mask pool.
    pub(crate) fn release_mask(&self, buf: Vec<bool>) {
        self.mask_pool
            .lock()
            .expect("mask pool poisoned")
            .release(buf);
    }

    /// Worker-thread count for a sweep of `cells` cells with
    /// `accesses_per_cell` reads each, at most `rows` independent work
    /// units (shared by the materializing row sweep and the fused tile
    /// sweep).
    pub(crate) fn sweep_workers(
        &self,
        rows: usize,
        cells: usize,
        accesses_per_cell: usize,
    ) -> usize {
        self.worker_threads(rows, cells, accesses_per_cell)
    }

    pub(crate) fn check_inputs(
        compiled: &CompiledProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<()> {
        for spec in &compiled.inputs {
            let grid = inputs
                .get(&spec.name)
                .ok_or_else(|| ProgramError::Invalid {
                    message: format!("missing input grid `{}`", spec.name),
                })?;
            if grid.shape() != spec.shape.as_slice() {
                return Err(ProgramError::Invalid {
                    message: format!(
                        "input `{}` has shape {:?}, expected {:?}",
                        spec.name,
                        grid.shape(),
                        spec.shape
                    ),
                });
            }
            if grid.data_type() != spec.dtype {
                return Err(ProgramError::Invalid {
                    message: format!(
                        "input `{}` has element type {}, expected {}",
                        spec.name,
                        grid.data_type(),
                        spec.dtype
                    ),
                });
            }
        }
        Ok(())
    }

    /// Compile `program` into a reusable [`CompiledProgram`], consulting the
    /// executor's cross-run cache first. Repeated calls with a structurally
    /// identical program return the cached compilation.
    ///
    /// The cache key is a hashed structural fingerprint (FNV-1a streamed
    /// over the program's `Debug` rendering), so a `prepare` hit walks the
    /// program once but allocates nothing — cheap enough for the service
    /// tier's per-job hot path. For the very tightest loops hold the
    /// returned [`CompiledProgram`] and call
    /// [`ReferenceExecutor::run_compiled`] directly
    /// ([`ReferenceExecutor::run_steps`] does exactly that internally: one
    /// fingerprint for all steps).
    ///
    /// # Errors
    ///
    /// Propagates kernel compilation and validation failures.
    pub fn prepare(&self, program: &StencilProgram) -> Result<Arc<CompiledProgram>> {
        let fingerprint = program_fingerprint(program);
        // Compilation happens under the cache lock: concurrent prepares of
        // the same program must not compile twice (the zero-recompilation
        // guarantee), and serializing the rare compile is cheap next to the
        // sweeps it enables.
        let mut cache = self.cache.lock().expect("executor cache poisoned");
        if let Some(hit) = cache.get(&fingerprint) {
            return Ok(Arc::clone(hit));
        }
        let compiled = Arc::new(self.compile_program(program, fingerprint)?);
        if cache.len() >= COMPILED_CACHE_CAPACITY {
            cache.clear();
        }
        cache.insert(fingerprint, Arc::clone(&compiled));
        Ok(compiled)
    }

    fn compile_program(
        &self,
        program: &StencilProgram,
        fingerprint: u64,
    ) -> Result<CompiledProgram> {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let space = program.space();
        let order = program.topological_stencils()?;
        let mut stencils = Vec::with_capacity(order.len());
        for name in &order {
            let stencil = program
                .stencil(name)
                .expect("topological order only lists stencils");
            let plan =
                CompiledStencil::build(program, stencil).map_err(|source| ProgramError::Code {
                    stencil: name.clone(),
                    source,
                })?;
            stencils.push(plan);
        }
        let inputs = program
            .inputs()
            .map(|(name, decl)| InputSpec {
                name: name.to_string(),
                shape: crate::plan::declared_shape(space, &decl.dims),
                dtype: decl.data_type(),
                full_rank: decl.dims == space.dims,
            })
            .collect();
        let mut compiled = CompiledProgram {
            name: program.name().to_string(),
            dims: space.dims.clone(),
            shape: space.shape.clone(),
            num_cells: space.num_cells(),
            inputs,
            outputs: program.outputs().to_vec(),
            stencils,
            fuse: Err("fusion analysis pending".to_string()),
            fingerprint,
            jit: Err("jit analysis pending".to_string()),
        };
        compiled.fuse = crate::fuse::FusePlan::build(program, &compiled);
        compiled.jit = match &compiled.fuse {
            Ok(plan) => plan.jit_unit(&compiled),
            Err(reason) => Err(format!("fused tier unavailable: {reason}")),
        };
        Ok(compiled)
    }

    /// Run `program` on the given input grids through compiled execution
    /// plans (the fast path). Equivalent to [`ReferenceExecutor::prepare`]
    /// followed by [`ReferenceExecutor::run_compiled`]; the compilation is
    /// cached, so repeated calls with the same program only pay the sweep.
    ///
    /// Every input field of the program must be present in `inputs` with
    /// matching dimensions and element type. The result contains a grid for
    /// every stencil node (intermediates included), plus validity masks,
    /// and is bit-identical to [`ReferenceExecutor::run_interpreted`].
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Invalid`] if an input grid is missing or has
    /// the wrong shape or element type, and propagates evaluation errors
    /// (which indicate a bug in program validation) as
    /// [`ProgramError::Code`].
    pub fn run(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        let compiled = self.prepare(program)?;
        self.run_compiled(&compiled, inputs)
    }

    /// Run an already-compiled program on the given input grids. Binding is
    /// cheap (a few name lookups per stencil); all compilation happened in
    /// [`ReferenceExecutor::prepare`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run`].
    pub fn run_compiled(
        &self,
        compiled: &CompiledProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        Self::check_inputs(compiled, inputs)?;

        let dim_refs: Vec<&str> = compiled.dims.iter().map(String::as_str).collect();
        let mut computed: BTreeMap<String, Grid> = BTreeMap::new();
        let mut masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
        let mut cells_evaluated = 0usize;

        for plan in &compiled.stencils {
            let code_error = |source| ProgramError::Code {
                stencil: plan.name().to_string(),
                source,
            };
            let bound = plan
                .bind(
                    inputs,
                    &computed,
                    self.use_typed,
                    self.use_lanes,
                    self.use_wide_lanes,
                )
                .map_err(code_error)?;
            let mut output = Grid::zeros(&dim_refs, &compiled.shape, plan.out_dtype());
            let mut mask = vec![true; compiled.num_cells];

            let rows = plan.row_count();
            let row_len = plan.row_len();
            let threads = self.worker_threads(rows, compiled.num_cells, plan.accesses_per_cell());
            if threads <= 1 {
                bound
                    .run_rows(0, rows, output.as_mut_slice(), &mut mask)
                    .map_err(code_error)?;
            } else {
                let rows_per_worker = rows.div_ceil(threads);
                let outcomes: Vec<std::result::Result<(), stencilflow_expr::ExprError>> =
                    std::thread::scope(|scope| {
                        let bound = &bound;
                        let mut handles = Vec::with_capacity(threads);
                        let mut out_rest = output.as_mut_slice();
                        let mut mask_rest = mask.as_mut_slice();
                        let mut row = 0usize;
                        while row < rows {
                            let take = rows_per_worker.min(rows - row);
                            let (out_chunk, next_out) = out_rest.split_at_mut(take * row_len);
                            let (mask_chunk, next_mask) = mask_rest.split_at_mut(take * row_len);
                            out_rest = next_out;
                            mask_rest = next_mask;
                            let start = row;
                            row += take;
                            handles.push(scope.spawn(move || {
                                bound.run_rows(start, start + take, out_chunk, mask_chunk)
                            }));
                        }
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("sweep workers do not panic"))
                            .collect()
                    });
                for outcome in outcomes {
                    outcome.map_err(code_error)?;
                }
            }
            cells_evaluated += compiled.num_cells;
            computed.insert(plan.name().to_string(), output);
            masks.insert(plan.name().to_string(), mask);
        }

        Ok(ExecutionResult {
            fields: computed,
            valid_masks: masks,
            cells_evaluated,
        })
    }

    /// Time-step `program` for `steps` iterations, ping-ponging its output
    /// grids back into its inputs between steps: a single output feeds the
    /// single full-rank input; in multi-field systems each output feeds
    /// the full-rank input whose name is the longest prefix of the
    /// output's name (`h -> h_next`), and anything ambiguous is rejected.
    /// Lower-dimensional and scalar inputs stay fixed. The program is
    /// compiled (or fetched from the cache) exactly once for all steps.
    ///
    /// Returns the result of the final step, with
    /// [`ExecutionResult::cells_evaluated`] accumulated over all steps.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Invalid`] when `steps` is zero, when the
    /// program's outputs cannot be paired one-to-one with its full-rank
    /// inputs (or the element types of a pair differ), and propagates all
    /// [`ReferenceExecutor::run`] failure modes.
    pub fn run_steps(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
    ) -> Result<ExecutionResult> {
        let compiled = self.prepare(program)?;
        self.run_steps_compiled(&compiled, inputs, steps)
    }

    /// [`ReferenceExecutor::run_steps`] over an already-compiled program.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run_steps`].
    pub fn run_steps_compiled(
        &self,
        compiled: &CompiledProgram,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
    ) -> Result<ExecutionResult> {
        if steps == 0 {
            return Err(ProgramError::Invalid {
                message: "run_steps requires at least one time step".into(),
            });
        }
        let pairs = compiled.feedback_pairs()?;
        let mut work = inputs.clone();
        let mut total_cells = 0usize;
        for step in 0..steps {
            let mut result = self.run_compiled(compiled, &work)?;
            total_cells += result.cells_evaluated;
            if step + 1 == steps {
                result.cells_evaluated = total_cells;
                return Ok(result);
            }
            for (output, input) in &pairs {
                let grid = result
                    .fields
                    .remove(output)
                    .expect("program outputs are always computed");
                work.insert(input.clone(), grid);
            }
        }
        unreachable!("steps >= 1 always returns from the loop")
    }

    /// Run `program` through the **tile-fused tier**: the iteration space
    /// is partitioned into cache-sized tiles and each tile is swept
    /// through all stencils of the program before the next tile is
    /// touched, with intermediates held in pooled per-worker scratch
    /// buffers instead of full grids (see `crate::fuse` and
    /// `docs/evaluation.md`).
    ///
    /// The result contains **only the program outputs** (plus their
    /// validity masks) — intermediates are deliberately never
    /// materialized; every output cell is bit-identical to
    /// [`ReferenceExecutor::run_interpreted`]. Programs the fused tier
    /// cannot express (see [`CompiledProgram::fused_fallback_reason`])
    /// transparently run the materializing path, restricted to the same
    /// outputs-only shape.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run`].
    /// Unless [`ReferenceExecutor::with_tier_measurement`] is disabled,
    /// first sight of a program here measures the eligible execution paths
    /// (materializing sweep, fused, native JIT — all bit-identical) and
    /// caches the winner, exactly like the service layer's automatic tier
    /// selection; repeated calls run the cached fastest path.
    pub fn run_fused(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        let compiled = self.prepare(program)?;
        if !self.measure_tiers {
            return self.run_fused_compiled(&compiled, inputs);
        }
        self.run_measured(&compiled, inputs, 1, false)
    }

    /// [`ReferenceExecutor::run_fused`] over an already-compiled program.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run`].
    pub fn run_fused_compiled(
        &self,
        compiled: &CompiledProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        Self::check_inputs(compiled, inputs)?;
        match &compiled.fuse {
            Ok(plan) => crate::fuse::execute(self, compiled, plan, inputs, 1),
            Err(_) => {
                let mut result = self.run_compiled(compiled, inputs)?;
                result.retain_fields(&compiled.outputs);
                Ok(result)
            }
        }
    }

    /// Time-step `program` through the fused tier: tiles stream through a
    /// bounded window of time steps (temporal blocking) with the state
    /// fields ping-ponging between pooled scratch buffers, so the steady
    /// state allocates nothing (see
    /// [`ReferenceExecutor::pool_miss_count`]). Feedback pairing and all
    /// other semantics match [`ReferenceExecutor::run_steps`]; the result
    /// holds the final step's program outputs, bit-identical to the
    /// materializing time stepper, with
    /// [`ExecutionResult::cells_evaluated`] counting every fused cell
    /// evaluation (tile-overlap recompute included).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run_steps`].
    /// Like [`ReferenceExecutor::run_fused`], first sight of a program
    /// here measures the eligible paths and caches the winner unless
    /// [`ReferenceExecutor::with_tier_measurement`] is disabled.
    pub fn run_steps_fused(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
    ) -> Result<ExecutionResult> {
        let compiled = self.prepare(program)?;
        if !self.measure_tiers || steps == 0 {
            return self.run_steps_fused_compiled(&compiled, inputs, steps);
        }
        self.run_measured(&compiled, inputs, steps, true)
    }

    /// The convenience entry points' tier router: consult the measured
    /// decision for `(fingerprint, stepped?)`, measuring the eligible
    /// paths on first sight (with a warmup pass for small programs so
    /// first-touch allocation doesn't bias the pick). The materializing
    /// sweep is the floor — its failure is the call's failure; a fused or
    /// JIT error during measurement merely excludes that path.
    fn run_measured(
        &self,
        compiled: &Arc<CompiledProgram>,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
        stepped: bool,
    ) -> Result<ExecutionResult> {
        let key = (compiled.fingerprint(), stepped);
        let cached = self
            .auto_tiers
            .lock()
            .expect("auto tier cache poisoned")
            .get(&key)
            .copied();
        if let Some(tier) = cached {
            return self.run_auto_tier(compiled, inputs, steps, stepped, tier);
        }
        let mut candidates = vec![AutoTier::Materializing];
        let fused_ok = if stepped {
            compiled.fused_steps_supported()
        } else {
            compiled.fused_tier_supported()
        };
        if fused_ok {
            candidates.push(AutoTier::Fused);
            if compiled.jit_supported() && crate::jit::jit_available().is_ok() {
                candidates.push(AutoTier::Jit);
            }
        }
        if candidates.len() == 1 {
            self.record_auto_tier(key, AutoTier::Materializing);
            return self.run_auto_tier(compiled, inputs, steps, stepped, AutoTier::Materializing);
        }
        let warm =
            compiled.cell_count().saturating_mul(steps.max(1)) <= AUTO_MEASURE_WARMUP_MAX_CELLS;
        let mut best: Option<(std::time::Duration, AutoTier, ExecutionResult)> = None;
        for &tier in &candidates {
            if warm {
                // Warmup errors surface in the timed run below.
                let _ = self.run_auto_tier(compiled, inputs, steps, stepped, tier);
            }
            let t0 = std::time::Instant::now();
            match self.run_auto_tier(compiled, inputs, steps, stepped, tier) {
                Ok(result) => {
                    let elapsed = t0.elapsed();
                    let improves = match &best {
                        Some((b, _, _)) => elapsed < *b,
                        None => true,
                    };
                    if improves {
                        best = Some((elapsed, tier, result));
                    }
                }
                Err(err) => {
                    if tier == AutoTier::Materializing {
                        return Err(err);
                    }
                }
            }
        }
        let (_, tier, result) =
            best.expect("the materializing path always measured or errored above");
        self.record_auto_tier(key, tier);
        self.auto_measurements.fetch_add(1, Ordering::Relaxed);
        Ok(result)
    }

    fn record_auto_tier(&self, key: (u64, bool), tier: AutoTier) {
        let mut tiers = self.auto_tiers.lock().expect("auto tier cache poisoned");
        if tiers.len() >= COMPILED_CACHE_CAPACITY {
            tiers.clear();
        }
        tiers.insert(key, tier);
    }

    fn run_auto_tier(
        &self,
        compiled: &Arc<CompiledProgram>,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
        stepped: bool,
        tier: AutoTier,
    ) -> Result<ExecutionResult> {
        match tier {
            AutoTier::Materializing => {
                let mut result = if stepped {
                    self.run_steps_compiled(compiled, inputs, steps)?
                } else {
                    self.run_compiled(compiled, inputs)?
                };
                result.retain_fields(&compiled.outputs);
                Ok(result)
            }
            AutoTier::Fused => {
                if stepped {
                    self.run_steps_fused_compiled(compiled, inputs, steps)
                } else {
                    self.run_fused_compiled(compiled, inputs)
                }
            }
            AutoTier::Jit => {
                if stepped {
                    self.run_steps_jit_compiled(compiled, inputs, steps)
                } else {
                    self.run_jit_compiled(compiled, inputs)
                }
            }
        }
    }

    /// [`ReferenceExecutor::run_steps_fused`] over an already-compiled
    /// program.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run_steps`].
    pub fn run_steps_fused_compiled(
        &self,
        compiled: &CompiledProgram,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
    ) -> Result<ExecutionResult> {
        if steps == 0 {
            return Err(ProgramError::Invalid {
                message: "run_steps requires at least one time step".into(),
            });
        }
        Self::check_inputs(compiled, inputs)?;
        match &compiled.fuse {
            Ok(plan) if steps == 1 || plan.supports_steps() => {
                // Validate the pairing exactly like the materializing
                // stepper — even for a single step (dtype mismatches and
                // ambiguity are rejected, never silently fused).
                compiled.feedback_pairs()?;
                crate::fuse::execute(self, compiled, plan, inputs, steps)
            }
            _ => {
                let mut result = self.run_steps_compiled(compiled, inputs, steps)?;
                result.retain_fields(&compiled.outputs);
                Ok(result)
            }
        }
    }

    /// Run `program` through the **Tier-4 native backend**: the fused
    /// tier's schedule (tiles, pads, ping-pong, regions) executes
    /// unchanged, but each live stage's innermost sweep is one call into a
    /// stage function compiled from the emitted C by the system `cc` and
    /// loaded from the disk-backed code cache (see `stencilflow-jit` and
    /// `docs/evaluation.md`). Output shape and bit-identity guarantees
    /// match [`ReferenceExecutor::run_fused`]: program outputs only,
    /// bit-identical to [`ReferenceExecutor::run_interpreted`].
    ///
    /// Statically ineligible programs
    /// ([`CompiledProgram::jit_fallback_reason`]) and machines without a
    /// working compiler ([`crate::jit_available`]) fall back to the fused
    /// tier transparently.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run`], plus
    /// [`ProgramError::Invalid`] when an *eligible* program's emitted unit
    /// fails to compile or load — that indicates an emitter bug and is
    /// surfaced, never silently absorbed by the fallback.
    pub fn run_jit(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        let compiled = self.prepare(program)?;
        self.run_jit_compiled(&compiled, inputs)
    }

    /// [`ReferenceExecutor::run_jit`] over an already-compiled program.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run_jit`].
    pub fn run_jit_compiled(
        &self,
        compiled: &CompiledProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        Self::check_inputs(compiled, inputs)?;
        match crate::jit::stage_fns(compiled) {
            Ok(Some(fns)) => {
                let plan = compiled
                    .fuse
                    .as_ref()
                    .expect("jit eligibility implies a fuse plan");
                crate::fuse::execute_with(self, compiled, plan, inputs, 1, Some(&fns))
            }
            Ok(None) => self.run_fused_compiled(compiled, inputs),
            Err(message) => Err(ProgramError::Invalid {
                message: format!(
                    "native JIT failed for eligible program `{}`: {message}",
                    compiled.name
                ),
            }),
        }
    }

    /// Time-step `program` through the Tier-4 native backend: the fused
    /// time stepper's temporal blocking and feedback ping-pong run
    /// unchanged with native stage sweeps. Semantics, fallback ladder, and
    /// bit-identity guarantees match [`ReferenceExecutor::run_steps_fused`]
    /// and [`ReferenceExecutor::run_jit`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run_steps`] plus the
    /// [`ReferenceExecutor::run_jit`] compile/load failure mode.
    pub fn run_steps_jit(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
    ) -> Result<ExecutionResult> {
        let compiled = self.prepare(program)?;
        self.run_steps_jit_compiled(&compiled, inputs, steps)
    }

    /// [`ReferenceExecutor::run_steps_jit`] over an already-compiled
    /// program.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run_steps_jit`].
    pub fn run_steps_jit_compiled(
        &self,
        compiled: &CompiledProgram,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
    ) -> Result<ExecutionResult> {
        if steps == 0 {
            return Err(ProgramError::Invalid {
                message: "run_steps requires at least one time step".into(),
            });
        }
        Self::check_inputs(compiled, inputs)?;
        match &compiled.fuse {
            Ok(plan) if steps == 1 || plan.supports_steps() => {
                match crate::jit::stage_fns(compiled) {
                    Ok(Some(fns)) => {
                        compiled.feedback_pairs()?;
                        crate::fuse::execute_with(self, compiled, plan, inputs, steps, Some(&fns))
                    }
                    Ok(None) => self.run_steps_fused_compiled(compiled, inputs, steps),
                    Err(message) => Err(ProgramError::Invalid {
                        message: format!(
                            "native JIT failed for eligible program `{}`: {message}",
                            compiled.name
                        ),
                    }),
                }
            }
            _ => self.run_steps_fused_compiled(compiled, inputs, steps),
        }
    }

    /// Apply `program` once through the fault-tolerant sharded runtime:
    /// the iteration space is partitioned along the outermost dimension
    /// across `config.shards` worker threads, each running the fused tier
    /// on its slab (see [`crate::shard`]). The assembled outputs are
    /// bitwise identical to [`ReferenceExecutor::run`] under every
    /// recoverable fault schedule, and the run degrades to the
    /// single-shard fused tier (still bit-identical) when a fault exceeds
    /// the retry budget.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run`], plus invalid
    /// shard configurations (zero shards).
    pub fn run_sharded(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
        config: &crate::shard::ShardConfig,
    ) -> Result<crate::shard::ShardedOutcome> {
        crate::shard::run_sharded(self, program, inputs, 1, false, config)
    }

    /// Time-step `program` through the fault-tolerant sharded runtime,
    /// exchanging halo slabs between shards every exchange window.
    /// Results are bitwise identical to [`ReferenceExecutor::run_steps`]
    /// under every recoverable fault schedule; unrecoverable faults
    /// degrade to the single-shard fused tier.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run_steps`], plus
    /// invalid shard configurations (zero shards).
    pub fn run_steps_sharded(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
        steps: usize,
        config: &crate::shard::ShardConfig,
    ) -> Result<crate::shard::ShardedOutcome> {
        crate::shard::run_sharded(self, program, inputs, steps, true, config)
    }

    /// Run `program` through the tree-walking evaluator (the semantic
    /// reference path; one cell at a time, no compilation, no parallelism).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReferenceExecutor::run`].
    pub fn run_interpreted(
        &self,
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<ExecutionResult> {
        Self::check_program_inputs(program, inputs)?;

        let space = program.space();
        let mut computed: BTreeMap<String, Grid> = BTreeMap::new();
        let mut masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
        let mut cells_evaluated = 0usize;
        let order = program.topological_stencils()?;
        let dim_refs: Vec<&str> = space.dims.iter().map(String::as_str).collect();

        for name in &order {
            let stencil = program
                .stencil(name)
                .expect("topological order only lists stencils");
            let mut output = Grid::zeros(&dim_refs, &space.shape, stencil.output_type);
            let mut mask = vec![true; space.num_cells()];
            for (flat, index) in space.indices().enumerate() {
                let resolver = CellResolver {
                    program,
                    stencil,
                    inputs,
                    computed: &computed,
                    index: &index,
                };
                let value = Evaluator::new(&resolver)
                    .eval_program(&stencil.program)
                    .map_err(|source| ProgramError::Code {
                        stencil: name.clone(),
                        source,
                    })?;
                output.set(&index, value.as_f64());
                if stencil.boundary.shrink && resolver.read_out_of_bounds() {
                    mask[flat] = false;
                }
                cells_evaluated += 1;
            }
            computed.insert(name.clone(), output);
            masks.insert(name.clone(), mask);
        }

        Ok(ExecutionResult {
            fields: computed,
            valid_masks: masks,
            cells_evaluated,
        })
    }

    /// Input validation for the interpreted path (shape and element type
    /// against the program's declarations; the compiled path validates
    /// against the same geometry baked into the [`CompiledProgram`]).
    fn check_program_inputs(
        program: &StencilProgram,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<()> {
        for (name, decl) in program.inputs() {
            let grid = inputs.get(name).ok_or_else(|| ProgramError::Invalid {
                message: format!("missing input grid `{name}`"),
            })?;
            let expected_shape = crate::plan::declared_shape(program.space(), &decl.dims);
            if grid.shape() != expected_shape.as_slice() {
                return Err(ProgramError::Invalid {
                    message: format!(
                        "input `{name}` has shape {:?}, expected {:?}",
                        grid.shape(),
                        expected_shape
                    ),
                });
            }
            if grid.data_type() != decl.data_type() {
                return Err(ProgramError::Invalid {
                    message: format!(
                        "input `{name}` has element type {}, expected {}",
                        grid.data_type(),
                        decl.data_type()
                    ),
                });
            }
        }
        Ok(())
    }

    fn worker_threads(&self, rows: usize, cells: usize, accesses_per_cell: usize) -> usize {
        if cells.saturating_mul(accesses_per_cell.max(1)) < PARALLEL_THRESHOLD_CELL_ACCESSES {
            return 1;
        }
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.max_threads
            .unwrap_or(hardware)
            .min(hardware)
            .min(rows)
            .max(1)
    }
}

/// Streams `fmt::Write` output through an FNV-1a accumulator, so hashing a
/// `Debug` rendering never materializes the rendered `String`.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// The hashed structural fingerprint of a program: FNV-1a (64-bit) over
/// the program's `Debug` rendering, streamed — the render is walked
/// exactly once and never allocated. Two structurally identical programs
/// hash identically; the executor cache, the service tier's tier-choice
/// cache, and (hex-rendered, salted) the Tier-4 disk code cache all key
/// off this value.
pub(crate) fn program_fingerprint(program: &StencilProgram) -> u64 {
    use std::fmt::Write as _;
    let mut writer = FnvWriter(0xcbf2_9ce4_8422_2325);
    write!(writer, "{program:?}").expect("FnvWriter::write_str never fails");
    writer.0
}

/// Resolves field accesses for one cell of one stencil.
struct CellResolver<'a> {
    program: &'a StencilProgram,
    stencil: &'a StencilNode,
    inputs: &'a BTreeMap<String, Grid>,
    computed: &'a BTreeMap<String, Grid>,
    index: &'a [usize],
}

impl CellResolver<'_> {
    fn grid_for(&self, field: &str) -> Option<&Grid> {
        self.inputs.get(field).or_else(|| self.computed.get(field))
    }

    /// Whether any access of this cell fell out of bounds. Tracked by
    /// re-walking the accesses rather than interior mutability, keeping the
    /// resolver `Fn`-shaped for the evaluator.
    fn read_out_of_bounds(&self) -> bool {
        let space = self.program.space();
        for (field, info) in self.stencil.accesses.iter() {
            let Some(dims) = self.program.field_dims(field) else {
                continue;
            };
            for offsets in &info.offsets {
                for ((var, &off), _) in info.index_vars.iter().zip(offsets.iter()).zip(dims.iter())
                {
                    if let Some(dim_ix) = space.dim_index(var) {
                        let pos = self.index[dim_ix] as i64 + off;
                        if pos < 0 || pos >= space.shape[dim_ix] as i64 {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

impl AccessResolver for CellResolver<'_> {
    fn resolve(&self, field: &str, offsets: &[i64]) -> Option<Value> {
        let grid = self.grid_for(field)?;
        let space = self.program.space();
        let info = self.stencil.accesses.get(field)?;
        // Build the signed index into the field's own (possibly
        // lower-dimensional) space.
        let mut signed: Vec<i64> = Vec::with_capacity(info.index_vars.len());
        let mut center: Vec<i64> = Vec::with_capacity(info.index_vars.len());
        for (var, &off) in info.index_vars.iter().zip(offsets.iter()) {
            let dim_ix = space.dim_index(var)?;
            let pos = self.index[dim_ix] as i64 + off;
            signed.push(pos);
            center.push(self.index[dim_ix] as i64);
        }
        if offsets.is_empty() {
            // Scalar access.
            return Some(grid.get_value(&[]));
        }
        match grid.get_checked(&signed) {
            Some(v) => Some(Value::from_f64(v, grid.data_type())),
            None => {
                // Out of bounds: apply the boundary condition.
                match self.stencil.boundary.condition_for(field) {
                    BoundaryCondition::Constant(c) => Some(Value::from_f64(c, grid.data_type())),
                    BoundaryCondition::Copy => grid
                        .get_checked(&center)
                        .map(|v| Value::from_f64(v, grid.data_type())),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_data::generate_inputs;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn laplace_program(shape: &[usize]) -> StencilProgram {
        StencilProgramBuilder::new("laplace", shape)
            .input("a", DataType::Float32, &["i", "j"])
            .stencil(
                "lap",
                "-4.0*a[i,j] + a[i-1,j] + a[i+1,j] + a[i,j-1] + a[i,j+1]",
            )
            .shrink("lap")
            .output("lap")
            .build()
            .unwrap()
    }

    #[test]
    fn laplace_matches_hand_computation() {
        let program = laplace_program(&[4, 4]);
        let a = Grid::from_fn(&["i", "j"], &[4, 4], DataType::Float32, |ix| {
            (ix[0] * 4 + ix[1]) as f64
        });
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_string(), a.clone());
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let lap = result.field("lap").unwrap();
        // Interior point (1,1): -4*5 + 1 + 9 + 4 + 6 = 0.
        assert_eq!(lap.get(&[1, 1]), 0.0);
        // Interior point (2,1): -4*9 + 5 + 13 + 8 + 10 = 0.
        assert_eq!(lap.get(&[2, 1]), 0.0);
    }

    #[test]
    fn shrink_mask_marks_boundary_cells_invalid() {
        let program = laplace_program(&[4, 4]);
        let inputs = generate_inputs(&program, 1);
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let mask = result.valid_mask("lap").unwrap();
        // Only the 2x2 interior is valid.
        assert_eq!(result.valid_count("lap"), 4);
        assert!(!mask[0]); // corner
        let space = program.space();
        assert!(mask[space.flat_index(&[1, 1])]);
        assert!(mask[space.flat_index(&[2, 2])]);
        assert!(!mask[space.flat_index(&[0, 2])]);
    }

    #[test]
    fn missing_or_misshapen_inputs_are_rejected() {
        let program = laplace_program(&[4, 4]);
        let empty = BTreeMap::new();
        assert!(ReferenceExecutor::new().run(&program, &empty).is_err());
        let mut wrong = BTreeMap::new();
        wrong.insert(
            "a".to_string(),
            Grid::zeros(&["i", "j"], &[3, 3], DataType::Float32),
        );
        assert!(ReferenceExecutor::new().run(&program, &wrong).is_err());
    }

    #[test]
    fn mistyped_inputs_are_rejected_by_both_paths() {
        let program = laplace_program(&[4, 4]);
        let mut wrong = BTreeMap::new();
        wrong.insert(
            "a".to_string(),
            Grid::zeros(&["i", "j"], &[4, 4], DataType::Float64),
        );
        let executor = ReferenceExecutor::new();
        assert!(executor.run(&program, &wrong).is_err());
        assert!(executor.run_interpreted(&program, &wrong).is_err());
    }

    #[test]
    fn lower_dimensional_and_scalar_inputs() {
        let program = StencilProgramBuilder::new("p", &[2, 3, 4])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .input("surf", DataType::Float32, &["i", "k"])
            .scalar("dt", DataType::Float32)
            .stencil("out", "a[i,j,k] + surf[i,k] * dt")
            .output("out")
            .build()
            .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "a".to_string(),
            Grid::from_fn(&["i", "j", "k"], &[2, 3, 4], DataType::Float32, |_| 1.0),
        );
        inputs.insert(
            "surf".to_string(),
            Grid::from_fn(&["i", "k"], &[2, 4], DataType::Float32, |ix| {
                (ix[0] * 4 + ix[1]) as f64
            }),
        );
        inputs.insert("dt".to_string(), Grid::scalar(0.5, DataType::Float32));
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let out = result.field("out").unwrap();
        // out[1, 2, 3] = 1 + surf[1,3] * 0.5 = 1 + 7*0.5 = 4.5.
        assert_eq!(out.get(&[1, 2, 3]), 4.5);
        // Independent of j.
        assert_eq!(out.get(&[1, 0, 3]), 4.5);
    }

    #[test]
    fn cells_evaluated_counts_all_stencils() {
        let program = StencilProgramBuilder::new("p", &[2, 2])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("b", "a[i,j] + 1.0")
            .stencil("c", "b[i,j] * 2.0")
            .output("c")
            .build()
            .unwrap();
        let inputs = generate_inputs(&program, 3);
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        assert_eq!(result.cells_evaluated(), 2 * 4);
        assert!(result.field("b").is_some());
        assert!(result.field("c").is_some());
    }

    #[test]
    fn data_dependent_branches() {
        let program = StencilProgramBuilder::new("p", &[4])
            .input("a", DataType::Float32, &["i"])
            .stencil("relu", "a[i] > 0.0 ? a[i] : 0.0")
            .output("relu")
            .build()
            .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "a".to_string(),
            Grid::from_values(&["i"], &[4], &[-1.0, 2.0, -3.0, 4.0]),
        );
        let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let relu = result.field("relu").unwrap();
        assert_eq!(relu.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn repeated_runs_compile_exactly_once() {
        let program = laplace_program(&[6, 6]);
        let inputs = generate_inputs(&program, 5);
        let executor = ReferenceExecutor::new();
        assert_eq!(executor.compile_count(), 0);
        let first = executor.run(&program, &inputs).unwrap();
        assert_eq!(executor.compile_count(), 1);
        for _ in 0..3 {
            let again = executor.run(&program, &inputs).unwrap();
            assert_eq!(
                again.field("lap").unwrap().as_slice(),
                first.field("lap").unwrap().as_slice()
            );
        }
        assert_eq!(executor.compile_count(), 1);
        // A structurally different program misses the cache.
        let other = laplace_program(&[8, 8]);
        let other_inputs = generate_inputs(&other, 5);
        executor.run(&other, &other_inputs).unwrap();
        assert_eq!(executor.compile_count(), 2);
    }

    #[test]
    fn prepare_then_run_compiled_skips_recompilation() {
        let program = laplace_program(&[6, 6]);
        let inputs = generate_inputs(&program, 6);
        let executor = ReferenceExecutor::new();
        let compiled = executor.prepare(&program).unwrap();
        assert_eq!(executor.compile_count(), 1);
        assert_eq!(compiled.stencil_count(), 1);
        // The all-f32 Laplace kernel specializes.
        assert_eq!(compiled.typed_stencil_count(), 1);
        let via_cache = executor.prepare(&program).unwrap();
        assert_eq!(executor.compile_count(), 1);
        let a = executor.run_compiled(&compiled, &inputs).unwrap();
        let b = executor.run_compiled(&via_cache, &inputs).unwrap();
        assert_eq!(
            a.field("lap").unwrap().as_slice(),
            b.field("lap").unwrap().as_slice()
        );
        assert_eq!(executor.compile_count(), 1);
    }

    #[test]
    fn run_steps_matches_manual_ping_pong() {
        let program = StencilProgramBuilder::new("diffuse", &[8, 8])
            .input("u", DataType::Float32, &["i", "j"])
            .stencil(
                "u_next",
                "0.25 * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1])",
            )
            .output("u_next")
            .build()
            .unwrap();
        let inputs = generate_inputs(&program, 11);
        let executor = ReferenceExecutor::new();

        let stepped = executor.run_steps(&program, &inputs, 3).unwrap();

        // Manual ping-pong through individual runs.
        let mut work = inputs.clone();
        let mut last = None;
        for _ in 0..3 {
            let result = executor.run(&program, &work).unwrap();
            work.insert("u".to_string(), result.field("u_next").unwrap().clone());
            last = Some(result);
        }
        let manual = last.unwrap();
        for (a, b) in stepped
            .field("u_next")
            .unwrap()
            .as_slice()
            .iter()
            .zip(manual.field("u_next").unwrap().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // All steps (and the manual runs) share one compilation.
        assert_eq!(executor.compile_count(), 1);
        // cells_evaluated accumulates over steps.
        assert_eq!(stepped.cells_evaluated(), 3 * 64);
    }

    #[test]
    fn run_steps_pairs_feedback_by_name_prefix() {
        // Outputs declared out of name order still feed their namesake
        // state fields: a_next -> a and b_next -> b, never transposed.
        let program = StencilProgramBuilder::new("coupled", &[4])
            .input("a", DataType::Float32, &["i"])
            .input("b", DataType::Float32, &["i"])
            .stencil("a_next", "a[i] + 1.0")
            .stencil("b_next", "b[i] * 2.0")
            .output("b_next")
            .output("a_next")
            .build()
            .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "a".to_string(),
            Grid::from_values(&["i"], &[4], &[0.0, 0.0, 0.0, 0.0]),
        );
        inputs.insert(
            "b".to_string(),
            Grid::from_values(&["i"], &[4], &[1.0, 1.0, 1.0, 1.0]),
        );
        let result = ReferenceExecutor::new()
            .run_steps(&program, &inputs, 3)
            .unwrap();
        // a increments per step (0 -> 3), b doubles per step (1 -> 8).
        assert_eq!(result.field("a_next").unwrap().get(&[0]), 3.0);
        assert_eq!(result.field("b_next").unwrap().get(&[0]), 8.0);
    }

    #[test]
    fn run_steps_prefix_pairing_resists_sort_order_traps() {
        // `h`/`h2` sort differently from `h_next`/`h2_next` ('2' < '_' in
        // byte order), so positional pairing of sorted names would swap the
        // state grids; longest-prefix matching pairs them correctly.
        let program = StencilProgramBuilder::new("trap", &[4])
            .input("h", DataType::Float32, &["i"])
            .input("h2", DataType::Float32, &["i"])
            .stencil("h_next", "h[i] + 1.0")
            .stencil("h2_next", "h2[i] * 2.0")
            .output("h_next")
            .output("h2_next")
            .build()
            .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "h".to_string(),
            Grid::from_values(&["i"], &[4], &[0.0, 0.0, 0.0, 0.0]),
        );
        inputs.insert(
            "h2".to_string(),
            Grid::from_values(&["i"], &[4], &[1.0, 1.0, 1.0, 1.0]),
        );
        let result = ReferenceExecutor::new()
            .run_steps(&program, &inputs, 3)
            .unwrap();
        assert_eq!(result.field("h_next").unwrap().get(&[0]), 3.0);
        assert_eq!(result.field("h2_next").unwrap().get(&[0]), 8.0);

        // Outputs that name no state input are rejected, not mis-paired.
        let unnamed = StencilProgramBuilder::new("unnamed", &[4])
            .input("a", DataType::Float32, &["i"])
            .input("b", DataType::Float32, &["i"])
            .stencil("x", "a[i] + 1.0")
            .stencil("y", "b[i] * 2.0")
            .output("x")
            .output("y")
            .build()
            .unwrap();
        let mut unnamed_inputs = BTreeMap::new();
        unnamed_inputs.insert(
            "a".to_string(),
            Grid::from_values(&["i"], &[4], &[0.0, 0.0, 0.0, 0.0]),
        );
        unnamed_inputs.insert(
            "b".to_string(),
            Grid::from_values(&["i"], &[4], &[1.0, 1.0, 1.0, 1.0]),
        );
        assert!(ReferenceExecutor::new()
            .run_steps(&unnamed, &unnamed_inputs, 2)
            .is_err());
    }

    #[test]
    fn run_steps_rejects_unpairable_programs() {
        // Two outputs, one full-rank input: no valid feedback pairing.
        let program = StencilProgramBuilder::new("p", &[4])
            .input("a", DataType::Float32, &["i"])
            .stencil("x", "a[i] + 1.0")
            .stencil("y", "a[i] * 2.0")
            .output("x")
            .output("y")
            .build()
            .unwrap();
        let inputs = generate_inputs(&program, 1);
        let executor = ReferenceExecutor::new();
        assert!(executor.run_steps(&program, &inputs, 2).is_err());
        // Zero steps are rejected.
        let ok = laplace_program(&[4, 4]);
        let ok_inputs = generate_inputs(&ok, 1);
        assert!(executor.run_steps(&ok, &ok_inputs, 0).is_err());
    }

    #[test]
    fn run_steps_keeps_lower_dimensional_inputs_fixed() {
        let program = StencilProgramBuilder::new("forced", &[4, 4])
            .input("u", DataType::Float32, &["i", "j"])
            .input("force", DataType::Float32, &["j"])
            .stencil("u_next", "0.5 * u[i,j] + force[j]")
            .output("u_next")
            .build()
            .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "u".to_string(),
            Grid::from_fn(&["i", "j"], &[4, 4], DataType::Float32, |_| 1.0),
        );
        inputs.insert(
            "force".to_string(),
            Grid::from_values(&["j"], &[4], &[1.0, 2.0, 3.0, 4.0]),
        );
        let executor = ReferenceExecutor::new();
        let result = executor.run_steps(&program, &inputs, 2).unwrap();
        // After two steps: u2 = 0.5*(0.5*1 + f) + f = 0.25 + 1.5*f.
        let out = result.field("u_next").unwrap();
        for j in 0..4 {
            let f = (j + 1) as f64;
            assert_eq!(out.get(&[2, j]), 0.25 + 1.5 * f);
        }
    }

    #[test]
    fn parallel_threshold_accounts_for_access_weight() {
        let executor = ReferenceExecutor::new().with_max_threads(8);
        // Light sweep below the cell·access threshold: sequential.
        assert_eq!(executor.worker_threads(256, 1 << 12, 2), 1);
        // The same cell count with a heavy per-cell access pattern crosses
        // the threshold (modulo the hardware cap of this machine).
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(
            executor.worker_threads(256, 1 << 12, min_heavy_accesses()),
            hardware.min(8).min(256)
        );
    }

    /// Smallest per-cell access count that pushes 2^12 cells over the
    /// threshold.
    fn min_heavy_accesses() -> usize {
        PARALLEL_THRESHOLD_CELL_ACCESSES / (1 << 12)
    }

    #[test]
    fn fingerprint_hash_distinguishes_programs_and_is_stable() {
        let a = laplace_program(&[4, 4]);
        let b = laplace_program(&[8, 8]);
        // Deterministic across calls, sensitive to the iteration space.
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a));
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
        // The streamed hash equals FNV-1a over the materialized render
        // (the hash is a pure optimization, not a different identity).
        let rendered = format!("{a:?}");
        let mut reference = 0xcbf2_9ce4_8422_2325u64;
        for &byte in rendered.as_bytes() {
            reference ^= byte as u64;
            reference = reference.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(program_fingerprint(&a), reference);
    }

    #[test]
    fn pool_capacity_bounds_retention() {
        let mut pool = BufferPool::with_capacity(2);
        pool.release(vec![0.0; 8]);
        pool.release(vec![0.0; 8]);
        pool.release(vec![0.0; 8]); // dropped: over capacity
        assert_eq!(pool.buffers.len(), 2);
        // Both retained buffers serve hits; the third acquire misses.
        let a = pool.acquire(8);
        let b = pool.acquire(8);
        assert_eq!(pool.misses, 0);
        let c = pool.acquire(8);
        assert_eq!(pool.misses, 1);
        drop((a, b, c));
    }

    #[test]
    fn mask_pool_returns_all_true_masks() {
        let mut pool = MaskPool::with_capacity(4);
        let mut mask = pool.acquire(6);
        assert_eq!(pool.misses, 1);
        mask[3] = false;
        pool.release(mask);
        let again = pool.acquire(6);
        assert_eq!(pool.misses, 1, "steady state hits the pool");
        assert!(again.iter().all(|&v| v), "pooled masks are reset to true");
    }
}
