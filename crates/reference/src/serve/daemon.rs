//! The resilient serving daemon: admission control, per-tenant quotas,
//! deadline scheduling, cooperative cancellation, and graceful drain on
//! top of [`ServeExecutor`].
//!
//! The batch executor answers "run these N jobs fast and bit-identically";
//! this module answers the service-boundary questions a long-lived process
//! faces under real traffic:
//!
//! * **Admission control** — the queue is bounded
//!   ([`DaemonConfig::with_queue_capacity`]); an overloaded daemon sheds
//!   load with a structured [`RejectReason`] instead of growing without
//!   bound. Oversized requests are measured (cells × steps) *before* any
//!   allocation and rejected at the door.
//! * **Per-tenant quotas** — each tenant id carries an in-flight cap and
//!   an optional cell budget with a refill rate ([`TenantQuota`]); a
//!   quota-busting tenant is rejected per job while everyone else keeps
//!   flowing.
//! * **Deadlines replace pure FIFO** — every admitted job gets an
//!   effective soft deadline (its own, or the configured default), and
//!   dispatch is earliest-deadline-first with the admission sequence as
//!   the tiebreak. That *is* priority aging: a job's priority rises as its
//!   deadline nears, and no job starves because its deadline eventually
//!   becomes the earliest. A hard timeout cancels the job — before it
//!   starts if it lapsed in the queue, or mid-run through its
//!   [`CancelToken`], which the band boundaries check so pooled buffers
//!   recycle on cancellation.
//! * **Panic isolation** — inherited from the batch layer: a poison job
//!   comes back as [`JobStatus::Panicked`] while the pool, scratch, and
//!   the rest of the traffic keep running.
//! * **Graceful drain** — [`Daemon::drain`] stops admission, finishes the
//!   queue (or cancels what remains once the configured drain timeout
//!   lapses, with [`CancelReason::Drain`]), and reports whether the drain
//!   was clean. State machine: *Accepting* → *Draining* (admission
//!   rejects with [`RejectReason::Draining`]) → *Stopped* (queue empty,
//!   stats final).
//!
//! Tier-decision persistence lives on the executor
//! ([`ServeExecutor::export_tier_decisions`] /
//! [`ServeExecutor::import_tier_decisions`]); the daemon exposes its
//! executor so a transport can reload decisions on restart and flush them
//! on drain. The daemon itself performs no file I/O — determinism and
//! testability stay in-process.
//!
//! All admitted jobs that complete are bit-identical to the tree-walking
//! interpreter: the daemon only schedules; execution is the batch layer's.

use super::{CancelToken, JobError, JobSpec, ServeConfig, ServeExecutor, ServeStats, Tier};
use crate::executor::ExecutionResult;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use stencilflow_program::ProgramError;

/// Per-tenant admission limits. The unit of budget is *cell·steps* — the
/// same work measure the executor's parallelism threshold uses — so a
/// quota means the same amount of compute regardless of program shape.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Jobs a tenant may have queued or running at once.
    pub max_in_flight: usize,
    /// Burst budget in cell·steps; `None` = unlimited.
    pub cell_budget: Option<u64>,
    /// Budget refill rate in cell·steps per second; `None` = the budget
    /// never refills (a fixed allowance — what deterministic tests use).
    pub cells_per_sec: Option<f64>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_in_flight: 64,
            cell_budget: None,
            cells_per_sec: None,
        }
    }
}

impl TenantQuota {
    /// The permissive default: 64 in-flight jobs, no cell budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap on queued-plus-running jobs for the tenant.
    pub fn with_max_in_flight(mut self, limit: usize) -> Self {
        self.max_in_flight = limit.max(1);
        self
    }

    /// Burst budget in cell·steps.
    pub fn with_cell_budget(mut self, budget: u64) -> Self {
        self.cell_budget = Some(budget);
        self
    }

    /// Refill rate in cell·steps per second (token-bucket semantics,
    /// capped at the burst budget).
    pub fn with_cells_per_sec(mut self, rate: f64) -> Self {
        self.cells_per_sec = Some(rate.max(0.0));
        self
    }
}

/// Configuration for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    serve: ServeConfig,
    queue_capacity: usize,
    max_job_cells: Option<u64>,
    default_quota: TenantQuota,
    tenant_quotas: BTreeMap<String, TenantQuota>,
    default_soft_deadline: Duration,
    default_hard_timeout: Option<Duration>,
    watchdog_tick: Duration,
    drain_timeout: Option<Duration>,
    batch_size: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            serve: ServeConfig::default(),
            queue_capacity: 256,
            max_job_cells: None,
            default_quota: TenantQuota::default(),
            tenant_quotas: BTreeMap::new(),
            default_soft_deadline: Duration::from_secs(1),
            default_hard_timeout: None,
            watchdog_tick: Duration::from_millis(1),
            drain_timeout: None,
            batch_size: 0,
        }
    }
}

impl DaemonConfig {
    /// Defaults: a 256-deep queue, permissive quotas, a one-second soft
    /// deadline, no hard timeout, drain until empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// The batch-executor configuration underneath the daemon.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Bound on queued jobs; submissions beyond it are shed with
    /// [`RejectReason::QueueFull`].
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Reject any single job above this many cell·steps *before* any
    /// allocation happens ([`RejectReason::Oversized`]).
    pub fn with_max_job_cells(mut self, limit: u64) -> Self {
        self.max_job_cells = Some(limit);
        self
    }

    /// Quota applied to tenants without an explicit entry.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Quota for one named tenant.
    pub fn with_tenant_quota(mut self, tenant: impl Into<String>, quota: TenantQuota) -> Self {
        self.tenant_quotas.insert(tenant.into(), quota);
        self
    }

    /// Soft deadline given to jobs that submit without one (drives the
    /// earliest-deadline-first ordering; default one second).
    pub fn with_default_soft_deadline(mut self, deadline: Duration) -> Self {
        self.default_soft_deadline = deadline;
        self
    }

    /// Hard timeout given to jobs that submit without one (`None` =
    /// admitted jobs may run to completion).
    pub fn with_default_hard_timeout(mut self, timeout: Duration) -> Self {
        self.default_hard_timeout = Some(timeout);
        self
    }

    /// How often the in-batch watchdog checks hard deadlines.
    pub fn with_watchdog_tick(mut self, tick: Duration) -> Self {
        self.watchdog_tick = tick.max(Duration::from_micros(100));
        self
    }

    /// How long [`Daemon::drain`] keeps working the queue before
    /// cancelling what remains ([`CancelReason::Drain`]); `None` drains
    /// until empty.
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = Some(timeout);
        self
    }

    /// Jobs per dispatch micro-batch (0 = four per worker). A micro-batch
    /// of 1 makes the earliest-deadline-first order directly observable.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }
}

/// One submission: an identity, a tenant, the job itself, and optional
/// per-job deadline overrides.
#[derive(Debug, Clone)]
pub struct DaemonRequest {
    /// Caller-chosen id, unique among live (queued or running) jobs.
    pub id: String,
    /// Tenant the job bills against.
    pub tenant: String,
    /// The job to run.
    pub job: JobSpec,
    /// Soft deadline from submission (EDF priority); defaults to the
    /// daemon's configured default.
    pub soft_deadline: Option<Duration>,
    /// Hard timeout from submission; past it the job is cancelled (before
    /// it starts, or mid-run through its token).
    pub hard_timeout: Option<Duration>,
}

impl DaemonRequest {
    /// A request with default deadlines.
    pub fn new(id: impl Into<String>, tenant: impl Into<String>, job: JobSpec) -> Self {
        DaemonRequest {
            id: id.into(),
            tenant: tenant.into(),
            job,
            soft_deadline: None,
            hard_timeout: None,
        }
    }

    /// Override the soft deadline.
    pub fn with_soft_deadline(mut self, deadline: Duration) -> Self {
        self.soft_deadline = Some(deadline);
        self
    }

    /// Override the hard timeout.
    pub fn with_hard_timeout(mut self, timeout: Duration) -> Self {
        self.hard_timeout = Some(timeout);
        self
    }
}

/// Why admission refused a request (load shedding, quotas, validity).
/// Every variant carries a stable `SF04xx` code registered in
/// `docs/analysis.md`.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The bounded queue is full (back off and retry).
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The tenant is at its in-flight cap.
    TenantInFlight {
        /// The tenant that hit the cap.
        tenant: String,
        /// The cap.
        limit: usize,
    },
    /// The tenant's cell budget cannot cover the job.
    TenantBudget {
        /// The tenant that ran out.
        tenant: String,
        /// Cell·steps the job needs.
        needed: u64,
        /// Cell·steps currently available.
        available: u64,
    },
    /// The job exceeds the per-job size bound.
    Oversized {
        /// Cell·steps the job would cost.
        cells: u64,
        /// The configured bound.
        limit: u64,
    },
    /// A live job already uses this id.
    DuplicateId {
        /// The contested id.
        id: String,
    },
    /// The daemon is draining and admits nothing new.
    Draining,
}

impl RejectReason {
    /// The stable diagnostic code (see `docs/analysis.md`).
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "SF0401",
            RejectReason::TenantInFlight { .. } => "SF0402",
            RejectReason::TenantBudget { .. } => "SF0403",
            RejectReason::Oversized { .. } => "SF0404",
            RejectReason::DuplicateId { .. } => "SF0405",
            RejectReason::Draining => "SF0406",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::TenantInFlight { tenant, limit } => {
                write!(f, "tenant `{tenant}` at its in-flight cap ({limit})")
            }
            RejectReason::TenantBudget {
                tenant,
                needed,
                available,
            } => write!(
                f,
                "tenant `{tenant}` over budget (needs {needed} cell-steps, has {available})"
            ),
            RejectReason::Oversized { cells, limit } => {
                write!(f, "job too large ({cells} cell-steps, limit {limit})")
            }
            RejectReason::DuplicateId { id } => write!(f, "job id `{id}` is already live"),
            RejectReason::Draining => write!(f, "daemon is draining"),
        }
    }
}

/// Why an admitted job was cancelled instead of run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Its hard timeout lapsed (in the queue, or mid-run via the token).
    HardTimeout,
    /// The drain timeout lapsed with the job still queued.
    Drain,
}

impl CancelReason {
    /// The stable diagnostic code (see `docs/analysis.md`).
    pub fn code(self) -> &'static str {
        match self {
            CancelReason::HardTimeout => "SF0407",
            CancelReason::Drain => "SF0408",
        }
    }
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::HardTimeout => f.write_str("hard timeout"),
            CancelReason::Drain => f.write_str("cancelled by drain"),
        }
    }
}

/// Terminal state of an admitted job.
#[derive(Debug)]
pub enum JobStatus {
    /// Ran to completion; the outputs are bit-identical to the
    /// interpreter. Recycle the result via [`ServeExecutor::recycle`].
    Done {
        /// The tier the job ran on.
        tier: Tier,
        /// The program outputs.
        result: ExecutionResult,
    },
    /// The program itself failed (validation or runtime error).
    Failed(ProgramError),
    /// The job panicked; the panic was isolated to the job (code
    /// `SF0409`).
    Panicked(String),
    /// The job was cancelled (deadline or drain).
    Cancelled(CancelReason),
}

impl JobStatus {
    /// Stable lowercase label (wire protocol / reports).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Done { .. } => "done",
            JobStatus::Failed(_) => "failed",
            JobStatus::Panicked(_) => "panicked",
            JobStatus::Cancelled(_) => "cancelled",
        }
    }
}

/// The completion record the daemon hands its sink, one per admitted job.
#[derive(Debug)]
pub struct DaemonOutcome {
    /// The submission id.
    pub id: String,
    /// The tenant billed.
    pub tenant: String,
    /// Submission → dispatch wait.
    pub wait: Duration,
    /// Submission → completion latency.
    pub latency: Duration,
    /// How the job ended.
    pub status: JobStatus,
}

/// Aggregate daemon counters (monotonic; admission and completion).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DaemonStats {
    /// Requests seen by `submit`.
    pub submitted: usize,
    /// Requests admitted to the queue.
    pub admitted: usize,
    /// Requests shed, by [`RejectReason::code`].
    pub rejected: usize,
    /// Reject counts per diagnostic code.
    pub rejects_by_code: BTreeMap<&'static str, usize>,
    /// Jobs that completed with outputs.
    pub completed: usize,
    /// Jobs that failed in the program.
    pub failed: usize,
    /// Jobs whose panic was isolated.
    pub panicked: usize,
    /// Jobs cancelled by deadline or drain.
    pub cancelled: usize,
    /// Peak queue depth observed.
    pub max_queue_depth: usize,
}

/// Report of one [`Daemon::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// True when every queued job ran to a natural outcome (nothing was
    /// cancelled by the drain timeout).
    pub clean: bool,
    /// Jobs cancelled with [`CancelReason::Drain`].
    pub cancelled: usize,
}

/// One admitted, not-yet-dispatched job.
#[derive(Debug)]
struct Queued {
    seq: u64,
    id: String,
    tenant: String,
    job: JobSpec,
    submitted: Instant,
    soft_deadline: Instant,
    hard_deadline: Option<Instant>,
    token: CancelToken,
}

#[derive(Debug, Default)]
struct TenantState {
    in_flight: usize,
    /// Remaining cell·steps; `None` = unlimited.
    budget: Option<f64>,
    last_refill: Option<Instant>,
}

#[derive(Debug, Default)]
struct State {
    queue: Vec<Queued>,
    live_ids: BTreeSet<String>,
    tenants: BTreeMap<String, TenantState>,
    draining: bool,
    seq: u64,
    stats: DaemonStats,
}

/// The resilient serving daemon. See the module docs for the contracts.
#[derive(Debug)]
pub struct Daemon {
    serve: ServeExecutor,
    config: DaemonConfig,
    state: Mutex<State>,
}

impl Daemon {
    /// Build a daemon (and its batch executor) from a configuration.
    pub fn new(config: DaemonConfig) -> Daemon {
        Daemon {
            serve: ServeExecutor::new(config.serve.clone()),
            config,
            state: Mutex::new(State::default()),
        }
    }

    /// The batch executor underneath: recycle results, read
    /// [`ServeExecutor::stats`], export/import persisted tier decisions.
    pub fn serve(&self) -> &ServeExecutor {
        &self.serve
    }

    /// Aggregate admission/completion counters.
    pub fn stats(&self) -> DaemonStats {
        self.state
            .lock()
            .expect("daemon state poisoned")
            .stats
            .clone()
    }

    /// The executor's counters (compiles, pools, tier measurements).
    pub fn serve_stats(&self) -> ServeStats {
        self.serve.stats()
    }

    /// Jobs currently queued (dispatch is synchronous, so nothing is
    /// "running" while no `dispatch` call is live).
    pub fn queue_depth(&self) -> usize {
        self.state
            .lock()
            .expect("daemon state poisoned")
            .queue
            .len()
    }

    /// Whether admission has been closed.
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("daemon state poisoned").draining
    }

    /// Close admission: every later `submit` is rejected with
    /// [`RejectReason::Draining`]. Idempotent.
    pub fn begin_drain(&self) {
        self.state.lock().expect("daemon state poisoned").draining = true;
    }

    /// The admission gate. Rejections are synchronous and structured;
    /// admitted jobs are billed to their tenant and queued with their
    /// deadlines resolved against the configured defaults.
    pub fn submit(&self, request: DaemonRequest) -> Result<(), RejectReason> {
        let mut state = self.state.lock().expect("daemon state poisoned");
        state.stats.submitted += 1;
        let cost = job_cost(&request.job);
        let decision = self.admit(&mut state, &request, cost);
        match decision {
            Ok(()) => {
                state.stats.admitted += 1;
                let depth = state.queue.len();
                state.stats.max_queue_depth = state.stats.max_queue_depth.max(depth);
                Ok(())
            }
            Err(reason) => {
                state.stats.rejected += 1;
                *state
                    .stats
                    .rejects_by_code
                    .entry(reason.code())
                    .or_insert(0) += 1;
                Err(reason)
            }
        }
    }

    fn admit(
        &self,
        state: &mut State,
        request: &DaemonRequest,
        cost: u64,
    ) -> Result<(), RejectReason> {
        if state.draining {
            return Err(RejectReason::Draining);
        }
        if state.queue.len() >= self.config.queue_capacity {
            return Err(RejectReason::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        if state.live_ids.contains(&request.id) {
            return Err(RejectReason::DuplicateId {
                id: request.id.clone(),
            });
        }
        if let Some(limit) = self.config.max_job_cells {
            if cost > limit {
                return Err(RejectReason::Oversized { cells: cost, limit });
            }
        }
        let quota = self
            .config
            .tenant_quotas
            .get(&request.tenant)
            .unwrap_or(&self.config.default_quota)
            .clone();
        let now = Instant::now();
        let tenant = state.tenants.entry(request.tenant.clone()).or_default();
        // Token-bucket refill, capped at the burst budget. A rate of
        // `None` leaves the allowance fixed (deterministic tests).
        if tenant.budget.is_none() {
            tenant.budget = quota.cell_budget.map(|b| b as f64);
        }
        if let (Some(budget), Some(rate), Some(cap), Some(last)) = (
            tenant.budget,
            quota.cells_per_sec,
            quota.cell_budget,
            tenant.last_refill,
        ) {
            let refilled = budget + now.duration_since(last).as_secs_f64() * rate;
            tenant.budget = Some(refilled.min(cap as f64));
        }
        tenant.last_refill = Some(now);
        if tenant.in_flight >= quota.max_in_flight {
            return Err(RejectReason::TenantInFlight {
                tenant: request.tenant.clone(),
                limit: quota.max_in_flight,
            });
        }
        if let Some(budget) = tenant.budget {
            if (cost as f64) > budget {
                return Err(RejectReason::TenantBudget {
                    tenant: request.tenant.clone(),
                    needed: cost,
                    available: budget.max(0.0) as u64,
                });
            }
            tenant.budget = Some(budget - cost as f64);
        }
        tenant.in_flight += 1;
        state.live_ids.insert(request.id.clone());
        state.seq += 1;
        let token = request.job.cancel.clone().unwrap_or_default();
        let job = request.job.clone().with_cancel_token(token.clone());
        state.queue.push(Queued {
            seq: state.seq,
            id: request.id.clone(),
            tenant: request.tenant.clone(),
            job,
            submitted: now,
            soft_deadline: now
                + request
                    .soft_deadline
                    .unwrap_or(self.config.default_soft_deadline),
            hard_deadline: request
                .hard_timeout
                .or(self.config.default_hard_timeout)
                .map(|t| now + t),
            token,
        });
        Ok(())
    }

    /// Run one dispatch round: cancel queued jobs whose hard deadline has
    /// lapsed, then execute the earliest-deadline micro-batch with a
    /// watchdog that fires hard timeouts mid-run. Returns the number of
    /// jobs that reached an outcome this round (0 = queue empty).
    ///
    /// The sink runs on worker threads and may be called concurrently.
    pub fn dispatch<F: Fn(DaemonOutcome) + Sync>(&self, sink: F) -> usize {
        let (batch, overdue) = {
            let mut state = self.state.lock().expect("daemon state poisoned");
            let now = Instant::now();
            let mut overdue = Vec::new();
            let mut keep = Vec::with_capacity(state.queue.len());
            for entry in state.queue.drain(..) {
                match entry.hard_deadline {
                    Some(deadline) if deadline <= now => overdue.push(entry),
                    _ => keep.push(entry),
                }
            }
            state.queue = keep;
            // EDF with the admission sequence as the tiebreak: priority
            // aging without starvation.
            state.queue.sort_by_key(|a| (a.soft_deadline, a.seq));
            let batch_size = if self.config.batch_size == 0 {
                self.serve.workers().saturating_mul(4).max(1)
            } else {
                self.config.batch_size
            };
            let take = batch_size.min(state.queue.len());
            let batch: Vec<Queued> = state.queue.drain(..take).collect();
            (batch, overdue)
        };
        let mut settled = 0usize;
        for entry in overdue {
            self.finalize(
                entry,
                JobStatus::Cancelled(CancelReason::HardTimeout),
                Duration::ZERO,
                &sink,
            );
            settled += 1;
        }
        if batch.is_empty() {
            return settled;
        }
        settled += batch.len();
        let dispatch_start = Instant::now();
        // The watchdog needs (deadline, token) pairs; the metadata stays
        // behind to label outcomes as workers land them.
        let watched: Vec<(Option<Instant>, CancelToken)> = batch
            .iter()
            .map(|q| (q.hard_deadline, q.token.clone()))
            .collect();
        let mut meta: Vec<Option<Queued>> = Vec::with_capacity(batch.len());
        let mut jobs: Vec<JobSpec> = Vec::with_capacity(batch.len());
        for entry in batch {
            jobs.push(entry.job.clone());
            meta.push(Some(entry));
        }
        let meta = Mutex::new(meta);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    let now = Instant::now();
                    for (deadline, token) in &watched {
                        if deadline.is_some_and(|d| d <= now) {
                            token.cancel();
                        }
                    }
                    std::thread::park_timeout(self.config.watchdog_tick);
                }
            });
            self.serve.run_batch_with(jobs, |outcome| {
                let entry = meta.lock().expect("dispatch metadata poisoned")[outcome.job]
                    .take()
                    .expect("each job completes exactly once");
                let status = match outcome.result {
                    Ok(result) => JobStatus::Done {
                        tier: outcome.tier,
                        result,
                    },
                    Err(JobError::Program(e)) => JobStatus::Failed(e),
                    Err(JobError::Panicked(msg)) => JobStatus::Panicked(msg),
                    // Mid-run cancellation only ever comes from the hard-
                    // timeout watchdog (drain cancels jobs in the queue,
                    // never in flight).
                    Err(JobError::Cancelled) => JobStatus::Cancelled(CancelReason::HardTimeout),
                };
                let wait = dispatch_start.saturating_duration_since(entry.submitted);
                self.finalize(entry, status, wait, &sink);
            });
            stop.store(true, Ordering::Release);
        });
        settled
    }

    /// Settle one job: release its tenant accounting, bump the stats for
    /// its terminal state, and hand the outcome to the sink.
    fn finalize<F: Fn(DaemonOutcome) + Sync>(
        &self,
        entry: Queued,
        status: JobStatus,
        wait: Duration,
        sink: &F,
    ) {
        {
            let mut state = self.state.lock().expect("daemon state poisoned");
            state.live_ids.remove(&entry.id);
            if let Some(tenant) = state.tenants.get_mut(&entry.tenant) {
                tenant.in_flight = tenant.in_flight.saturating_sub(1);
            }
            match &status {
                JobStatus::Done { .. } => state.stats.completed += 1,
                JobStatus::Failed(_) => state.stats.failed += 1,
                JobStatus::Panicked(_) => state.stats.panicked += 1,
                JobStatus::Cancelled(_) => state.stats.cancelled += 1,
            }
        }
        sink(DaemonOutcome {
            id: entry.id,
            tenant: entry.tenant,
            wait,
            latency: entry.submitted.elapsed(),
            status,
        });
    }

    /// Graceful drain: close admission, work the queue down, and — once
    /// the configured drain timeout lapses — cancel whatever is still
    /// queued with [`CancelReason::Drain`]. In-flight micro-batches always
    /// run to their outcome (their own hard timeouts still apply).
    pub fn drain<F: Fn(DaemonOutcome) + Sync>(&self, sink: F) -> DrainReport {
        self.begin_drain();
        let started = Instant::now();
        let mut cancelled = 0usize;
        loop {
            if let Some(limit) = self.config.drain_timeout {
                if started.elapsed() >= limit {
                    let remaining: Vec<Queued> = {
                        let mut state = self.state.lock().expect("daemon state poisoned");
                        state.queue.drain(..).collect()
                    };
                    for entry in remaining {
                        cancelled += 1;
                        self.finalize(
                            entry,
                            JobStatus::Cancelled(CancelReason::Drain),
                            Duration::ZERO,
                            &sink,
                        );
                    }
                }
            }
            if self.dispatch(&sink) == 0 {
                break;
            }
        }
        DrainReport {
            clean: cancelled == 0,
            cancelled,
        }
    }
}

/// The admission-time work measure of a job: iteration-space cells ×
/// steps. Computed from the program description alone — no compilation,
/// no allocation — so oversized requests are shed before they cost
/// anything.
fn job_cost(job: &JobSpec) -> u64 {
    (job.program.space().num_cells() as u64).saturating_mul(job.steps.max(1) as u64)
}
