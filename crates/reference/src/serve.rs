//! Multi-tenant throughput service layer: batched jobs, a shared compile
//! cache, pooled buffers, work-stealing, and automatic tier selection.
//!
//! One [`ReferenceExecutor`] runs one program at a time; the "millions of
//! users" shape of the ROADMAP is a [`ServeExecutor`] that accepts a queue
//! of [`JobSpec`]s (program + grids + optional step count) and drains it
//! across a fixed worker pool:
//!
//! * **Shared compilation** — all jobs flow through one
//!   [`CompiledProgram`] cache keyed by the hashed structural fingerprint,
//!   so a thousand submissions of the same program compile once.
//! * **Fairness + work-stealing** — the job queue is FIFO and workers
//!   always prefer a queued job over helping an in-flight one, so
//!   thousands of small jobs are never starved by a large one. Only *idle*
//!   workers (empty queue) steal row bands from large SIMD-tier sweeps
//!   that publish themselves to the batch's active-sweep list; the owner
//!   of a large job always works its own bands too, so stealing can only
//!   help.
//! * **Zero steady-state allocation** — every O(cells) buffer (outputs,
//!   validity masks, band scratch, time-stepping state copies, fused-tier
//!   scratch) is drawn from the executor's `BufferPool`/mask pool and
//!   returned either internally or by the caller via
//!   [`ServeExecutor::recycle`]. Once the pools are warm, sustained mixed
//!   traffic performs no pool-miss allocations — asserted by the
//!   `bench_serve` gate via [`ServeStats::pool_misses`] /
//!   [`ServeStats::mask_misses`]. (Control-plane allocations — a handful
//!   of `Vec`/`BTreeMap` nodes per job, O(stencils), not O(cells) — are
//!   outside this discipline and bounded per job.)
//! * **Automatic tier selection** — on first sight of a `(fingerprint,
//!   stepped?)` key under [`TierPolicy::Auto`], the service measures every
//!   eligible tier (SIMD always; fused and native JIT when the program
//!   supports them) on the job itself and caches the winner, so known
//!   regressions like fused-vs-SIMD on upwind3d can never recur: repeated
//!   traffic always runs each program's fastest tier. All tiers are
//!   bit-identical, so the measurement runs *are* the job — no work is
//!   wasted. [`TierPolicy::Fixed`] and the per-job [`JobSpec::tier`]
//!   override knob pin a tier explicitly.
//!
//! Results contain the program outputs only (the fused tier's contract),
//! bit-identical to [`ReferenceExecutor::run_interpreted`] on every tier.
//!

use crate::executor::{
    CompiledProgram, ExecutionResult, ReferenceExecutor, PARALLEL_THRESHOLD_CELL_ACCESSES,
};
use crate::grid::Grid;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use stencilflow_json::Json;
use stencilflow_program::{ProgramError, StencilProgram};

pub mod daemon;

/// Execution tiers the service schedules between (the interpreter and the
/// plain bytecode tiers exist for reference/testing, not for serving).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// The lane-batched compiled sweep (per-stencil materialization), run
    /// through the service's banded, stealable path.
    Simd,
    /// The tile-fused tier (pooled scratch, temporal blocking).
    Fused,
    /// The Tier-4 native backend (fused schedule, `cc`-compiled sweeps).
    Jit,
}

impl Tier {
    /// Stable lowercase name (CLI / JSON rendering).
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Simd => "simd",
            Tier::Fused => "fused",
            Tier::Jit => "jit",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Tier {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Tier, String> {
        match s {
            "simd" => Ok(Tier::Simd),
            "fused" => Ok(Tier::Fused),
            "jit" => Ok(Tier::Jit),
            other => Err(format!(
                "unknown tier `{other}` (expected `simd`, `fused`, or `jit`)"
            )),
        }
    }
}

/// How the service picks the execution tier for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPolicy {
    /// Measure the eligible tiers on first sight of a program fingerprint
    /// and cache the winner (the default).
    Auto,
    /// Pin every job to one tier (ineligible programs fall back down the
    /// executor's usual ladder: jit → fused → materializing).
    Fixed(Tier),
}

/// Configuration for a [`ServeExecutor`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    workers: usize,
    policy: TierPolicy,
    pool_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            policy: TierPolicy::Auto,
            pool_capacity: 1024,
        }
    }
}

impl ServeConfig {
    /// Default configuration: one worker per hardware thread, automatic
    /// tier selection, a pool deep enough for sustained mixed traffic.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of worker threads the batch scheduler runs (default: the
    /// available hardware parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Tier-selection policy (default [`TierPolicy::Auto`]); the explicit
    /// override knob.
    pub fn with_tier_policy(mut self, policy: TierPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Buffers the shared pools retain between jobs (default 1024). Too
    /// small a cap drops released buffers and reintroduces steady-state
    /// allocation under mixed traffic.
    pub fn with_pool_capacity(mut self, capacity: usize) -> Self {
        self.pool_capacity = capacity.max(1);
        self
    }
}

/// A cooperative cancellation handle shared between a job and whoever may
/// need to stop it (the daemon's deadline watchdog, a draining caller).
/// Cancellation is checked at band boundaries, so a cancelled job stops at
/// the next band and its pooled buffers flow back through the normal error
/// path — cancel + pool recycle, never a leak.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fire the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Deterministic fault injection for one job, extending the seed-driven
/// fault-plan idiom of [`crate::shard`] to the service layer. Faults fire
/// inside the per-job `catch_unwind` isolation boundary, so tests can
/// prove a poison job is contained without any unsafety.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFault {
    /// Panic inside kernel execution (a poison job). The job must come
    /// back as [`JobError::Panicked`] while the pool, scratch buffers, and
    /// the rest of the batch keep running.
    Poison,
    /// Sleep this long inside the first band of each sweep before doing
    /// the work — long enough for a hard-timeout watchdog to fire, so
    /// mid-run cancellation is testable without wall-clock races.
    Stall(Duration),
}

/// Why a job completed without a result. `Program` is the ordinary
/// failure (validation or runtime error from the program itself); the
/// other variants are the service-boundary outcomes the daemon's
/// resilience contract is about.
#[derive(Debug)]
pub enum JobError {
    /// The program failed to compile, validate, or run.
    Program(ProgramError),
    /// The job panicked inside execution. The panic was contained to this
    /// job: pooled buffers were recycled and the rest of the batch ran.
    Panicked(String),
    /// The job's [`CancelToken`] fired before or during execution.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Program(e) => write!(f, "{e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<ProgramError> for JobError {
    fn from(e: ProgramError) -> Self {
        JobError::Program(e)
    }
}

/// A job's terminal state: its outputs or a structured [`JobError`].
pub type JobResult = std::result::Result<ExecutionResult, JobError>;

/// Render a `catch_unwind` payload as the human-readable panic message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One queued job: a program, its input grids, and an optional time-step
/// count. Programs and inputs are `Arc`-shared so thousands of jobs over
/// the same tenant data stay cheap to clone and enqueue.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The stencil program to run.
    pub program: Arc<StencilProgram>,
    /// Input grids (validated against the program on execution).
    pub inputs: Arc<BTreeMap<String, Grid>>,
    /// Time steps (1 = a single application; 0 is rejected).
    pub steps: usize,
    /// Per-job tier override; `None` defers to the service policy.
    pub tier: Option<Tier>,
    /// Tenant identity for the daemon's quota accounting. The batch
    /// executor itself ignores it.
    pub tenant: Option<String>,
    /// Cooperative cancellation handle (checked at band boundaries).
    pub cancel: Option<CancelToken>,
    /// Deterministic fault injection for resilience tests.
    pub fault: Option<JobFault>,
}

impl JobSpec {
    /// A single-application job with policy-selected tier.
    pub fn new(program: Arc<StencilProgram>, inputs: Arc<BTreeMap<String, Grid>>) -> JobSpec {
        JobSpec {
            program,
            inputs,
            steps: 1,
            tier: None,
            tenant: None,
            cancel: None,
            fault: None,
        }
    }

    /// Time-step the program `steps` times (feedback semantics of
    /// [`ReferenceExecutor::run_steps`]).
    pub fn with_steps(mut self, steps: usize) -> JobSpec {
        self.steps = steps;
        self
    }

    /// Pin this job to one tier, overriding the service policy.
    pub fn with_tier(mut self, tier: Tier) -> JobSpec {
        self.tier = Some(tier);
        self
    }

    /// Tag the job with a tenant id (daemon quota accounting).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> JobSpec {
        self.tenant = Some(tenant.into());
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> JobSpec {
        self.cancel = Some(token);
        self
    }

    /// Inject a deterministic fault (resilience tests only).
    pub fn with_fault(mut self, fault: JobFault) -> JobSpec {
        self.fault = Some(fault);
        self
    }

    /// Whether the job's token (if any) has fired.
    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// The completion record of one job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// The tier the job actually ran on.
    pub tier: Tier,
    /// Batch-start → completion latency (queue wait included).
    pub latency: Duration,
    /// The program outputs (only), or the job's structured failure.
    /// Return successful results to the pool via
    /// [`ServeExecutor::recycle`] when done.
    pub result: JobResult,
}

/// Aggregate service counters (monotonic across batches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs completed (successes and failures).
    pub jobs: usize,
    /// Program compilations (shared-cache misses).
    pub compiles: usize,
    /// Cell-buffer pool acquisitions (hits + misses).
    pub pool_acquires: usize,
    /// Cell-buffer pool misses (actual allocations). Flat in steady state.
    pub pool_misses: usize,
    /// Mask pool acquisitions.
    pub mask_acquires: usize,
    /// Mask pool misses. Flat in steady state.
    pub mask_misses: usize,
    /// First-sight tier measurements performed under [`TierPolicy::Auto`].
    pub tier_measurements: usize,
    /// Row bands executed by a worker other than the job's owner.
    pub steals: usize,
}

/// One cached tier decision (reporting snapshot).
#[derive(Debug, Clone)]
pub struct TierChoice {
    /// Hex program fingerprint (the cache identity).
    pub fingerprint: String,
    /// Program name recorded at decision time.
    pub program: String,
    /// Whether the decision covers stepped (`steps > 1`) jobs.
    pub stepped: bool,
    /// The winning tier.
    pub tier: Tier,
}

/// What importing a persisted tier-decision cache did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierCacheLoad {
    /// Decisions loaded into the live cache.
    pub loaded: usize,
    /// True when the persisted salt did not match this build's
    /// [`ServeExecutor::build_fingerprint`] and every decision was
    /// discarded as stale.
    pub stale: bool,
}

/// Tier decisions kept before the cache is reset (safety valve, mirroring
/// the compiled-program cache policy).
const TIER_CACHE_CAPACITY: usize = 1024;

/// Format tag of the persisted tier-decision cache.
const TIER_CACHE_FORMAT: &str = "stencilflow-tier-cache-v1";

/// Stealable bands per worker on a large sweep: small enough to bound
/// per-band bind overhead, large enough that a late-arriving idle worker
/// still finds work.
const BANDS_PER_WORKER: usize = 2;

/// Jobs at or below this many cell·steps get a warmup run before each
/// timed tier measurement (first-touch pool misses would otherwise bias
/// the pick); larger jobs are measured in one shot.
const MEASURE_WARMUP_MAX_CELLS: usize = 1 << 20;

/// The multi-tenant batch executor. See the module docs for the
/// scheduling, pooling, and tier-selection contracts.
#[derive(Debug)]
pub struct ServeExecutor {
    executor: ReferenceExecutor,
    workers: usize,
    policy: TierPolicy,
    /// Winning tier per (fingerprint, stepped?) key, with the program name
    /// for reporting.
    tiers: Mutex<BTreeMap<(u64, bool), (Tier, String)>>,
    jobs: AtomicUsize,
    measurements: AtomicUsize,
    steals: AtomicUsize,
}

/// Per-batch scheduler state shared by the worker pool.
struct BatchShared<'a> {
    /// FIFO job queue (fairness: arrival order, small jobs never wait on
    /// band help given to large ones).
    queue: Mutex<VecDeque<(usize, JobSpec)>>,
    /// Large sweeps currently offering bands to idle workers.
    sweeps: Mutex<Vec<Arc<SweepShared>>>,
    /// Dedicated condvar mutex (std condvars must pair with one mutex).
    idle: Mutex<()>,
    wake: Condvar,
    /// Completion sink, called by the finishing worker as each job lands.
    sink: &'a (dyn Fn(JobOutcome) + Sync),
    remaining: AtomicUsize,
}

/// One stencil sweep split into claimable row bands. The job owner moves
/// its grid maps in, bands run anywhere (each re-binds — binding is the
/// cheap per-run step by design), and the owner recovers the maps through
/// `Arc::try_unwrap` once every band has landed.
struct SweepShared {
    compiled: Arc<CompiledProgram>,
    stencil_ix: usize,
    /// Step-1 jobs resolve fields against the client's shared input map…
    client_inputs: Option<Arc<BTreeMap<String, Grid>>>,
    /// …stepped jobs against the job-owned pooled working copies.
    work: BTreeMap<String, Grid>,
    /// Grids computed by earlier stencils of the current step.
    computed: BTreeMap<String, Grid>,
    row_len: usize,
    bands: Vec<(usize, usize)>,
    next: AtomicUsize,
    done: AtomicUsize,
    results: Mutex<Vec<BandOut>>,
    error: Mutex<Option<JobError>>,
    /// The owning job's cancellation token, visible to thieves too.
    cancel: Option<CancelToken>,
    /// The owning job's injected fault (fires in band 0 of the sweep).
    fault: Option<JobFault>,
}

impl SweepShared {
    /// The (inputs, computed) pair `CompiledStencil::bind` resolves
    /// against, in the same precedence order the executor uses.
    fn maps(&self) -> (&BTreeMap<String, Grid>, &BTreeMap<String, Grid>) {
        match &self.client_inputs {
            Some(arc) => (arc.as_ref(), &self.computed),
            None => (&self.work, &self.computed),
        }
    }
}

/// A completed band: pooled output cells and mask covering
/// `[row_start, row_end)`.
struct BandOut {
    row_start: usize,
    row_end: usize,
    data: Vec<f64>,
    mask: Vec<bool>,
}

/// The grid maps a job threads through its sweeps.
struct SweepIo {
    client_inputs: Option<Arc<BTreeMap<String, Grid>>>,
    work: BTreeMap<String, Grid>,
    computed: BTreeMap<String, Grid>,
}

impl ServeExecutor {
    /// Create a service executor. The internal [`ReferenceExecutor`] is
    /// pinned to one thread per sweep (parallelism comes from the worker
    /// pool and band stealing, never from nested thread scopes) with
    /// pooled results at the configured retention capacity.
    pub fn new(config: ServeConfig) -> ServeExecutor {
        ServeExecutor {
            executor: ReferenceExecutor::new()
                .with_max_threads(1)
                .with_pool_capacity(config.pool_capacity)
                .with_pooled_results(true),
            workers: config.workers.max(1),
            policy: config.policy,
            tiers: Mutex::new(BTreeMap::new()),
            jobs: AtomicUsize::new(0),
            measurements: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads a batch runs with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Aggregate service counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            jobs: self.jobs.load(Ordering::Relaxed),
            compiles: self.executor.compile_count(),
            pool_acquires: self.executor.pool_acquire_count(),
            pool_misses: self.executor.pool_miss_count(),
            mask_acquires: self.executor.mask_pool_acquire_count(),
            mask_misses: self.executor.mask_pool_miss_count(),
            tier_measurements: self.measurements.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the cached tier decisions.
    pub fn tier_choices(&self) -> Vec<TierChoice> {
        self.tiers
            .lock()
            .expect("tier cache poisoned")
            .iter()
            .map(|(&(fp, stepped), &(tier, ref program))| TierChoice {
                fingerprint: format!("{fp:016x}"),
                program: program.clone(),
                stepped,
                tier,
            })
            .collect()
    }

    /// The bench-relevant build fingerprint that salts persisted tier
    /// decisions: anything that can shift the measured tier ranking —
    /// crate version, kernel lane widths, debug vs release codegen, and
    /// the native compiler behind the JIT tier — invalidates the cache.
    pub fn build_fingerprint() -> String {
        let jit = crate::jit::jit_salt().unwrap_or_else(|| "jit-unavailable".to_string());
        format!(
            "v{} lanes{}/{} {} [{jit}]",
            env!("CARGO_PKG_VERSION"),
            stencilflow_expr::KERNEL_LANES,
            stencilflow_expr::KERNEL_LANES_WIDE,
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        )
    }

    /// Serialize the measured tier decisions (plus the build salt) as a
    /// text-JSON document suitable for a cache file. Round-trips through
    /// [`import_tier_decisions`](ServeExecutor::import_tier_decisions).
    pub fn export_tier_decisions(&self) -> String {
        let decisions: Vec<Json> = self
            .tier_choices()
            .into_iter()
            .map(|choice| {
                Json::Object(vec![
                    ("fingerprint".to_string(), Json::String(choice.fingerprint)),
                    ("program".to_string(), Json::String(choice.program)),
                    ("stepped".to_string(), Json::Bool(choice.stepped)),
                    (
                        "tier".to_string(),
                        Json::String(choice.tier.as_str().to_string()),
                    ),
                ])
            })
            .collect();
        Json::Object(vec![
            (
                "format".to_string(),
                Json::String(TIER_CACHE_FORMAT.to_string()),
            ),
            ("salt".to_string(), Json::String(Self::build_fingerprint())),
            ("decisions".to_string(), Json::Array(decisions)),
        ])
        .to_string_pretty()
    }

    /// Load previously exported tier decisions into the live cache.
    ///
    /// A salt that does not match this build discards every decision
    /// (`stale: true`, nothing loaded) — a restart on a different
    /// compiler, lane width, or crate version must re-measure rather than
    /// trust stale rankings. Malformed documents are errors; individual
    /// decisions never override a decision already measured live.
    pub fn import_tier_decisions(&self, text: &str) -> std::result::Result<TierCacheLoad, String> {
        let doc = stencilflow_json::parse(text).map_err(|e| format!("tier cache: {e}"))?;
        let format = doc
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| "tier cache: missing `format`".to_string())?;
        if format != TIER_CACHE_FORMAT {
            return Err(format!("tier cache: unknown format `{format}`"));
        }
        let salt = doc
            .get("salt")
            .and_then(Json::as_str)
            .ok_or_else(|| "tier cache: missing `salt`".to_string())?;
        let decisions = doc
            .get("decisions")
            .and_then(Json::as_array)
            .ok_or_else(|| "tier cache: missing `decisions` array".to_string())?;
        if salt != Self::build_fingerprint() {
            return Ok(TierCacheLoad {
                loaded: 0,
                stale: true,
            });
        }
        let mut loaded = 0usize;
        let mut tiers = self.tiers.lock().expect("tier cache poisoned");
        for (ix, entry) in decisions.iter().enumerate() {
            let fail = |msg: &str| format!("tier cache decision {ix}: {msg}");
            let fingerprint = entry
                .get("fingerprint")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing `fingerprint`"))?;
            let fingerprint = u64::from_str_radix(fingerprint, 16)
                .map_err(|_| fail("`fingerprint` is not a hex u64"))?;
            let program = entry
                .get("program")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing `program`"))?;
            let stepped = entry
                .get("stepped")
                .and_then(Json::as_bool)
                .ok_or_else(|| fail("missing `stepped`"))?;
            let tier: Tier = entry
                .get("tier")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing `tier`"))?
                .parse()
                .map_err(|e: String| fail(&e))?;
            if tiers.len() >= TIER_CACHE_CAPACITY {
                break;
            }
            tiers
                .entry((fingerprint, stepped))
                .or_insert_with(|| (tier, program.to_string()));
            loaded += 1;
        }
        Ok(TierCacheLoad {
            loaded,
            stale: false,
        })
    }

    /// Return a finished result's grids and masks to the shared pools.
    /// Sustained traffic must recycle results (or keep them — recycling is
    /// what makes the steady state allocation-free).
    pub fn recycle(&self, result: ExecutionResult) {
        let (fields, masks, _) = result.into_parts();
        for (_, grid) in fields {
            self.executor.pool_release(grid.into_data());
        }
        for (_, mask) in masks {
            self.executor.release_mask(mask);
        }
    }

    /// Run one job to completion (a single-job batch).
    pub fn run_one(&self, job: JobSpec) -> JobOutcome {
        self.run_batch(vec![job])
            .pop()
            .expect("a one-job batch yields one outcome")
    }

    /// Drain a batch of jobs across the worker pool and return one
    /// [`JobOutcome`] per job, in submission order. Jobs are dequeued
    /// FIFO; idle workers steal row bands from large in-flight sweeps.
    ///
    /// Every returned result holds pooled buffers until
    /// [`recycle`](ServeExecutor::recycle)d, so a huge batch collected
    /// this way keeps the whole batch's outputs live at once. Sustained
    /// traffic should use [`run_batch_with`](ServeExecutor::run_batch_with)
    /// and recycle from the sink instead — that is what keeps the steady
    /// state allocation-free under thousands of in-flight jobs.
    pub fn run_batch(&self, jobs: Vec<JobSpec>) -> Vec<JobOutcome> {
        let outcomes = Mutex::new(Vec::with_capacity(jobs.len()));
        self.run_batch_with(jobs, |outcome| {
            outcomes
                .lock()
                .expect("outcome list poisoned")
                .push(outcome);
        });
        let mut outcomes = outcomes.into_inner().expect("outcome list poisoned");
        outcomes.sort_by_key(|o| o.job);
        outcomes
    }

    /// [`run_batch`](ServeExecutor::run_batch) with a streaming completion
    /// sink: the worker that finishes a job calls `sink` with its outcome
    /// immediately, so the caller can respond and recycle while the rest
    /// of the batch is still running. The sink runs on worker threads and
    /// may be called concurrently.
    pub fn run_batch_with<F: Fn(JobOutcome) + Sync>(&self, jobs: Vec<JobSpec>, sink: F) {
        if jobs.is_empty() {
            return;
        }
        let started = Instant::now();
        let count = jobs.len();
        let shared = BatchShared {
            queue: Mutex::new(jobs.into_iter().enumerate().collect()),
            sweeps: Mutex::new(Vec::new()),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            sink: &sink,
            remaining: AtomicUsize::new(count),
        };
        let workers = self.workers.min(count).max(1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| scope.spawn(|| self.worker_loop(&shared, started)))
                .collect();
            // Job panics are isolated per job inside the workers, so the
            // only panic that can reach a join is one thrown by the
            // caller's own sink — that is the caller's bug, and it
            // propagates after every worker has parked.
            let mut sink_panic = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    sink_panic = Some(payload);
                }
            }
            if let Some(payload) = sink_panic {
                std::panic::resume_unwind(payload);
            }
        });
        self.jobs.fetch_add(count, Ordering::Relaxed);
    }

    fn worker_loop(&self, shared: &BatchShared<'_>, started: Instant) {
        loop {
            // 1. Fairness: a queued job always beats helping a big one.
            let job = shared.queue.lock().expect("job queue poisoned").pop_front();
            if let Some((ix, job)) = job {
                // Outer isolation net: the fine-grained boundaries inside
                // `execute_job` recycle buffers precisely; this catch
                // guarantees that even a panic in the scheduler glue
                // between them downgrades to a per-job outcome instead of
                // aborting the batch.
                let (result, tier) = match catch_unwind(AssertUnwindSafe(|| {
                    self.execute_job(shared, &job)
                })) {
                    Ok(pair) => pair,
                    Err(payload) => (Err(JobError::Panicked(panic_message(payload))), Tier::Simd),
                };
                // Decrement before the sink so a panicking sink cannot
                // leave the other workers waiting on `remaining` forever.
                shared.remaining.fetch_sub(1, Ordering::AcqRel);
                (shared.sink)(JobOutcome {
                    job: ix,
                    tier,
                    latency: started.elapsed(),
                    result,
                });
                shared.wake.notify_all();
                continue;
            }
            // 2. Idle: help an in-flight large sweep.
            if self.try_steal(shared) {
                continue;
            }
            // 3. Drained: exit once every job has completed.
            if shared.remaining.load(Ordering::Acquire) == 0 {
                shared.wake.notify_all();
                return;
            }
            // 4. Nothing to do right now; naps are bounded so a wakeup
            //    race can only cost a millisecond.
            let guard = shared.idle.lock().expect("idle mutex poisoned");
            drop(
                shared
                    .wake
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("idle mutex poisoned"),
            );
        }
    }

    fn try_steal(&self, shared: &BatchShared) -> bool {
        let sweeps: Vec<Arc<SweepShared>> =
            shared.sweeps.lock().expect("sweep list poisoned").clone();
        for sweep in sweeps {
            if self.run_band(shared, &sweep, true) {
                return true;
            }
        }
        false
    }

    /// Claim and execute one band of `sweep`. Returns false when no bands
    /// are left to claim.
    ///
    /// This is the per-job isolation boundary for the banded SIMD path:
    /// the kernel runs inside `catch_unwind`, and the band's pooled
    /// buffers are owned *outside* the closure, so a panicking (or
    /// injected-poison) band releases them back to the pools exactly like
    /// an ordinary kernel error — the steady-state 0-miss invariant
    /// survives a poison job.
    fn run_band(&self, shared: &BatchShared<'_>, sweep: &SweepShared, stolen: bool) -> bool {
        let ix = sweep.next.fetch_add(1, Ordering::Relaxed);
        if ix >= sweep.bands.len() {
            return false;
        }
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        let (row_start, row_end) = sweep.bands[ix];
        let len = (row_end - row_start) * sweep.row_len;
        let mut data = self.executor.alloc_result_cells(len);
        let mut mask = self.executor.alloc_result_mask(len);
        let stencil = &sweep.compiled.stencil_plans()[sweep.stencil_ix];
        let (inputs, computed) = sweep.maps();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if ix == 0 {
                match sweep.fault {
                    Some(JobFault::Poison) => panic!("injected poison-job fault"),
                    Some(JobFault::Stall(delay)) => std::thread::sleep(delay),
                    None => {}
                }
            }
            if sweep.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(JobError::Cancelled);
            }
            stencil
                .bind(inputs, computed, true, true, true)
                .and_then(|bound| bound.run_rows(row_start, row_end, &mut data, &mut mask))
                .map_err(|source| {
                    JobError::Program(ProgramError::Code {
                        stencil: stencil.name().to_string(),
                        source,
                    })
                })
        }));
        let outcome = match attempt {
            Ok(outcome) => outcome,
            Err(payload) => Err(JobError::Panicked(panic_message(payload))),
        };
        match outcome {
            Ok(()) => sweep
                .results
                .lock()
                .expect("band results poisoned")
                .push(BandOut {
                    row_start,
                    row_end,
                    data,
                    mask,
                }),
            Err(error) => {
                self.executor.pool_release(data);
                self.executor.release_mask(mask);
                let mut slot = sweep.error.lock().expect("band error slot poisoned");
                if slot.is_none() {
                    *slot = Some(error);
                }
            }
        }
        sweep.done.fetch_add(1, Ordering::Release);
        shared.wake.notify_all();
        true
    }

    fn execute_job(&self, shared: &BatchShared<'_>, job: &JobSpec) -> (JobResult, Tier) {
        if job.is_cancelled() {
            return (Err(JobError::Cancelled), Tier::Simd);
        }
        let compiled = match self.executor.prepare(&job.program) {
            Ok(compiled) => compiled,
            Err(err) => return (Err(err.into()), Tier::Simd),
        };
        if let Err(err) = ReferenceExecutor::check_inputs(&compiled, &job.inputs) {
            return (Err(err.into()), Tier::Simd);
        }
        if job.steps == 0 {
            return (
                Err(JobError::Program(ProgramError::Invalid {
                    message: "serve jobs require at least one time step".into(),
                })),
                Tier::Simd,
            );
        }
        let pinned = job.tier.or(match self.policy {
            TierPolicy::Fixed(tier) => Some(tier),
            TierPolicy::Auto => None,
        });
        match pinned {
            Some(tier) => (self.run_tier(shared, &compiled, job, tier), tier),
            None => {
                let key = (compiled.fingerprint(), job.steps > 1);
                let cached = self
                    .tiers
                    .lock()
                    .expect("tier cache poisoned")
                    .get(&key)
                    .map(|&(tier, _)| tier);
                match cached {
                    Some(tier) => (self.run_tier(shared, &compiled, job, tier), tier),
                    None => self.measure_and_pick(shared, &compiled, job, key),
                }
            }
        }
    }

    /// First sight of a fingerprint under [`TierPolicy::Auto`]: run every
    /// eligible tier once (with a warmup pass for small jobs so
    /// first-touch pool misses don't bias the timing), cache the fastest,
    /// and return its result — all tiers are bit-identical, so the
    /// measurement doubles as the job itself.
    fn measure_and_pick(
        &self,
        shared: &BatchShared<'_>,
        compiled: &Arc<CompiledProgram>,
        job: &JobSpec,
        key: (u64, bool),
    ) -> (JobResult, Tier) {
        let candidates = eligible_tiers(compiled, job.steps);
        if candidates.len() == 1 {
            let tier = candidates[0];
            self.record_tier(key, tier, compiled.name());
            return (self.run_tier(shared, compiled, job, tier), tier);
        }
        let warm =
            compiled.cell_count().saturating_mul(job.steps.max(1)) <= MEASURE_WARMUP_MAX_CELLS;
        let mut best: Option<(Duration, Tier, ExecutionResult)> = None;
        for &tier in &candidates {
            if warm {
                // Warmup errors surface in the timed run below.
                if let Ok(result) = self.run_tier(shared, compiled, job, tier) {
                    self.recycle(result);
                }
            }
            let t0 = Instant::now();
            match self.run_tier(shared, compiled, job, tier) {
                Ok(result) => {
                    let elapsed = t0.elapsed();
                    match &best {
                        Some((best_elapsed, _, _)) if elapsed >= *best_elapsed => {
                            self.recycle(result);
                        }
                        _ => {
                            if let Some((_, _, previous)) = best.replace((elapsed, tier, result)) {
                                self.recycle(previous);
                            }
                        }
                    }
                }
                // The SIMD tier is the floor: its failure is the job's
                // failure. Fused/JIT measurement errors (e.g. a compiler
                // hiccup) just exclude the tier from this decision.
                Err(err) => {
                    if tier == Tier::Simd {
                        return (Err(err), Tier::Simd);
                    }
                }
            }
        }
        let (_, tier, result) = best.expect("the SIMD tier always measured or errored above");
        self.record_tier(key, tier, compiled.name());
        self.measurements.fetch_add(1, Ordering::Relaxed);
        (Ok(result), tier)
    }

    fn record_tier(&self, key: (u64, bool), tier: Tier, program: &str) {
        let mut tiers = self.tiers.lock().expect("tier cache poisoned");
        if tiers.len() >= TIER_CACHE_CAPACITY {
            tiers.clear();
        }
        tiers.insert(key, (tier, program.to_string()));
    }

    fn run_tier(
        &self,
        shared: &BatchShared<'_>,
        compiled: &Arc<CompiledProgram>,
        job: &JobSpec,
        tier: Tier,
    ) -> JobResult {
        if job.is_cancelled() {
            return Err(JobError::Cancelled);
        }
        match tier {
            Tier::Simd => self.run_simd(shared, compiled, job),
            // The fused and JIT tiers run whole-program inside one
            // `catch_unwind` boundary. A panic there can strand the
            // executor's *internal* scratch (unlike the banded path, whose
            // buffers are owned outside the closure), so the isolation
            // guarantee for these tiers is "the batch survives", not
            // "zero pool misses after a panic" — the injected poison
            // fault fires before entry precisely so tests can pin the
            // stronger banded guarantee separately.
            Tier::Fused | Tier::Jit => {
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    match job.fault {
                        Some(JobFault::Poison) => panic!("injected poison-job fault"),
                        Some(JobFault::Stall(delay)) => std::thread::sleep(delay),
                        None => {}
                    }
                    if job.is_cancelled() {
                        return Err(JobError::Cancelled);
                    }
                    let run = match (tier, job.steps <= 1) {
                        (Tier::Fused, true) => {
                            self.executor.run_fused_compiled(compiled, &job.inputs)
                        }
                        (Tier::Fused, false) => {
                            self.executor
                                .run_steps_fused_compiled(compiled, &job.inputs, job.steps)
                        }
                        (_, true) => self.executor.run_jit_compiled(compiled, &job.inputs),
                        (_, false) => {
                            self.executor
                                .run_steps_jit_compiled(compiled, &job.inputs, job.steps)
                        }
                    };
                    run.map_err(JobError::Program)
                }));
                match attempt {
                    Ok(result) => result,
                    Err(payload) => Err(JobError::Panicked(panic_message(payload))),
                }
            }
        }
    }

    /// The service's SIMD-tier path: per-stencil sweeps over pooled
    /// buffers, banded and published for stealing when large. Outputs
    /// only; bit-identical to [`ReferenceExecutor::run`] /
    /// [`ReferenceExecutor::run_steps`] because every band runs the same
    /// [`run_rows`](crate::plan) sweep the executor uses.
    fn run_simd(
        &self,
        shared: &BatchShared<'_>,
        compiled: &Arc<CompiledProgram>,
        job: &JobSpec,
    ) -> JobResult {
        let steps = job.steps.max(1);
        let num_cells = compiled.cell_count();
        let stencil_count = compiled.stencil_count();

        let mut io = if steps == 1 {
            SweepIo {
                client_inputs: Some(Arc::clone(&job.inputs)),
                work: BTreeMap::new(),
                computed: BTreeMap::new(),
            }
        } else {
            // Time stepping mutates the state fields, so the job works on
            // pooled copies of the client's inputs (steady-state pool
            // hits, never a clone allocation).
            compiled.feedback_pairs()?;
            let mut work = BTreeMap::new();
            for (name, grid) in job.inputs.iter() {
                work.insert(name.clone(), self.pooled_copy(grid));
            }
            SweepIo {
                client_inputs: None,
                work,
                computed: BTreeMap::new(),
            }
        };

        let mut cells_evaluated = 0usize;
        let mut final_masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
        let outcome = (|| -> std::result::Result<(), JobError> {
            for step in 0..steps {
                if job.is_cancelled() {
                    return Err(JobError::Cancelled);
                }
                let mut masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
                for stencil_ix in 0..stencil_count {
                    let name = compiled.stencil_plans()[stencil_ix].name().to_string();
                    let (grid, mask) =
                        self.sweep_stencil(shared, compiled, stencil_ix, job, &mut io)?;
                    io.computed.insert(name.clone(), grid);
                    masks.insert(name, mask);
                }
                cells_evaluated += num_cells * stencil_count;
                if step + 1 == steps {
                    final_masks = masks;
                    break;
                }
                // Feedback: outputs become next step's state; everything
                // else returns to the pools.
                let pairs = compiled.feedback_pairs()?;
                for (output, input) in &pairs {
                    let grid = io
                        .computed
                        .remove(output)
                        .expect("program outputs are always computed");
                    if let Some(old) = io.work.insert(input.clone(), grid) {
                        self.executor.pool_release(old.into_data());
                    }
                }
                for (_, grid) in std::mem::take(&mut io.computed) {
                    self.executor.pool_release(grid.into_data());
                }
                for (_, mask) in masks {
                    self.executor.release_mask(mask);
                }
            }
            Ok(())
        })();
        // Working state goes back to the pools on success and failure
        // alike (a lost buffer would show up as a later pool miss).
        for (_, grid) in std::mem::take(&mut io.work) {
            self.executor.pool_release(grid.into_data());
        }
        if let Err(err) = outcome {
            for (_, grid) in std::mem::take(&mut io.computed) {
                self.executor.pool_release(grid.into_data());
            }
            for (_, mask) in std::mem::take(&mut final_masks) {
                self.executor.release_mask(mask);
            }
            return Err(err);
        }

        // Outputs-only contract: intermediates return to the pools.
        let outputs = compiled.output_names();
        let mut fields = BTreeMap::new();
        let mut out_masks = BTreeMap::new();
        for (name, grid) in std::mem::take(&mut io.computed) {
            if outputs.contains(&name) {
                fields.insert(name, grid);
            } else {
                self.executor.pool_release(grid.into_data());
            }
        }
        for (name, mask) in final_masks {
            if outputs.contains(&name) {
                out_masks.insert(name, mask);
            } else {
                self.executor.release_mask(mask);
            }
        }
        Ok(ExecutionResult::from_parts(
            fields,
            out_masks,
            cells_evaluated,
        ))
    }

    /// Sweep one stencil, banded across the worker pool when large. The
    /// owner claims bands alongside any thieves and stitches the pooled
    /// band buffers into the result grid.
    fn sweep_stencil(
        &self,
        shared: &BatchShared<'_>,
        compiled: &Arc<CompiledProgram>,
        stencil_ix: usize,
        job: &JobSpec,
        io: &mut SweepIo,
    ) -> std::result::Result<(Grid, Vec<bool>), JobError> {
        let stencil = &compiled.stencil_plans()[stencil_ix];
        let rows = stencil.row_count();
        let row_len = stencil.row_len();
        let num_cells = compiled.cell_count();
        let weight = num_cells.saturating_mul(stencil.accesses_per_cell().max(1));
        let band_target =
            if self.workers <= 1 || rows <= 1 || weight < PARALLEL_THRESHOLD_CELL_ACCESSES {
                1
            } else {
                rows.min(self.workers * BANDS_PER_WORKER)
            };
        let per_band = rows.div_ceil(band_target);
        let mut bands = Vec::with_capacity(band_target);
        let mut row = 0usize;
        while row < rows {
            let hi = (row + per_band).min(rows);
            bands.push((row, hi));
            row = hi;
        }

        let sweep = Arc::new(SweepShared {
            compiled: Arc::clone(compiled),
            stencil_ix,
            client_inputs: io.client_inputs.clone(),
            work: std::mem::take(&mut io.work),
            computed: std::mem::take(&mut io.computed),
            row_len,
            bands,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            results: Mutex::new(Vec::new()),
            error: Mutex::new(None),
            cancel: job.cancel.clone(),
            fault: job.fault,
        });
        let stealable = sweep.bands.len() > 1;
        if stealable {
            shared
                .sweeps
                .lock()
                .expect("sweep list poisoned")
                .push(Arc::clone(&sweep));
            shared.wake.notify_all();
        }
        // The owner always works its own sweep.
        while self.run_band(shared, &sweep, false) {}
        // Wait for any stolen bands to land.
        while sweep.done.load(Ordering::Acquire) < sweep.bands.len() {
            let guard = shared.idle.lock().expect("idle mutex poisoned");
            drop(
                shared
                    .wake
                    .wait_timeout(guard, Duration::from_micros(200))
                    .expect("idle mutex poisoned"),
            );
        }
        if stealable {
            shared
                .sweeps
                .lock()
                .expect("sweep list poisoned")
                .retain(|s| !Arc::ptr_eq(s, &sweep));
        }
        // Thieves hold their Arc clone only for the instant between the
        // `done` increment and the drop; spin it out.
        let mut sweep = {
            let mut sweep = sweep;
            loop {
                match Arc::try_unwrap(sweep) {
                    Ok(owned) => break owned,
                    Err(still_shared) => {
                        sweep = still_shared;
                        std::thread::yield_now();
                    }
                }
            }
        };
        io.work = std::mem::take(&mut sweep.work);
        io.computed = std::mem::take(&mut sweep.computed);
        let band_outs = sweep.results.into_inner().expect("band results poisoned");
        if let Some(err) = sweep.error.into_inner().expect("band error slot poisoned") {
            for band in band_outs {
                self.executor.pool_release(band.data);
                self.executor.release_mask(band.mask);
            }
            return Err(err);
        }

        let dim_refs: Vec<&str> = compiled.dim_names().iter().map(String::as_str).collect();
        if sweep.bands.len() == 1 {
            // Single band: its buffers are the result, no stitching.
            let band = band_outs
                .into_iter()
                .next()
                .expect("a completed sweep has its band result");
            let grid = Grid::from_data(
                &dim_refs,
                compiled.space_shape(),
                stencil.out_dtype(),
                band.data,
            );
            return Ok((grid, band.mask));
        }
        // Stitch bands into pooled full-size buffers (every row is
        // covered by exactly one band, so no fill is needed for the data
        // buffer; pooled masks come back all-true and are then fully
        // overwritten too).
        let mut data = self.executor.pool_acquire(num_cells);
        let mut mask = self.executor.alloc_result_mask(num_cells);
        for band in band_outs {
            let lo = band.row_start * row_len;
            let hi = band.row_end * row_len;
            data[lo..hi].copy_from_slice(&band.data);
            mask[lo..hi].copy_from_slice(&band.mask);
            self.executor.pool_release(band.data);
            self.executor.release_mask(band.mask);
        }
        let grid = Grid::from_data(&dim_refs, compiled.space_shape(), stencil.out_dtype(), data);
        Ok((grid, mask))
    }

    /// A pooled copy of a client grid (the stepped path's mutable state).
    fn pooled_copy(&self, grid: &Grid) -> Grid {
        let mut data = self.executor.pool_acquire(grid.len());
        data.copy_from_slice(grid.as_slice());
        let dim_refs: Vec<&str> = grid.dims().iter().map(String::as_str).collect();
        Grid::from_data(&dim_refs, grid.shape(), grid.data_type(), data)
    }
}

/// The tiers eligible for a job: SIMD always; fused when the plan (and,
/// for stepped jobs, the feedback pairing) supports it; JIT additionally
/// when the emitted unit exists and a compiler is reachable.
fn eligible_tiers(compiled: &CompiledProgram, steps: usize) -> Vec<Tier> {
    let mut tiers = vec![Tier::Simd];
    let fused_ok = if steps > 1 {
        compiled.fused_steps_supported()
    } else {
        compiled.fused_tier_supported()
    };
    if fused_ok {
        tiers.push(Tier::Fused);
        if compiled.jit_supported() && crate::jit::jit_available().is_ok() {
            tiers.push(Tier::Jit);
        }
    }
    tiers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_data::generate_inputs;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn jacobi_like(shape: &[usize]) -> Arc<StencilProgram> {
        Arc::new(
            StencilProgramBuilder::new("serve_jacobi", shape)
                .input("u", DataType::Float32, &["i", "j"])
                .stencil(
                    "u_next",
                    "0.25 * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1])",
                )
                .output("u_next")
                .build()
                .unwrap(),
        )
    }

    fn job_for(program: &Arc<StencilProgram>, seed: u64) -> JobSpec {
        let inputs = Arc::new(generate_inputs(program, seed));
        JobSpec::new(Arc::clone(program), inputs)
    }

    #[test]
    fn batch_results_match_reference_runs_bitwise() {
        let program = jacobi_like(&[16, 16]);
        let serve = ServeExecutor::new(ServeConfig::new().with_workers(4));
        let reference = ReferenceExecutor::new();
        let jobs: Vec<JobSpec> = (0..12).map(|seed| job_for(&program, seed)).collect();
        let expected: Vec<_> = jobs
            .iter()
            .map(|job| reference.run(&job.program, &job.inputs).unwrap())
            .collect();
        let outcomes = serve.run_batch(jobs);
        assert_eq!(outcomes.len(), 12);
        for (outcome, expected) in outcomes.into_iter().zip(expected) {
            let result = outcome.result.unwrap();
            let got = result.field("u_next").unwrap().as_slice();
            let want = expected.field("u_next").unwrap().as_slice();
            for (a, b) in got.iter().zip(want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(
                result.valid_mask("u_next").unwrap(),
                expected.valid_mask("u_next").unwrap()
            );
            // Outputs-only contract: no intermediate fields.
            assert_eq!(result.fields().count(), 1);
            serve.recycle(result);
        }
        // One program fingerprint -> one compilation across the batch.
        assert_eq!(serve.stats().compiles, 1);
    }

    #[test]
    fn stepped_simd_jobs_match_run_steps_bitwise() {
        let program = jacobi_like(&[12, 12]);
        let serve = ServeExecutor::new(
            ServeConfig::new()
                .with_workers(2)
                .with_tier_policy(TierPolicy::Fixed(Tier::Simd)),
        );
        let reference = ReferenceExecutor::new();
        let job = job_for(&program, 7).with_steps(4);
        let expected = reference.run_steps(&program, &job.inputs, 4).unwrap();
        let outcome = serve.run_one(job);
        assert_eq!(outcome.tier, Tier::Simd);
        let result = outcome.result.unwrap();
        for (a, b) in result
            .field("u_next")
            .unwrap()
            .as_slice()
            .iter()
            .zip(expected.field("u_next").unwrap().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(result.cells_evaluated(), expected.cells_evaluated());
        serve.recycle(result);
    }

    #[test]
    fn steady_state_batches_hit_the_pools() {
        let program = jacobi_like(&[16, 16]);
        let serve = ServeExecutor::new(ServeConfig::new().with_workers(2));
        let jobs = || -> Vec<JobSpec> { (0..8).map(|seed| job_for(&program, seed)).collect() };
        // Warmup: tier measurement + pool population. Several batches, so
        // the pool has seen the peak concurrent demand of every worker
        // interleaving before the steady window opens.
        for _ in 0..3 {
            for outcome in serve.run_batch(jobs()) {
                serve.recycle(outcome.result.unwrap());
            }
        }
        let warm = serve.stats();
        for _ in 0..3 {
            for outcome in serve.run_batch(jobs()) {
                serve.recycle(outcome.result.unwrap());
            }
        }
        let steady = serve.stats();
        assert_eq!(
            steady.pool_misses, warm.pool_misses,
            "steady-state batches must not allocate cell buffers"
        );
        assert_eq!(
            steady.mask_misses, warm.mask_misses,
            "steady-state batches must not allocate masks"
        );
        assert_eq!(steady.compiles, warm.compiles);
        assert!(steady.pool_acquires > warm.pool_acquires);
    }

    #[test]
    fn tier_override_knobs_are_honoured() {
        let program = jacobi_like(&[8, 8]);
        let serve = ServeExecutor::new(
            ServeConfig::new()
                .with_workers(1)
                .with_tier_policy(TierPolicy::Fixed(Tier::Fused)),
        );
        let outcome = serve.run_one(job_for(&program, 1));
        assert_eq!(outcome.tier, Tier::Fused);
        serve.recycle(outcome.result.unwrap());
        // Per-job override beats the policy.
        let outcome = serve.run_one(job_for(&program, 2).with_tier(Tier::Simd));
        assert_eq!(outcome.tier, Tier::Simd);
        serve.recycle(outcome.result.unwrap());
    }

    #[test]
    fn auto_policy_measures_once_per_fingerprint() {
        let program = jacobi_like(&[16, 16]);
        let serve = ServeExecutor::new(ServeConfig::new().with_workers(1));
        for seed in 0..6 {
            let outcome = serve.run_one(job_for(&program, seed));
            serve.recycle(outcome.result.unwrap());
        }
        let stats = serve.stats();
        assert_eq!(stats.tier_measurements, 1);
        assert_eq!(stats.compiles, 1);
        let choices = serve.tier_choices();
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].program, "serve_jacobi");
        assert!(!choices[0].stepped);
    }

    #[test]
    fn large_sweeps_offer_bands_and_stay_bitwise_identical() {
        // Heavy enough to band (> 2^18 cell·accesses), run with a wide
        // worker pool so stealing has a chance to engage; correctness must
        // hold either way.
        let program = jacobi_like(&[512, 256]);
        let serve = ServeExecutor::new(
            ServeConfig::new()
                .with_workers(4)
                .with_tier_policy(TierPolicy::Fixed(Tier::Simd)),
        );
        let reference = ReferenceExecutor::new();
        let job = job_for(&program, 3);
        let expected = reference.run(&job.program, &job.inputs).unwrap();
        let outcome = serve.run_one(job);
        let result = outcome.result.unwrap();
        for (a, b) in result
            .field("u_next")
            .unwrap()
            .as_slice()
            .iter()
            .zip(expected.field("u_next").unwrap().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        serve.recycle(result);
    }

    #[test]
    fn zero_steps_and_bad_inputs_are_rejected_per_job() {
        let program = jacobi_like(&[8, 8]);
        let serve = ServeExecutor::new(ServeConfig::new().with_workers(1));
        let bad_steps = job_for(&program, 1).with_steps(0);
        assert!(serve.run_one(bad_steps).result.is_err());
        let empty = JobSpec::new(Arc::clone(&program), Arc::new(BTreeMap::new()));
        assert!(serve.run_one(empty).result.is_err());
        // A failing job does not poison the batch: the next one succeeds.
        let ok = serve.run_one(job_for(&program, 1));
        serve.recycle(ok.result.unwrap());
    }
}
