//! Dense grids over (subsets of) the iteration space.

use stencilflow_expr::{DataType, Value};

/// A dense row-major array spanning a subset of the iteration-space
/// dimensions.
///
/// Values are stored as `f64` and rounded through the grid's element type on
/// every store, so an `f32` grid holds exactly the values an `f32` hardware
/// pipeline would produce. Scalars are rank-0 grids with a single element.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    dims: Vec<String>,
    shape: Vec<usize>,
    strides: Vec<usize>,
    dtype: DataType,
    data: Vec<f64>,
}

impl Grid {
    /// Create a zero-initialized grid.
    ///
    /// # Panics
    ///
    /// Panics if `dims` and `shape` have different lengths, or if the
    /// dimension product overflows `usize` (see [`Grid::try_zeros`] for the
    /// non-panicking ingest-path variant).
    pub fn zeros(dims: &[&str], shape: &[usize], dtype: DataType) -> Self {
        match Grid::try_zeros(dims, shape, dtype) {
            Ok(grid) => grid,
            Err(message) => panic!("{message}"),
        }
    }

    /// Create a zero-initialized grid, reporting invalid shapes as an error
    /// instead of panicking.
    ///
    /// Untrusted program descriptions reach grid allocation before any
    /// workload runs, so a hostile or corrupt shape like
    /// `[2^40, 2^40, 2^40]` must surface as an actionable error here — not
    /// as a `usize` overflow panic (or an absurd allocation attempt) deep
    /// inside the executor.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when `dims` and `shape`
    /// disagree in rank, or when the element count (dimension product,
    /// including the byte size of the backing `f64` storage) overflows
    /// `usize`.
    pub fn try_zeros(dims: &[&str], shape: &[usize], dtype: DataType) -> Result<Self, String> {
        if dims.len() != shape.len() {
            return Err(format!(
                "dims/shape rank mismatch: {} dimension names for shape of rank {}",
                dims.len(),
                shape.len()
            ));
        }
        let overflow = || {
            format!(
                "grid shape {shape:?} overflows the addressable element count \
                 on this platform; reject or split the domain before allocating"
            )
        };
        let mut len: usize = 1;
        for &extent in shape {
            len = len.checked_mul(extent).ok_or_else(overflow)?;
        }
        // The backing store holds f64 words: the byte size must be
        // addressable too, or `vec!` aborts instead of erroring.
        len.checked_mul(std::mem::size_of::<f64>())
            .ok_or_else(overflow)?;
        let len = len.max(1);
        // Suffix products can overflow even when the full product does not
        // (a zero extent masks arbitrarily large trailing dimensions), so
        // the stride computation is checked as well.
        let mut strides = vec![1usize; shape.len()];
        for d in (0..shape.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1]
                .checked_mul(shape[d + 1])
                .ok_or_else(overflow)?;
        }
        Ok(Grid {
            dims: dims.iter().map(|d| d.to_string()).collect(),
            shape: shape.to_vec(),
            strides,
            dtype,
            data: vec![0.0; len],
        })
    }

    /// Create a rank-0 (scalar) grid holding one value.
    pub fn scalar(value: f64, dtype: DataType) -> Self {
        let mut grid = Grid::zeros(&[], &[], dtype);
        grid.data[0] = Value::from_f64(value, dtype).as_f64();
        grid
    }

    /// Create a `float32` grid from explicit values (row-major; every value
    /// is rounded through `f32` on the way in). Use
    /// [`Grid::from_values_typed`] for any other element type.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the shape.
    pub fn from_values(dims: &[&str], shape: &[usize], values: &[f64]) -> Self {
        Grid::from_values_typed(dims, shape, DataType::Float32, values)
    }

    /// Create a grid of the given element type from explicit values
    /// (row-major; every value is rounded through the element type).
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the shape.
    pub fn from_values_typed(
        dims: &[&str],
        shape: &[usize],
        dtype: DataType,
        values: &[f64],
    ) -> Self {
        let mut grid = Grid::zeros(dims, shape, dtype);
        assert_eq!(
            values.len(),
            grid.data.len(),
            "value count does not match shape"
        );
        for (slot, &v) in grid.data.iter_mut().zip(values.iter()) {
            *slot = Value::from_f64(v, dtype).as_f64();
        }
        grid
    }

    /// Wrap an owned, already-populated cell buffer as a grid without
    /// copying (service-tier internal: the buffer typically comes from the
    /// executor's pool, and the values must already be rounded through
    /// `dtype`).
    ///
    /// # Panics
    ///
    /// Panics if `dims` and `shape` disagree in rank or the buffer length
    /// does not match the shape.
    pub(crate) fn from_data(
        dims: &[&str],
        shape: &[usize],
        dtype: DataType,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(dims.len(), shape.len(), "rank mismatch");
        // Matches `try_zeros`: rank-0 and zero-extent grids store one slot.
        let num_cells: usize = shape.iter().product::<usize>().max(1);
        assert_eq!(data.len(), num_cells, "buffer length does not match shape");
        let mut strides = vec![1usize; shape.len()];
        for ix in (0..shape.len().saturating_sub(1)).rev() {
            strides[ix] = strides[ix + 1] * shape[ix + 1];
        }
        Grid {
            dims: dims.iter().map(|d| d.to_string()).collect(),
            shape: shape.to_vec(),
            strides,
            dtype,
            data,
        }
    }

    /// Take the backing cell buffer out of the grid (service-tier
    /// internal: returns the buffer to the executor's pool).
    pub(crate) fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Create a grid by evaluating `f` at every index.
    pub fn from_fn(
        dims: &[&str],
        shape: &[usize],
        dtype: DataType,
        mut f: impl FnMut(&[usize]) -> f64,
    ) -> Self {
        let mut grid = Grid::zeros(dims, shape, dtype);
        let indices: Vec<Vec<usize>> = grid.indices().collect();
        for index in indices {
            let v = f(&index);
            grid.set(&index, v);
        }
        grid
    }

    /// Dimension names of the grid.
    pub fn dims(&self) -> &[String] {
        &self.dims
    }

    /// Shape of the grid.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element data type.
    pub fn data_type(&self) -> DataType {
        self.dtype
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has zero elements (never true: scalars have one).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Raw data slice (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice (row-major). Values written here bypass the
    /// element-type rounding of [`Grid::set`]; callers (the compiled
    /// execution plan) must round through [`Value::from_f64`] themselves.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row-major strides (elements) of each dimension.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Flat row-major index of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds indices.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        index
            .iter()
            .zip(self.strides.iter())
            .zip(self.shape.iter())
            .map(|((&ix, &stride), &extent)| {
                assert!(ix < extent, "index {ix} out of bounds for extent {extent}");
                ix * stride
            })
            .sum()
    }

    /// Read the value at `index`.
    pub fn get(&self, index: &[usize]) -> f64 {
        self.data[self.flat_index(index)]
    }

    /// Read the value at `index` as a typed [`Value`].
    pub fn get_value(&self, index: &[usize]) -> Value {
        Value::from_f64(self.get(index), self.dtype)
    }

    /// Write the value at `index`, rounding through the element type.
    pub fn set(&mut self, index: &[usize], value: f64) {
        let flat = self.flat_index(index);
        self.data[flat] = Value::from_f64(value, self.dtype).as_f64();
    }

    /// Read at a signed index; returns `None` when any coordinate falls
    /// outside the grid (the caller applies the boundary condition).
    pub fn get_checked(&self, index: &[i64]) -> Option<f64> {
        if index.len() != self.rank() {
            return None;
        }
        let mut flat = 0usize;
        for ((&ix, &stride), &extent) in
            index.iter().zip(self.strides.iter()).zip(self.shape.iter())
        {
            if ix < 0 || ix as usize >= extent {
                return None;
            }
            flat += ix as usize * stride;
        }
        Some(self.data[flat])
    }

    /// Iterate over all indices of the grid in row-major order. Rank-0 grids
    /// yield a single empty index.
    pub fn indices(&self) -> Box<dyn Iterator<Item = Vec<usize>>> {
        if self.rank() == 0 {
            return Box::new(std::iter::once(Vec::new()));
        }
        let shape = self.shape.clone();
        let total: usize = shape.iter().product();
        Box::new((0..total).map(move |mut flat| {
            let mut index = vec![0usize; shape.len()];
            for d in (0..shape.len()).rev() {
                index[d] = flat % shape[d];
                flat /= shape[d];
            }
            index
        }))
    }

    /// Maximum absolute difference to another grid of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Grid) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether every element is within `tol` of the corresponding element of
    /// `other`, relative to the larger magnitude (and absolutely for small
    /// values).
    pub fn approx_eq(&self, other: &Grid, tol: f64) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.data.iter().zip(other.data.iter()).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut g = Grid::zeros(&["i", "j"], &[2, 3], DataType::Float32);
        assert_eq!(g.len(), 6);
        assert_eq!(g.rank(), 2);
        g.set(&[1, 2], 5.5);
        assert_eq!(g.get(&[1, 2]), 5.5);
        assert_eq!(g.get(&[0, 0]), 0.0);
    }

    #[test]
    fn f32_rounding_on_store() {
        let mut g = Grid::zeros(&["i"], &[1], DataType::Float32);
        g.set(&[0], 1.0 + 1e-12);
        assert_eq!(g.get(&[0]), 1.0);
        let mut g64 = Grid::zeros(&["i"], &[1], DataType::Float64);
        g64.set(&[0], 1.0 + 1e-12);
        assert!(g64.get(&[0]) > 1.0);
    }

    #[test]
    fn scalar_grid() {
        let g = Grid::scalar(3.25, DataType::Float32);
        assert_eq!(g.rank(), 0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(&[]), 3.25);
        let all: Vec<Vec<usize>> = g.indices().collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn from_values_typed_rounds_through_element_type() {
        let precise = 1.0 + 1e-12;
        let f32_grid = Grid::from_values(&["i"], &[1], &[precise]);
        assert_eq!(f32_grid.data_type(), DataType::Float32);
        assert_eq!(f32_grid.get(&[0]), 1.0);
        let f64_grid = Grid::from_values_typed(&["i"], &[1], DataType::Float64, &[precise]);
        assert_eq!(f64_grid.data_type(), DataType::Float64);
        assert_eq!(f64_grid.get(&[0]), precise);
        let int_grid = Grid::from_values_typed(&["i"], &[2], DataType::Int32, &[3.7, -1.2]);
        assert_eq!(int_grid.as_slice(), &[3.0, -1.0]);
    }

    #[test]
    fn checked_access_detects_out_of_bounds() {
        let g = Grid::from_values(&["i"], &[3], &[1.0, 2.0, 3.0]);
        assert_eq!(g.get_checked(&[0]), Some(1.0));
        assert_eq!(g.get_checked(&[2]), Some(3.0));
        assert_eq!(g.get_checked(&[-1]), None);
        assert_eq!(g.get_checked(&[3]), None);
    }

    #[test]
    fn indices_are_row_major() {
        let g = Grid::zeros(&["i", "j"], &[2, 2], DataType::Float32);
        let all: Vec<Vec<usize>> = g.indices().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        for index in &all {
            let flat = g.flat_index(index);
            assert!(flat < 4);
        }
    }

    #[test]
    fn overflowing_shapes_are_rejected_with_an_actionable_error() {
        // The element-count product of these extents exceeds usize::MAX on
        // every supported platform.
        let huge = 1usize << 40;
        let err =
            Grid::try_zeros(&["i", "j", "k"], &[huge, huge, huge], DataType::Float32).unwrap_err();
        assert!(err.contains("overflows"), "unexpected message: {err}");
        assert!(
            err.contains("1099511627776"),
            "message names the shape: {err}"
        );
        // The byte size of the f64 backing store is guarded too: an element
        // count that fits usize but whose 8x byte size does not is rejected.
        let err = Grid::try_zeros(
            &["i", "j"],
            &[1usize << 32, 1usize << 31],
            DataType::Float64,
        )
        .unwrap_err();
        assert!(err.contains("overflows"), "unexpected message: {err}");
        // A zero extent must not let arbitrarily large trailing dimensions
        // overflow the stride computation.
        assert!(Grid::try_zeros(&["i", "j", "k"], &[0, huge, huge], DataType::Float32).is_err());
        // Rank mismatches surface as errors on the fallible path.
        assert!(Grid::try_zeros(&["i"], &[2, 2], DataType::Float32).is_err());
        // Ordinary shapes are unaffected.
        let grid = Grid::try_zeros(&["i", "j"], &[3, 4], DataType::Float32).unwrap();
        assert_eq!(grid.len(), 12);
    }

    #[test]
    fn from_fn_and_comparisons() {
        let a = Grid::from_fn(&["i"], &[4], DataType::Float64, |ix| ix[0] as f64);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(a.approx_eq(&b, 1e-12));
        b.set(&[2], 2.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(!a.approx_eq(&b, 1e-3));
    }
}
