//! Tier-4 native execution glue: the process-wide JIT engine and the
//! per-program bridge from a compiled fuse plan to loaded stage functions.
//!
//! Ownership is split three ways:
//!
//! * `stencilflow-codegen` emits the C translation unit (from the typed,
//!   verified bytecode — see [`crate::fuse::FusePlan::jit_unit`], which
//!   runs the eligibility judgment and builds the [`JitUnit`] stored on
//!   every [`crate::CompiledProgram`]);
//! * `stencilflow-jit` compiles and caches it (system `cc`, disk-backed
//!   code cache keyed by the program fingerprint plus a compiler salt) and
//!   quarantines the `dlopen` boundary;
//! * this module holds the lazily probed process-wide engine and resolves
//!   the per-stage sweep symbols an execution needs.
//!
//! The fallback ladder lives in the executor entry points
//! ([`crate::ReferenceExecutor::run_jit`]): statically ineligible programs
//! and machines without a working `cc` fall back to the fused tier
//! transparently; a *failing* compile or load of an eligible program is
//! surfaced as an error (it indicates an emitter bug, and hiding it would
//! mask codegen regressions from CI).

use crate::executor::CompiledProgram;
use std::sync::{Arc, OnceLock};
use stencilflow_jit::{CacheStats, JitConfig, JitEngine, StageFn};

/// The emitted translation unit for one compiled program, plus the symbol
/// each fused stage exports. Built once per [`CompiledProgram`]; compiling
/// and loading happen lazily on the first JIT run.
#[derive(Debug)]
pub(crate) struct JitUnit {
    /// The complete C source (one `sf_stage_{i}` function per live stage).
    pub source: String,
    /// Symbol per fuse-plan stage index (`None` for dead stages).
    pub symbols: Vec<Option<String>>,
}

/// The process-wide engine, probed once: `Ok` holds the engine, `Err` the
/// human-readable reason native execution is unavailable on this machine
/// (typically: no system `cc`).
fn engine() -> Result<Arc<JitEngine>, String> {
    static ENGINE: OnceLock<Result<Arc<JitEngine>, String>> = OnceLock::new();
    ENGINE
        .get_or_init(|| JitEngine::new(JitConfig::from_env()).map(Arc::new))
        .clone()
}

/// Whether native execution can run at all on this machine; `Err` carries
/// the probe failure (the `run_jit` entry points fall back to the fused
/// tier in that case, and `verify.sh` refuses to skip it on CI).
pub fn jit_available() -> Result<(), String> {
    engine().map(|_| ())
}

/// Cache counters of the process-wide engine (`None` before the first
/// probe attempt or when the engine failed to initialize).
pub fn jit_cache_stats() -> Option<CacheStats> {
    engine().ok().map(|e| e.stats())
}

/// The engine's compiler salt (compiler identity + flags), or `None` when
/// native execution is unavailable. Folded into the build fingerprint
/// that keys persisted tier decisions: a different compiler can rank the
/// JIT tier differently, so its decisions must not survive the swap.
pub(crate) fn jit_salt() -> Option<String> {
    engine().ok().map(|e| e.salt().to_string())
}

/// Resolve the loaded stage functions for a compiled program.
///
/// * `Ok(Some(fns))` — the program is statically eligible and the module
///   is loaded; `fns` is indexed by fuse-plan stage (dead stages `None`).
/// * `Ok(None)` — ineligible, or no working compiler: fall back.
/// * `Err` — eligible but the emitted unit failed to compile, load, or
///   resolve: an emitter bug to surface, not to swallow.
pub(crate) fn stage_fns(
    compiled: &CompiledProgram,
) -> Result<Option<Vec<Option<StageFn>>>, String> {
    let Ok(unit) = compiled.jit_unit() else {
        return Ok(None);
    };
    let Ok(engine) = engine() else {
        return Ok(None);
    };
    let module = engine.load(&compiled.fingerprint_hex(), &unit.source)?;
    let mut fns = Vec::with_capacity(unit.symbols.len());
    for symbol in &unit.symbols {
        fns.push(match symbol {
            Some(name) => Some(engine.stage_fn(&module, name)?),
            None => None,
        });
    }
    Ok(Some(fns))
}
