//! Tier-3½: the fault-tolerant sharded halo-exchange runtime.
//!
//! The paper maps one stencil DAG across a chain of devices; this module is
//! the reproduction's data-parallel analogue on one host: the iteration
//! space is split along the outermost dimension into contiguous slabs
//! ([`stencilflow_core::SlabPartition`]), each slab is driven by a worker
//! thread through the existing fused/lane tier, and neighbors exchange halo
//! slabs between temporal windows over the shared `Fifo` channel layer
//! ([`stencilflow_core::channel`], the same type the cycle simulator wires
//! between stencil units).
//!
//! # Bit-identity under sharding
//!
//! Each shard runs a **slab program**: the original program replayed through
//! [`StencilProgramBuilder`] with the outermost extent replaced by the
//! slab's row count. A slab is the shard's owned interior dilated by
//! `R × W` extra rows per artificial edge, where `R` is the cumulative
//! outermost-dimension halo radius of the DAG per time step and `W` the
//! number of steps per window. Values computed at an artificial edge see
//! the wrong boundary condition, but that contamination moves inward at
//! most `R` rows per step — after `W` steps the owned interior is untouched
//! and therefore **bitwise identical** to the single-domain run (the real
//! global edges are kept by the first and last shard, so boundary handling
//! and shrink masks coincide there too). Between windows each shard keeps
//! only its interior, receives the `R × W` rows adjoining it from its
//! neighbors' interiors, and feeds the reassembled slab into the next
//! window. Faults can therefore delay or degrade a run, but never change
//! its bits: every recovery path re-derives the same interior rows.
//!
//! # Fault model
//!
//! A seed-driven [`FaultPlan`] is threaded through the channel layer: halo
//! frames can be dropped, delayed, duplicated, or corrupted (payload bit
//! flip), and a worker can be stalled or panicked at a chosen window. Every
//! data frame carries a per-link sequence number and an FNV checksum over
//! the payload bits; receivers discard stale duplicates, detect corruption,
//! and re-request frames over a reverse control channel with exponential
//! backoff under a bounded retry budget. Injected faults hit only the first
//! transmission of a frame, so one resend always recovers — recovery within
//! the budget is deterministic. A progress watchdog on the supervisor
//! detects global stalls, names the starved edge, and cross-checks the
//! fig04-style minimum-depth rule (a link must hold at least one whole
//! frame) against the live configuration. Anything unrecoverable — retry
//! budget exhausted, a dead worker, a watchdog trip — poisons the runtime
//! and the supervisor **degrades** to the single-shard fused tier, which is
//! bitwise identical by construction.

use crate::executor::{CompiledProgram, ExecutionResult, ReferenceExecutor};
use crate::grid::Grid;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use stencilflow_core::channel::Fifo;
use stencilflow_core::shardlink::{
    halo_radius, minimum_link_depth_words, FRAME_HEADER_WORDS as HEADER_WORDS,
};
use stencilflow_core::SlabPartition;
use stencilflow_program::{ProgramError, Result, StencilProgram, StencilProgramBuilder};

/// Injected fault schedule for one sharded run, decided deterministically
/// from the seed: the same plan over the same program and shard count
/// replays the same faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all per-frame fault decisions.
    pub seed: u64,
    /// Per-mille probability that a data frame's first transmission is
    /// dropped.
    pub drop_per_mille: u16,
    /// Per-mille probability that a data frame's first transmission is
    /// delayed by [`FaultPlan::delay`].
    pub delay_per_mille: u16,
    /// Per-mille probability that a data frame is enqueued twice.
    pub duplicate_per_mille: u16,
    /// Per-mille probability that a data frame's first transmission has one
    /// payload bit flipped.
    pub corrupt_per_mille: u16,
    /// Sender-side delay applied by the delay fault.
    pub delay: Duration,
    /// Panic worker `.0` at the start of window `.1`.
    pub panic_worker: Option<(usize, usize)>,
    /// Stall worker `.0` at the start of window `.1` for duration `.2`.
    pub stall_worker: Option<(usize, usize, Duration)>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_per_mille: 0,
            delay_per_mille: 0,
            duplicate_per_mille: 0,
            corrupt_per_mille: 0,
            delay: Duration::from_millis(1),
            panic_worker: None,
            stall_worker: None,
        }
    }

    /// Drop roughly a third of first transmissions.
    pub fn dropped_halo(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 350,
            ..FaultPlan::none()
        }
    }

    /// Delay roughly half of the transmissions by a millisecond.
    pub fn delayed_halo(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_per_mille: 500,
            ..FaultPlan::none()
        }
    }

    /// Duplicate roughly half of the frames.
    pub fn duplicated_halo(seed: u64) -> Self {
        FaultPlan {
            seed,
            duplicate_per_mille: 500,
            ..FaultPlan::none()
        }
    }

    /// Flip a payload bit in roughly a third of first transmissions.
    pub fn corrupted_halo(seed: u64) -> Self {
        FaultPlan {
            seed,
            corrupt_per_mille: 350,
            ..FaultPlan::none()
        }
    }

    /// Panic the given worker at the start of the given window (always
    /// unrecoverable: the run degrades to the single-shard tier).
    pub fn worker_panic(shard: usize, window: usize) -> Self {
        FaultPlan {
            panic_worker: Some((shard, window)),
            ..FaultPlan::none()
        }
    }

    /// Stall the given worker at the start of the given window. Stalls
    /// shorter than the watchdog bound recover; longer ones trip it.
    pub fn worker_stall(shard: usize, window: usize, stall: Duration) -> Self {
        FaultPlan {
            stall_worker: Some((shard, window, stall)),
            ..FaultPlan::none()
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.drop_per_mille == 0
            && self.delay_per_mille == 0
            && self.duplicate_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.panic_worker.is_none()
            && self.stall_worker.is_none()
    }

    /// Deterministic fault decision for transmission `seq` on link
    /// `link_salt`.
    fn roll(&self, link_salt: u64, seq: u64) -> InjectedFault {
        let x = splitmix(
            self.seed
                ^ link_salt.wrapping_mul(0x9e3779b97f4a7c15)
                ^ seq.wrapping_mul(0xff51afd7ed558ccd),
        );
        let r = (x % 1000) as u16;
        let mut edge = self.drop_per_mille;
        if r < edge {
            return InjectedFault::Drop;
        }
        edge += self.corrupt_per_mille;
        if r < edge {
            return InjectedFault::Corrupt;
        }
        edge += self.duplicate_per_mille;
        if r < edge {
            return InjectedFault::Duplicate;
        }
        edge += self.delay_per_mille;
        if r < edge {
            return InjectedFault::Delay;
        }
        InjectedFault::None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectedFault {
    None,
    Drop,
    Delay,
    Duplicate,
    Corrupt,
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Configuration of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Requested number of worker shards (reduced automatically when the
    /// domain cannot give every shard its halo-dilation floor).
    pub shards: usize,
    /// Fault schedule to inject.
    pub fault_plan: FaultPlan,
    /// Maximum resend requests per missing frame before the shard gives up
    /// and the run degrades.
    pub retry_budget: u32,
    /// First retry deadline; doubles per attempt (exponential backoff).
    pub backoff: Duration,
    /// Progress watchdog bound: if nothing moves globally for this long,
    /// the supervisor reports the starved edge and degrades.
    pub watchdog: Duration,
    /// Halo link capacity override in words. `None` sizes links from the
    /// fig04-style minimum (one whole frame) with headroom; tests pass a
    /// small value to induce the deadlock the watchdog must catch.
    pub link_capacity_words: Option<usize>,
    /// Steps per exchange window override. `None` picks
    /// `min(fusion window, steps)`, reduced to 1 when shards exceed the
    /// host's parallelism (smaller windows mean less redundant dilation
    /// compute, which dominates when shards time-slice cores).
    pub window: Option<usize>,
}

impl ShardConfig {
    /// Default configuration for `shards` workers with no faults.
    pub fn shards(shards: usize) -> Self {
        ShardConfig {
            shards,
            fault_plan: FaultPlan::none(),
            retry_budget: 8,
            backoff: Duration::from_millis(4),
            watchdog: Duration::from_millis(1000),
            link_capacity_words: None,
            window: None,
        }
    }

    /// Attach a fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the progress watchdog bound.
    pub fn with_watchdog(mut self, bound: Duration) -> Self {
        self.watchdog = bound;
        self
    }

    /// Override the halo link capacity in words.
    pub fn with_link_capacity_words(mut self, words: usize) -> Self {
        self.link_capacity_words = Some(words);
        self
    }

    /// Override the exchange window (steps between halo exchanges).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = Some(window.max(1));
        self
    }
}

/// Per-shard execution statistics.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Owned interior rows.
    pub rows: usize,
    /// Cells evaluated by this shard (dilation recompute included).
    pub cells_evaluated: usize,
    /// Data frames sent (first transmissions).
    pub frames_sent: usize,
    /// Halo payload words sent, resends included.
    pub words_sent: usize,
    /// Data frames accepted.
    pub frames_received: usize,
    /// Resend requests this shard issued (timeouts and corruption).
    pub nacks_sent: usize,
    /// Frames this shard resent on request.
    pub frames_resent: usize,
    /// Stale or duplicate frames discarded.
    pub stale_discarded: usize,
    /// Frames rejected by the checksum.
    pub corrupt_detected: usize,
    /// Faults the plan injected on this shard's sends.
    pub faults_injected: usize,
    /// Wall-clock spent computing windows.
    pub compute: Duration,
    /// Wall-clock spent in halo exchange (waiting included).
    pub exchange: Duration,
}

/// What the progress watchdog saw when it tripped (or when a sender
/// detected an undersized link outright).
#[derive(Debug, Clone)]
pub struct WatchdogReport {
    /// The channel whose starvation blocks progress.
    pub starved_edge: String,
    /// Exchange window in which the stall happened.
    pub window: usize,
    /// Configured link capacity in words.
    pub configured_capacity_words: usize,
    /// Minimum capacity the fig04-style rule requires: one whole frame.
    pub required_frame_words: usize,
    /// Whether the static analysis agrees with the live observation (a
    /// configured capacity below the required minimum can never drain).
    pub analysis_agrees: bool,
    /// Status of every worker at detection time.
    pub worker_status: Vec<String>,
}

/// Outcome report of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Effective number of shards (after domain-driven reduction).
    pub shards: usize,
    /// Steps per exchange window.
    pub window: usize,
    /// Halo dilation rows per artificial edge (`R × W`).
    pub halo_rows: usize,
    /// Cumulative per-step halo radius `R` of the DAG.
    pub radius: usize,
    /// Host hardware parallelism observed at run time.
    pub host_threads: usize,
    /// Whether the run fell back to the single-shard fused tier.
    pub degraded: bool,
    /// Why the run degraded, when it did.
    pub degrade_reason: Option<String>,
    /// Watchdog findings, when a stall was detected.
    pub watchdog: Option<WatchdogReport>,
    /// Per-shard statistics (empty when planning degenerated to one shard
    /// before workers launched).
    pub per_shard: Vec<ShardStats>,
    /// Chronological fault/recovery log.
    pub fault_log: Vec<String>,
    /// Total wall-clock of the sharded phase.
    pub elapsed: Duration,
}

impl ShardReport {
    /// Total halo payload bytes sent across all shards (8-byte words).
    pub fn halo_bytes_sent(&self) -> usize {
        self.per_shard.iter().map(|s| s.words_sent * 8).sum()
    }
}

/// A sharded execution result: the assembled grids plus the robustness
/// report.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// Program outputs (and their validity masks), bitwise identical to the
    /// single-domain interpreter.
    pub result: ExecutionResult,
    /// What happened along the way.
    pub report: ShardReport,
}

// ---------------------------------------------------------------------------
// Halo frames over the shared Fifo channel layer.
// ---------------------------------------------------------------------------

/// Sentinel first word of every frame (compared bit-exactly).
const MAGIC: u64 = 0x5374656e63696c46; // "StencilF"

fn fnv_checksum(words: &[f64]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for w in words {
        for b in w.to_bits().to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

fn encode_frame(seq: u64, window: usize, field: usize, payload: &[f64]) -> Vec<f64> {
    let mut words = Vec::with_capacity(HEADER_WORDS + payload.len());
    words.push(f64::from_bits(MAGIC));
    words.push(seq as f64);
    words.push(window as f64);
    words.push(field as f64);
    words.push(payload.len() as f64);
    words.push(f64::from_bits(fnv_checksum(payload)));
    words.extend_from_slice(payload);
    words
}

#[derive(Debug)]
struct Frame {
    seq: u64,
    window: usize,
    field: usize,
    payload: Vec<f64>,
    checksum_ok: bool,
}

/// One direction of a halo channel: a `Fifo` behind a mutex, with frames
/// pushed and popped atomically so the queue always holds whole frames.
struct HaloLink {
    name: String,
    capacity: usize,
    fifo: Mutex<Fifo>,
}

impl HaloLink {
    fn new(name: String, capacity: usize) -> Self {
        HaloLink {
            capacity,
            fifo: Mutex::new(Fifo::new(&name, capacity)),
            name,
        }
    }

    /// Push a whole frame if it fits; `false` means back-pressure.
    fn try_push_frame(&self, words: &[f64]) -> bool {
        let mut fifo = self.fifo.lock().expect("halo link poisoned");
        if !fifo.can_push_n(words.len()) {
            return false;
        }
        for &w in words {
            fifo.push(0, w)
                .expect("frame space reserved by the can_push_n check above");
        }
        true
    }

    /// Pop one whole frame if any is queued.
    fn try_pop_frame(&self) -> Option<Frame> {
        let mut fifo = self.fifo.lock().expect("halo link poisoned");
        if fifo.is_empty() {
            return None;
        }
        // Frames are pushed atomically under the same lock, so a non-empty
        // queue starts with a complete frame.
        let mut header = [0f64; HEADER_WORDS];
        for slot in header.iter_mut() {
            *slot = fifo.pop(0).expect("whole frames are always queued");
        }
        debug_assert_eq!(header[0].to_bits(), MAGIC, "halo frame lost sync");
        let len = header[4] as usize;
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            payload.push(fifo.pop(0).expect("whole frames are always queued"));
        }
        let checksum_ok = fnv_checksum(&payload) == header[5].to_bits();
        Some(Frame {
            seq: header[1] as u64,
            window: header[2] as usize,
            field: header[3] as usize,
            payload,
            checksum_ok,
        })
    }
}

/// The four channels across one shard boundary `b | b+1`: halo data in both
/// directions plus a reverse control (resend request) channel per data
/// direction. Control channels are assumed reliable; the fault plan only
/// touches data frames.
struct BoundaryLinks {
    /// Halo data, shard `b` → `b+1`.
    data_up: HaloLink,
    /// Halo data, shard `b+1` → `b`.
    data_down: HaloLink,
    /// Resend requests for `data_up`, shard `b+1` → `b`.
    nack_up: HaloLink,
    /// Resend requests for `data_down`, shard `b` → `b+1`.
    nack_down: HaloLink,
}

// ---------------------------------------------------------------------------
// Shared supervisor state.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum WorkerStatus {
    Idle,
    Computing {
        window: usize,
    },
    SendBlocked {
        edge: String,
        window: usize,
        needed: usize,
        capacity: usize,
    },
    Waiting {
        edge: String,
        window: usize,
        field: usize,
    },
    Draining,
    Done,
    Failed {
        reason: String,
    },
}

impl WorkerStatus {
    fn describe(&self, shard: usize) -> String {
        match self {
            WorkerStatus::Idle => format!("shard {shard}: idle"),
            WorkerStatus::Computing { window } => {
                format!("shard {shard}: computing window {window}")
            }
            WorkerStatus::SendBlocked {
                edge,
                window,
                needed,
                capacity,
            } => format!(
                "shard {shard}: blocked sending {needed} words on `{edge}` \
                 (capacity {capacity}) in window {window}"
            ),
            WorkerStatus::Waiting {
                edge,
                window,
                field,
            } => format!("shard {shard}: waiting on `{edge}` for field {field} in window {window}"),
            WorkerStatus::Draining => format!("shard {shard}: draining resend requests"),
            WorkerStatus::Done => format!("shard {shard}: done"),
            WorkerStatus::Failed { reason } => format!("shard {shard}: failed ({reason})"),
        }
    }
}

struct Shared {
    poison: AtomicBool,
    poison_reason: Mutex<Option<String>>,
    progress: AtomicU64,
    /// Workers whose final-window compute has finished (once all have, no
    /// one can still need a resend and drains may exit).
    computed: AtomicUsize,
    /// Workers whose thread has returned.
    done: AtomicUsize,
    status: Vec<Mutex<WorkerStatus>>,
    fault_log: Mutex<Vec<String>>,
    watchdog: Mutex<Option<WatchdogReport>>,
    /// Workers signal here after bumping `done`, so the supervisor wakes
    /// immediately on completion instead of burning poll slices (which
    /// contend with the workers on small hosts).
    done_signal: (Mutex<()>, std::sync::Condvar),
}

impl Shared {
    fn new(shards: usize) -> Self {
        Shared {
            poison: AtomicBool::new(false),
            poison_reason: Mutex::new(None),
            progress: AtomicU64::new(0),
            computed: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            status: (0..shards)
                .map(|_| Mutex::new(WorkerStatus::Idle))
                .collect(),
            fault_log: Mutex::new(Vec::new()),
            watchdog: Mutex::new(None),
            done_signal: (Mutex::new(()), std::sync::Condvar::new()),
        }
    }

    /// Mark this worker's thread as finished and wake the supervisor.
    fn finish(&self) {
        self.done.fetch_add(1, Ordering::AcqRel);
        let (lock, cv) = &self.done_signal;
        drop(lock.lock().expect("done signal"));
        cv.notify_all();
    }

    fn poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire)
    }

    fn poison(&self, reason: String) {
        let mut slot = self.poison_reason.lock().expect("poison reason");
        if slot.is_none() {
            *slot = Some(reason);
        }
        drop(slot);
        self.poison.store(true, Ordering::Release);
    }

    fn bump(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    fn log(&self, entry: String) {
        self.fault_log.lock().expect("fault log").push(entry);
    }

    fn set_status(&self, shard: usize, status: WorkerStatus) {
        *self.status[shard].lock().expect("status slot") = status;
    }
}

// ---------------------------------------------------------------------------
// Slab geometry and slab programs.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SlabGeom {
    /// Owned interior rows (global coordinates).
    start: usize,
    end: usize,
    /// Slab rows including dilation (global coordinates).
    lo: usize,
    hi: usize,
}

impl SlabGeom {
    fn rows(&self) -> usize {
        self.end - self.start
    }
    fn slab_rows(&self) -> usize {
        self.hi - self.lo
    }
    /// Local row index of the first interior row.
    fn interior_offset(&self) -> usize {
        self.start - self.lo
    }
}

/// Replay the program through the builder with the outermost extent
/// replaced by `rows` — the same replay technique the JSON round-trip uses,
/// so every stencil, boundary condition, output type, and the vectorization
/// width carry over exactly.
fn build_slab_program(program: &StencilProgram, rows: usize) -> Result<StencilProgram> {
    let space = program.space();
    let mut shape = space.shape.clone();
    shape[0] = rows;
    let dims: Vec<&str> = space.dims.iter().map(String::as_str).collect();
    let mut builder = StencilProgramBuilder::new(program.name(), &shape).dims(&dims);
    for (name, decl) in program.inputs() {
        let field_dims: Vec<&str> = decl.dims.iter().map(String::as_str).collect();
        builder = builder.input(name, decl.data_type(), &field_dims);
    }
    for stencil in program.stencils() {
        builder = builder.stencil(&stencil.name, &stencil.code);
        for (field, condition) in &stencil.boundary.per_field {
            builder = builder.boundary(&stencil.name, field, *condition);
        }
        if stencil.boundary.shrink {
            builder = builder.shrink(&stencil.name);
        }
        builder = builder.output_type(&stencil.name, stencil.output_type);
    }
    for output in program.outputs() {
        builder = builder.output(output);
    }
    builder.vectorization(program.vectorization()).build()
}

/// Slice `grid` to rows `[lo, hi)` of the outermost iteration-space
/// dimension. Grids that do not span that dimension pass through whole.
fn slice_grid_rows(grid: &Grid, dim0: &str, lo: usize, hi: usize) -> Result<Grid> {
    let Some(pos) = grid.dims().iter().position(|d| d == dim0) else {
        return Ok(grid.clone());
    };
    if pos != 0 {
        return Err(ProgramError::Invalid {
            message: format!(
                "field dimension `{dim0}` is not outermost in {:?}; the \
                 sharded runtime partitions only the outermost dimension",
                grid.dims()
            ),
        });
    }
    let row_words: usize = grid.shape()[1..].iter().product::<usize>().max(1);
    let mut shape = grid.shape().to_vec();
    shape[0] = hi - lo;
    let dims: Vec<&str> = grid.dims().iter().map(String::as_str).collect();
    Ok(Grid::from_values_typed(
        &dims,
        &shape,
        grid.data_type(),
        &grid.as_slice()[lo * row_words..hi * row_words],
    ))
}

// ---------------------------------------------------------------------------
// The runtime.
// ---------------------------------------------------------------------------

struct Plan {
    shards: usize,
    window: usize,
    windows: usize,
    /// Total time steps of the run (1 in single-application mode).
    total_steps: usize,
    radius: usize,
    halo_rows: usize,
    row_words: usize,
    geoms: Vec<SlabGeom>,
    /// Feedback pairs `(output field, input field)`; empty in single-window
    /// single-application mode.
    pairs: Vec<(String, String)>,
    /// Data frame payload words (one halo slab).
    payload_words: usize,
    link_capacity: usize,
}

fn plan_run(
    exec: &ReferenceExecutor,
    program: &StencilProgram,
    steps: usize,
    steps_mode: bool,
    config: &ShardConfig,
) -> Result<Plan> {
    if config.shards == 0 {
        return Err(ProgramError::Invalid {
            message: "sharded execution requires at least one shard".into(),
        });
    }
    let space = program.space();
    let extent = space.shape[0];
    let row_words: usize = space.shape[1..].iter().product::<usize>().max(1);
    let radius = halo_radius(program)?;
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut shards = config.shards.min(extent).max(1);
    let mut window = config
        .window
        .unwrap_or_else(|| {
            if shards > host {
                1
            } else {
                exec.fusion_window()
            }
        })
        .clamp(1, steps.max(1));
    // Shrink the window (then the shard count) until every shard can own at
    // least its dilation depth, so halos always come from interior rows.
    let slabs = loop {
        let min_rows = (radius * window).max(1);
        match SlabPartition::split(extent, shards, min_rows) {
            Ok(slabs) => break slabs,
            Err(_) if window > 1 => window -= 1,
            Err(_) if shards > 1 => shards -= 1,
            Err(e) => {
                return Err(ProgramError::Invalid {
                    message: format!("cannot shard `{}`: {e}", program.name()),
                })
            }
        }
    };
    // A single shard exchanges no halos, so there is no reason to cut the
    // run into windows: one fused call over all steps keeps the zero-fault
    // overhead down to slicing, one thread spawn, and reassembly. Explicit
    // window overrides are honored (tests pin them).
    if shards == 1 && config.window.is_none() {
        window = steps.max(1);
    }

    let halo_rows = radius * window;
    let geoms: Vec<SlabGeom> = slabs
        .ranges
        .iter()
        .map(|r| SlabGeom {
            start: r.start,
            end: r.end,
            lo: r.start.saturating_sub(halo_rows),
            hi: (r.end + halo_rows).min(extent),
        })
        .collect();

    let pairs = if steps_mode {
        exec.prepare(program)?.feedback_pairs()?
    } else {
        Vec::new()
    };

    let payload_words = halo_rows * row_words;
    // Default capacity: room for every feedback field's frame in both the
    // original and a duplicated transmission, so two neighbors pushing at
    // each other before either drains can never mutually block.
    let link_capacity = config
        .link_capacity_words
        .unwrap_or_else(|| 4 * pairs.len().max(1) * minimum_link_depth_words(payload_words));
    Ok(Plan {
        shards,
        window,
        windows: steps.max(1).div_ceil(window),
        total_steps: steps.max(1),
        radius,
        halo_rows,
        row_words,
        geoms,
        pairs,
        payload_words,
        link_capacity,
    })
}

/// Entry point shared by [`ReferenceExecutor::run_sharded`] and
/// [`ReferenceExecutor::run_steps_sharded`].
pub(crate) fn run_sharded(
    exec: &ReferenceExecutor,
    program: &StencilProgram,
    inputs: &BTreeMap<String, Grid>,
    steps: usize,
    steps_mode: bool,
    config: &ShardConfig,
) -> Result<ShardedOutcome> {
    if steps_mode && steps == 0 {
        return Err(ProgramError::Invalid {
            message: "run_steps requires at least one time step".into(),
        });
    }
    let started = Instant::now();
    let plan = plan_run(exec, program, steps, steps_mode, config)?;
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let global = exec.prepare(program)?;

    let space = program.space();
    // Compile every distinct slab height once up front (the worker
    // executors receive the compiled programs and never touch the cache).
    // A slab covering the whole outer extent — the single-shard case — is
    // the original program, so reuse its compilation instead of replaying
    // the builder.
    let mut slab_programs: BTreeMap<usize, std::sync::Arc<CompiledProgram>> = BTreeMap::new();
    for geom in &plan.geoms {
        if let std::collections::btree_map::Entry::Vacant(entry) =
            slab_programs.entry(geom.slab_rows())
        {
            if geom.slab_rows() == space.shape[0] {
                entry.insert(std::sync::Arc::clone(&global));
            } else {
                let slab = build_slab_program(program, geom.slab_rows())?;
                entry.insert(exec.prepare(&slab)?);
            }
        }
    }

    let dim0 = space.dims[0].clone();
    // Per-shard initial inputs: every grid sliced to the shard's slab.
    let mut shard_inputs: Vec<BTreeMap<String, Grid>> = Vec::with_capacity(plan.shards);
    for geom in &plan.geoms {
        let mut sliced = BTreeMap::new();
        for (name, grid) in inputs {
            sliced.insert(
                name.clone(),
                slice_grid_rows(grid, &dim0, geom.lo, geom.hi)?,
            );
        }
        shard_inputs.push(sliced);
    }

    let shared = Shared::new(plan.shards);
    let links: Vec<BoundaryLinks> = (0..plan.shards.saturating_sub(1))
        .map(|b| BoundaryLinks {
            data_up: HaloLink::new(format!("halo[{b}->{}]", b + 1), plan.link_capacity),
            data_down: HaloLink::new(format!("halo[{}->{b}]", b + 1), plan.link_capacity),
            nack_up: HaloLink::new(format!("nack[{}->{b}]", b + 1), 64 * HEADER_WORDS),
            nack_down: HaloLink::new(format!("nack[{b}->{}]", b + 1), 64 * HEADER_WORDS),
        })
        .collect();

    let outcomes: Vec<std::result::Result<WorkerOutput, String>> = {
        let shared = &shared;
        let links = &links;
        let plan_ref = &plan;
        let slab_programs = &slab_programs;
        let config_ref = config;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(plan_ref.shards);
            for (shard, initial) in shard_inputs.drain(..).enumerate() {
                let geom = plan_ref.geoms[shard];
                let compiled = std::sync::Arc::clone(&slab_programs[&geom.slab_rows()]);
                let worker_exec = exec.clone().with_max_threads(1);
                handles.push(scope.spawn(move || {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        worker_run(
                            WorkerSpec {
                                shard,
                                geom,
                                plan: plan_ref,
                                links,
                                shared,
                                config: config_ref,
                                steps_mode,
                            },
                            compiled,
                            worker_exec,
                            initial,
                        )
                    }));
                    let outcome = match run {
                        Ok(result) => result,
                        Err(panic) => {
                            let reason = panic
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "worker panicked".to_string());
                            Err(format!("shard {shard} panicked: {reason}"))
                        }
                    };
                    if let Err(reason) = &outcome {
                        shared.set_status(
                            shard,
                            WorkerStatus::Failed {
                                reason: reason.clone(),
                            },
                        );
                        shared.poison(reason.clone());
                        shared.log(format!("shard {shard}: failed: {reason}"));
                    }
                    shared.finish();
                    outcome
                }));
            }

            // Supervisor: progress watchdog. Trips when nothing moves
            // globally for the configured bound and names the starved
            // edge. Sleeps on the completion condvar between checks, so
            // finishing workers wake it immediately and the zero-fault
            // overhead of short runs stays free of poll latency.
            let mut last_progress = shared.progress.load(Ordering::Relaxed);
            let mut last_change = Instant::now();
            {
                let (lock, cv) = &shared.done_signal;
                let mut guard = lock.lock().expect("done signal");
                while shared.done.load(Ordering::Acquire) < plan_ref.shards {
                    let (g, _) = cv
                        .wait_timeout(guard, Duration::from_millis(2))
                        .expect("done signal");
                    guard = g;
                    let progress = shared.progress.load(Ordering::Relaxed);
                    if progress != last_progress {
                        last_progress = progress;
                        last_change = Instant::now();
                        continue;
                    }
                    if shared.poisoned() {
                        continue; // workers are already unwinding
                    }
                    if last_change.elapsed() > config_ref.watchdog {
                        let report = watchdog_report(shared, plan_ref);
                        shared.log(format!(
                            "watchdog: no progress for {:?}; starved edge `{}`",
                            config_ref.watchdog, report.starved_edge
                        ));
                        *shared.watchdog.lock().expect("watchdog slot") = Some(report);
                        shared.poison("progress watchdog tripped".to_string());
                    }
                }
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker outcome"))
                .collect()
        })
    };

    let mut per_shard = Vec::new();
    let mut worker_fields: Vec<Option<WorkerOutput>> = Vec::new();
    let mut failure: Option<String> = None;
    for outcome in outcomes {
        match outcome {
            Ok(output) => {
                per_shard.push(output.stats.clone());
                worker_fields.push(Some(output));
            }
            Err(reason) => {
                if failure.is_none() {
                    failure = Some(reason);
                }
                worker_fields.push(None);
            }
        }
    }
    let watchdog = shared.watchdog.lock().expect("watchdog slot").clone();
    if watchdog.is_some() && failure.is_none() {
        failure = Some("progress watchdog tripped".to_string());
    }

    let mut report = ShardReport {
        shards: plan.shards,
        window: plan.window,
        halo_rows: plan.halo_rows,
        radius: plan.radius,
        host_threads: host,
        degraded: false,
        degrade_reason: None,
        watchdog,
        per_shard,
        fault_log: shared.fault_log.lock().expect("fault log").clone(),
        elapsed: started.elapsed(),
    };

    if let Some(reason) = failure {
        // Graceful degradation: one bit-identical single-shard fused run.
        report.degraded = true;
        report.degrade_reason = Some(reason.clone());
        report
            .fault_log
            .push(format!("degraded to the single-shard fused tier: {reason}"));
        let result = if steps_mode {
            exec.run_steps_fused_compiled(&global, inputs, steps)?
        } else {
            exec.run_fused_compiled(&global, inputs)?
        };
        report.elapsed = started.elapsed();
        return Ok(ShardedOutcome { result, report });
    }

    // Assemble the global outputs from each shard's interior rows.
    let dim_refs: Vec<&str> = space.dims.iter().map(String::as_str).collect();
    let mut fields: BTreeMap<String, Grid> = BTreeMap::new();
    let mut masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
    let mut cells = 0usize;
    for output in program.outputs() {
        let dtype = worker_fields
            .first()
            .and_then(|w| w.as_ref())
            .and_then(|w| w.fields.get(output))
            .map(|g| g.data_type())
            .ok_or_else(|| ProgramError::Invalid {
                message: format!("shard 0 produced no output `{output}`"),
            })?;
        let mut grid = Grid::zeros(&dim_refs, &space.shape, dtype);
        let mut mask = vec![true; space.num_cells()];
        for (shard, slot) in worker_fields.iter().enumerate() {
            let worker = slot.as_ref().expect("non-degraded runs keep every worker");
            let geom = plan.geoms[shard];
            let slab_grid = worker.fields.get(output).expect("outputs are uniform");
            let slab_mask = worker.masks.get(output).expect("outputs carry masks");
            let src_lo = geom.interior_offset() * plan.row_words;
            let src_hi = src_lo + geom.rows() * plan.row_words;
            let dst_lo = geom.start * plan.row_words;
            grid.as_mut_slice()[dst_lo..dst_lo + (src_hi - src_lo)]
                .copy_from_slice(&slab_grid.as_slice()[src_lo..src_hi]);
            mask[dst_lo..dst_lo + (src_hi - src_lo)].copy_from_slice(&slab_mask[src_lo..src_hi]);
        }
        fields.insert(output.clone(), grid);
        masks.insert(output.clone(), mask);
    }
    for slot in &worker_fields {
        cells += slot.as_ref().map(|w| w.stats.cells_evaluated).unwrap_or(0);
    }

    Ok(ShardedOutcome {
        result: ExecutionResult::from_parts(fields, masks, cells),
        report,
    })
}

struct WorkerOutput {
    fields: BTreeMap<String, Grid>,
    masks: BTreeMap<String, Vec<bool>>,
    stats: ShardStats,
}

/// Receiver-side state of one inbound data link.
#[derive(Default)]
struct RecvState {
    last_seq: u64,
    /// Frames accepted ahead of time, keyed by `(window, field)`. A sender
    /// can run at most one window ahead, so this stays tiny.
    pending: BTreeMap<(usize, usize), Vec<f64>>,
}

/// Everything a worker thread needs that outlives one window: identity,
/// geometry, and the shared runtime environment. One bundle instead of the
/// seven loose parameters `worker_run` used to take.
struct WorkerSpec<'a> {
    shard: usize,
    geom: SlabGeom,
    plan: &'a Plan,
    links: &'a [BoundaryLinks],
    shared: &'a Shared,
    config: &'a ShardConfig,
    steps_mode: bool,
}

/// Halo-protocol state of one worker: identity and links plus the mutable
/// sequence counters, retained payloads, and receive buffers the exchange
/// used to thread through every call as loose `&mut` parameters (each of
/// the former free functions needed `#[allow(clippy::too_many_arguments)]`;
/// as methods they take at most three).
struct Comms<'a> {
    shard: usize,
    plan: &'a Plan,
    links: &'a [BoundaryLinks],
    shared: &'a Shared,
    stats: ShardStats,
    /// Sequence counters start at 1 so `last_seq == 0` means "nothing
    /// received yet".
    seq_up: u64,
    seq_down: u64,
    /// Retained clean payloads per outbound direction, keyed by
    /// `(window, field)`. A sender runs at most one window ahead of either
    /// neighbor, so retaining the last two windows always covers every
    /// resend request that can still arrive.
    retained_up: BTreeMap<(usize, usize), Vec<f64>>,
    retained_down: BTreeMap<(usize, usize), Vec<f64>>,
    /// Inbound state: `recv_low` from shard-1 via `data_up[shard-1]`,
    /// `recv_high` from shard+1 via `data_down[shard]`.
    recv_low: RecvState,
    recv_high: RecvState,
}

impl<'a> Comms<'a> {
    fn new(
        shard: usize,
        geom: SlabGeom,
        plan: &'a Plan,
        links: &'a [BoundaryLinks],
        shared: &'a Shared,
    ) -> Self {
        Comms {
            shard,
            plan,
            links,
            shared,
            stats: ShardStats {
                shard,
                rows: geom.rows(),
                ..ShardStats::default()
            },
            seq_up: 1,
            seq_down: 1,
            retained_up: BTreeMap::new(),
            retained_down: BTreeMap::new(),
            recv_low: RecvState::default(),
            recv_high: RecvState::default(),
        }
    }

    /// Send one halo frame (`up` = toward shard+1), applying the fault
    /// plan to the first transmission.
    fn send_halo(
        &mut self,
        window: usize,
        field: usize,
        payload: Vec<f64>,
        up: bool,
        faults: &FaultPlan,
    ) -> std::result::Result<(), String> {
        let shard = self.shard;
        let links = self.links;
        let shared = self.shared;
        let (link, salt, seq, retained) = if up {
            (
                &links[shard].data_up,
                link_salt(shard, true),
                &mut self.seq_up,
                &mut self.retained_up,
            )
        } else {
            (
                &links[shard - 1].data_down,
                link_salt(shard, false),
                &mut self.seq_down,
                &mut self.retained_down,
            )
        };
        let this_seq = *seq;
        *seq += 1;
        let fault = faults.roll(salt, this_seq);
        // Retain the clean payload for resends; drop windows no neighbor
        // can still request (senders run at most one window ahead).
        retained.insert((window, field), payload.clone());
        retained.retain(|&(w, _), _| w + 2 > window);
        self.stats.frames_sent += 1;
        match fault {
            InjectedFault::Drop => {
                self.stats.faults_injected += 1;
                shared.log(format!(
                    "shard {shard}: dropped frame seq {this_seq} (window {window}, field \
                     {field}) on `{}`",
                    link.name
                ));
                Ok(()) // the receiver's timeout + resend request recovers it
            }
            InjectedFault::Corrupt => {
                self.stats.faults_injected += 1;
                // Flip a payload bit *after* encoding, so the checksum in
                // the header still describes the clean payload and the
                // receiver can tell the frame was damaged in flight.
                let mut words = encode_frame(this_seq, window, field, &payload);
                let victim = HEADER_WORDS
                    + (splitmix(this_seq ^ faults.seed) as usize) % payload.len().max(1);
                words[victim] = f64::from_bits(words[victim].to_bits() ^ (1 << 17));
                shared.log(format!(
                    "shard {shard}: corrupted frame seq {this_seq} (window {window}, field \
                     {field}) on `{}`",
                    link.name
                ));
                push_frame(shard, window, link, &words, shared, &mut self.stats)
            }
            InjectedFault::Duplicate => {
                self.stats.faults_injected += 1;
                shared.log(format!(
                    "shard {shard}: duplicated frame seq {this_seq} (window {window}, field \
                     {field}) on `{}`",
                    link.name
                ));
                let frame = encode_frame(this_seq, window, field, &payload);
                push_frame(shard, window, link, &frame, shared, &mut self.stats)?;
                push_frame(shard, window, link, &frame, shared, &mut self.stats)
            }
            InjectedFault::Delay => {
                self.stats.faults_injected += 1;
                shared.log(format!(
                    "shard {shard}: delayed frame seq {this_seq} (window {window}, field \
                     {field}) on `{}` by {:?}",
                    link.name, faults.delay
                ));
                std::thread::sleep(faults.delay);
                push_frame(
                    shard,
                    window,
                    link,
                    &encode_frame(this_seq, window, field, &payload),
                    shared,
                    &mut self.stats,
                )
            }
            InjectedFault::None => push_frame(
                shard,
                window,
                link,
                &encode_frame(this_seq, window, field, &payload),
                shared,
                &mut self.stats,
            ),
        }
    }

    /// Serve resend requests arriving on this shard's inbound control
    /// links.
    fn service_nacks(&mut self) {
        let shard = self.shard;
        let links = self.links;
        let shared = self.shared;
        // Requests about our upward data frames come from shard+1.
        if shard + 1 < self.plan.shards {
            while let Some(request) = links[shard].nack_up.try_pop_frame() {
                if let Some(payload) = self.retained_up.get(&(request.window, request.field)) {
                    let seq = self.seq_up;
                    self.seq_up += 1;
                    let frame = encode_frame(seq, request.window, request.field, payload);
                    // Resends are never faulted: injected faults only hit
                    // first transmissions, which bounds recovery.
                    if links[shard].data_up.try_push_frame(&frame) {
                        self.stats.frames_resent += 1;
                        self.stats.words_sent += payload.len();
                        shared.bump();
                        shared.log(format!(
                            "shard {shard}: resent window {} field {} on `{}`",
                            request.window, request.field, links[shard].data_up.name
                        ));
                    }
                }
            }
        }
        // Requests about our downward data frames come from shard-1.
        if shard > 0 {
            while let Some(request) = links[shard - 1].nack_down.try_pop_frame() {
                if let Some(payload) = self.retained_down.get(&(request.window, request.field)) {
                    let seq = self.seq_down;
                    self.seq_down += 1;
                    let frame = encode_frame(seq, request.window, request.field, payload);
                    if links[shard - 1].data_down.try_push_frame(&frame) {
                        self.stats.frames_resent += 1;
                        self.stats.words_sent += payload.len();
                        shared.bump();
                        shared.log(format!(
                            "shard {shard}: resent window {} field {} on `{}`",
                            request.window,
                            request.field,
                            links[shard - 1].data_down.name
                        ));
                    }
                }
            }
        }
    }

    /// Drain one inbound data link into the receive state, validating
    /// frames and requesting resends of corrupt ones. `from_high` drains
    /// the link from shard+1, otherwise the one from shard-1.
    fn drain_data_link(&mut self, from_high: bool) {
        let shard = self.shard;
        let links = self.links;
        let shared = self.shared;
        let (link, nack_link, state) = if from_high {
            (
                &links[shard].data_down,
                &links[shard].nack_down,
                &mut self.recv_high,
            )
        } else {
            (
                &links[shard - 1].data_up,
                &links[shard - 1].nack_up,
                &mut self.recv_low,
            )
        };
        let stats = &mut self.stats;
        while let Some(frame) = link.try_pop_frame() {
            if !frame.checksum_ok {
                stats.corrupt_detected += 1;
                stats.nacks_sent += 1;
                shared.log(format!(
                    "shard {shard}: checksum mismatch on `{}` (window {}, field {}); \
                     requesting resend",
                    link.name, frame.window, frame.field
                ));
                let _ = nack_link.try_push_frame(&encode_frame(0, frame.window, frame.field, &[]));
                continue;
            }
            if frame.seq <= state.last_seq
                || state.pending.contains_key(&(frame.window, frame.field))
            {
                stats.stale_discarded += 1;
                shared.log(format!(
                    "shard {shard}: discarded stale/duplicate seq {} on `{}`",
                    frame.seq, link.name
                ));
                continue;
            }
            state.last_seq = frame.seq;
            stats.frames_received += 1;
            state
                .pending
                .insert((frame.window, frame.field), frame.payload);
            shared.bump();
        }
    }

    /// Wait (bounded, with exponential backoff and resend requests) for
    /// every halo this shard needs before the next window.
    fn collect_halos(
        &mut self,
        window: usize,
        config: &ShardConfig,
        halos: &mut BTreeMap<(bool, usize), Vec<f64>>,
    ) -> std::result::Result<(), String> {
        let shard = self.shard;
        let links = self.links;
        let shared = self.shared;
        // (from_high_neighbor, field) -> retry state.
        let mut spins = 0u32;
        let mut missing: BTreeMap<(bool, usize), (u32, Instant)> = BTreeMap::new();
        for field in 0..self.plan.pairs.len() {
            if shard > 0 {
                missing.insert((false, field), (0, Instant::now() + config.backoff));
            }
            if shard + 1 < self.plan.shards {
                missing.insert((true, field), (0, Instant::now() + config.backoff));
            }
        }

        while !missing.is_empty() {
            if shared.poisoned() {
                return Err(poison_reason(shared));
            }
            if shard > 0 {
                self.drain_data_link(false);
            }
            if shard + 1 < self.plan.shards {
                self.drain_data_link(true);
            }
            let (recv_low, recv_high) = (&mut self.recv_low, &mut self.recv_high);
            missing.retain(|&(from_high, field), _| {
                let state = if from_high {
                    &mut *recv_high
                } else {
                    &mut *recv_low
                };
                match state.pending.remove(&(window, field)) {
                    Some(payload) => {
                        halos.insert((from_high, field), payload);
                        false
                    }
                    None => true,
                }
            });
            if missing.is_empty() {
                break;
            }
            // While waiting, serve the neighbors' resend requests —
            // otherwise two shards waiting on each other's resends would
            // deadlock.
            self.service_nacks();
            let now = Instant::now();
            for (&(from_high, field), (attempts, deadline)) in missing.iter_mut() {
                if now < *deadline {
                    continue;
                }
                if *attempts >= config.retry_budget {
                    let edge = if from_high {
                        &links[shard].data_down.name
                    } else {
                        &links[shard - 1].data_up.name
                    };
                    return Err(format!(
                        "shard {shard}: retry budget ({}) exhausted waiting for window \
                         {window} field {field} on `{edge}`",
                        config.retry_budget
                    ));
                }
                let (nack_link, edge) = if from_high {
                    (&links[shard].nack_down, &links[shard].data_down.name)
                } else {
                    (&links[shard - 1].nack_up, &links[shard - 1].data_up.name)
                };
                self.stats.nacks_sent += 1;
                shared.log(format!(
                    "shard {shard}: window {window} field {field} overdue on `{edge}` \
                     (attempt {}); requesting resend",
                    *attempts + 1
                ));
                let _ = nack_link.try_push_frame(&encode_frame(0, window, field, &[]));
                *attempts += 1;
                *deadline = now + config.backoff * 2u32.saturating_pow(*attempts);
                shared.set_status(
                    shard,
                    WorkerStatus::Waiting {
                        edge: edge.clone(),
                        window,
                        field,
                    },
                );
            }
            relax(&mut spins);
        }
        Ok(())
    }

    /// After the final window: keep answering resend requests until every
    /// worker has finished computing (then nobody can still need us).
    fn drain_until_all_done(&mut self) {
        let mut spins = 0u32;
        while self.shared.computed.load(Ordering::Acquire) < self.plan.shards
            && !self.shared.poisoned()
        {
            self.service_nacks();
            relax(&mut spins);
        }
    }
}

fn worker_run(
    spec: WorkerSpec<'_>,
    compiled: std::sync::Arc<CompiledProgram>,
    worker_exec: ReferenceExecutor,
    mut work_inputs: BTreeMap<String, Grid>,
) -> std::result::Result<WorkerOutput, String> {
    let WorkerSpec {
        shard,
        geom,
        plan,
        links,
        shared,
        config,
        steps_mode,
    } = spec;
    let faults = &config.fault_plan;
    let mut comms = Comms::new(shard, geom, plan, links, shared);
    let mut steps_done = 0usize;

    for window in 0..plan.windows {
        if shared.poisoned() {
            return Err(poison_reason(shared));
        }
        if let Some((victim, at)) = faults.panic_worker {
            if victim == shard && at == window {
                shared.log(format!("shard {shard}: injected panic at window {window}"));
                panic!("injected fault: worker {shard} dies at window {window}");
            }
        }
        if let Some((victim, at, stall)) = faults.stall_worker {
            if victim == shard && at == window {
                shared.log(format!(
                    "shard {shard}: injected stall of {stall:?} at window {window}"
                ));
                // Sleep in short slices so poisoning (e.g. by the watchdog)
                // wakes the worker promptly.
                let until = Instant::now() + stall;
                while Instant::now() < until && !shared.poisoned() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                if shared.poisoned() {
                    return Err(poison_reason(shared));
                }
            }
        }

        let window_steps = if steps_mode {
            plan.window.min(plan.total_steps - steps_done)
        } else {
            1
        };
        shared.set_status(shard, WorkerStatus::Computing { window });
        let compute_started = Instant::now();
        let result = if steps_mode {
            worker_exec.run_steps_fused_compiled(&compiled, &work_inputs, window_steps)
        } else {
            worker_exec.run_fused_compiled(&compiled, &work_inputs)
        }
        .map_err(|e| format!("shard {shard} window {window}: {e}"))?;
        comms.stats.compute += compute_started.elapsed();
        comms.stats.cells_evaluated += result.cells_evaluated();
        steps_done += window_steps;
        shared.bump();

        if window + 1 == plan.windows {
            // Last window: surface the slab outputs, then keep serving
            // resend requests until every worker has finished computing —
            // a neighbor may still need our previous frames.
            shared.computed.fetch_add(1, Ordering::AcqRel);
            let (fields, masks, _) = result.into_parts();
            shared.set_status(shard, WorkerStatus::Draining);
            let exchange_started = Instant::now();
            comms.drain_until_all_done();
            comms.stats.exchange += exchange_started.elapsed();
            shared.set_status(shard, WorkerStatus::Done);
            return Ok(WorkerOutput {
                fields,
                masks,
                stats: comms.stats,
            });
        }

        // Halo exchange: ship the rows adjoining each artificial edge (they
        // are interior, hence exact), then reassemble the next window's
        // inputs as neighbor frames arrive — compute of other shards
        // overlaps this transfer.
        let exchange_started = Instant::now();
        let mut result = result;
        for (field_id, (out_field, _)) in plan.pairs.iter().enumerate() {
            let grid = result
                .field(out_field)
                .ok_or_else(|| format!("shard {shard}: output `{out_field}` missing"))?;
            let interior = geom.interior_offset();
            if shard + 1 < plan.shards {
                // Top rows [end - halo, end) feed shard+1's low dilation.
                let lo = (interior + geom.rows() - plan.halo_rows) * plan.row_words;
                let payload = grid.as_slice()[lo..lo + plan.payload_words].to_vec();
                comms.send_halo(window, field_id, payload, true, faults)?;
            }
            if shard > 0 {
                // Bottom rows [start, start + halo) feed shard-1's high
                // dilation.
                let lo = interior * plan.row_words;
                let payload = grid.as_slice()[lo..lo + plan.payload_words].to_vec();
                comms.send_halo(window, field_id, payload, false, faults)?;
            }
        }

        // Collect the halos this shard needs for the next window.
        let mut halos: BTreeMap<(bool, usize), Vec<f64>> = BTreeMap::new();
        comms.collect_halos(window, config, &mut halos)?;
        comms.stats.exchange += exchange_started.elapsed();

        // Reassemble the next window's inputs: own interior stays, the
        // dilation rows are replaced by the neighbors' interiors.
        for (field_id, (out_field, in_field)) in plan.pairs.iter().enumerate() {
            let mut grid = result
                .take_field(out_field)
                .ok_or_else(|| format!("shard {shard}: output `{out_field}` missing"))?;
            let slice = grid.as_mut_slice();
            if shard > 0 {
                let payload = halos.get(&(false, field_id)).expect("low halo collected");
                slice[..plan.payload_words].copy_from_slice(payload);
            }
            if shard + 1 < plan.shards {
                let payload = halos.get(&(true, field_id)).expect("high halo collected");
                let lo = (geom.slab_rows() - plan.halo_rows) * plan.row_words;
                slice[lo..lo + plan.payload_words].copy_from_slice(payload);
            }
            work_inputs.insert(in_field.clone(), grid);
        }
    }
    unreachable!("the last window always returns")
}

fn poison_reason(shared: &Shared) -> String {
    shared
        .poison_reason
        .lock()
        .expect("poison reason")
        .clone()
        .unwrap_or_else(|| "runtime poisoned".to_string())
}

fn link_salt(shard: usize, up: bool) -> u64 {
    (shard as u64) << 1 | u64::from(up)
}

/// Adaptive wait for the worker polling loops: yield the core for the
/// first spins — on time-sliced hosts the neighbor being waited on needs
/// exactly this core — then back off to short sleeps.
fn relax(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(100));
    }
}

/// Push a whole frame, treating persistent back-pressure as a live
/// cross-check of the fig04-style minimum-depth rule: a link that cannot
/// even hold one frame can never drain, so the sender reports the starved
/// edge immediately instead of hanging until the watchdog fires.
fn push_frame(
    shard: usize,
    window: usize,
    link: &HaloLink,
    words: &[f64],
    shared: &Shared,
    stats: &mut ShardStats,
) -> std::result::Result<(), String> {
    if link.capacity < words.len() {
        let report = WatchdogReport {
            starved_edge: link.name.clone(),
            window,
            configured_capacity_words: link.capacity,
            required_frame_words: words.len(),
            analysis_agrees: true,
            worker_status: describe_all(shared),
        };
        shared.log(format!(
            "shard {shard}: `{}` is undersized ({} words < one {}-word frame): \
             the buffer analysis minimum is violated, the link can never drain",
            link.name,
            link.capacity,
            words.len()
        ));
        *shared.watchdog.lock().expect("watchdog slot") = Some(report);
        return Err(format!(
            "deadlock on `{}`: capacity {} words below the one-frame minimum of {}",
            link.name,
            link.capacity,
            words.len()
        ));
    }
    let mut spins = 0u32;
    loop {
        if link.try_push_frame(words) {
            stats.words_sent += words.len().saturating_sub(HEADER_WORDS);
            shared.bump();
            return Ok(());
        }
        if shared.poisoned() {
            return Err(poison_reason(shared));
        }
        shared.set_status(
            shard,
            WorkerStatus::SendBlocked {
                edge: link.name.clone(),
                window,
                needed: words.len(),
                capacity: link.capacity,
            },
        );
        relax(&mut spins);
    }
}

fn describe_all(shared: &Shared) -> Vec<String> {
    shared
        .status
        .iter()
        .enumerate()
        .map(|(shard, slot)| slot.lock().expect("status slot").describe(shard))
        .collect()
}

/// Build the watchdog's report: pick the starved edge from the worker
/// statuses and cross-check the live configuration against the fig04-style
/// one-frame minimum depth.
fn watchdog_report(shared: &Shared, plan: &Plan) -> WatchdogReport {
    let statuses: Vec<WorkerStatus> = shared
        .status
        .iter()
        .map(|slot| slot.lock().expect("status slot").clone())
        .collect();
    let required = minimum_link_depth_words(plan.payload_words);
    let mut starved_edge = "<unknown>".to_string();
    let mut window = 0usize;
    let mut configured = plan.link_capacity;
    // A blocked sender is the sharpest signal (its edge can provably not
    // accept a frame); a waiting receiver the second best.
    for status in &statuses {
        if let WorkerStatus::SendBlocked {
            edge,
            window: w,
            capacity,
            ..
        } = status
        {
            starved_edge = edge.clone();
            window = *w;
            configured = *capacity;
            break;
        }
    }
    if starved_edge == "<unknown>" {
        for status in &statuses {
            if let WorkerStatus::Waiting {
                edge, window: w, ..
            } = status
            {
                starved_edge = edge.clone();
                window = *w;
                break;
            }
        }
    }
    WatchdogReport {
        starved_edge,
        window,
        configured_capacity_words: configured,
        required_frame_words: required,
        analysis_agrees: configured < required,
        worker_status: statuses
            .iter()
            .enumerate()
            .map(|(shard, s)| s.describe(shard))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;

    fn diffusion_program(shape: &[usize; 3]) -> StencilProgram {
        StencilProgramBuilder::new("diffuse", shape)
            .input("h", DataType::Float64, &["i", "j", "k"])
            .stencil(
                "h_next",
                "(h[i-1,j,k] + h[i+1,j,k] + h[i,j-1,k] + h[i,j+1,k] + h[i,j,k-1] \
                 + h[i,j,k+1]) / 6.0",
            )
            .boundary(
                "h_next",
                "h",
                stencilflow_program::BoundaryCondition::Constant(0.5),
            )
            .output_type("h_next", DataType::Float64)
            .output("h_next")
            .build()
            .unwrap()
    }

    fn ramp_inputs(program: &StencilProgram) -> BTreeMap<String, Grid> {
        let space = program.space();
        let mut inputs = BTreeMap::new();
        for (name, decl) in program.inputs() {
            let dims: Vec<&str> = decl.dims.iter().map(String::as_str).collect();
            let shape = crate::plan::declared_shape(space, &decl.dims);
            let mut counter = 0.0f64;
            let grid = Grid::from_fn(&dims, &shape, decl.data_type(), |_| {
                counter += 1.0;
                (counter * 0.37).sin()
            });
            inputs.insert(name.to_string(), grid);
        }
        inputs
    }

    #[test]
    fn halo_radius_accumulates_along_the_dag() {
        let program = diffusion_program(&[12, 6, 6]);
        assert_eq!(halo_radius(&program).unwrap(), 1);
        let chained = StencilProgramBuilder::new("chain", &[16, 6, 6])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i-1,j,k] + a[i+1,j,k]")
            .stencil("c", "b[i-2,j,k] + b[i+2,j,k]")
            .shrink("b")
            .shrink("c")
            .output("c")
            .build()
            .unwrap();
        assert_eq!(halo_radius(&chained).unwrap(), 3);
    }

    #[test]
    fn slab_program_replay_matches_original_inner_shape() {
        let program = diffusion_program(&[12, 6, 4]);
        let slab = build_slab_program(&program, 5).unwrap();
        assert_eq!(slab.space().shape, vec![5, 6, 4]);
        assert_eq!(slab.stencil_count(), program.stencil_count());
        assert_eq!(slab.outputs(), program.outputs());
    }

    #[test]
    fn frames_round_trip_and_detect_corruption() {
        let payload = vec![1.5, -2.25, f64::NAN.abs(), 0.0];
        let words = encode_frame(7, 3, 1, &payload);
        let link = HaloLink::new("t".into(), 64);
        assert!(link.try_push_frame(&words));
        let frame = link.try_pop_frame().unwrap();
        assert!(frame.checksum_ok);
        assert_eq!(frame.seq, 7);
        assert_eq!(frame.window, 3);
        assert_eq!(frame.field, 1);
        assert_eq!(frame.payload.len(), 4);
        assert_eq!(frame.payload[0], 1.5);

        let mut corrupted = words.clone();
        let victim = HEADER_WORDS + 2;
        corrupted[victim] = f64::from_bits(corrupted[victim].to_bits() ^ 1);
        assert!(link.try_push_frame(&corrupted));
        assert!(!link.try_pop_frame().unwrap().checksum_ok);
    }

    #[test]
    fn sharded_steps_match_the_unsharded_stepper_bitwise() {
        let program = diffusion_program(&[16, 8, 6]);
        let inputs = ramp_inputs(&program);
        let exec = ReferenceExecutor::new();
        let reference = exec.run_steps(&program, &inputs, 5).unwrap();
        for shards in [1usize, 2, 3, 4] {
            let config = ShardConfig::shards(shards).with_window(2);
            let outcome = exec
                .run_steps_sharded(&program, &inputs, 5, &config)
                .unwrap();
            assert!(!outcome.report.degraded, "shards={shards} degraded");
            assert_eq!(outcome.report.shards, shards);
            let got = outcome.result.field("h_next").unwrap();
            let want = reference.field("h_next").unwrap();
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "shards={shards}");
            }
            assert_eq!(
                outcome.result.valid_mask("h_next").unwrap(),
                reference.valid_mask("h_next").unwrap()
            );
        }
    }

    #[test]
    fn single_application_sharding_matches_run() {
        let program = diffusion_program(&[20, 6, 4]);
        let inputs = ramp_inputs(&program);
        let exec = ReferenceExecutor::new();
        let reference = exec.run_fused(&program, &inputs).unwrap();
        let outcome = exec
            .run_sharded(&program, &inputs, &ShardConfig::shards(3))
            .unwrap();
        assert!(!outcome.report.degraded);
        let got = outcome.result.field("h_next").unwrap();
        let want = reference.field("h_next").unwrap();
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_fault_schedule_stays_bit_identical() {
        let program = diffusion_program(&[12, 6, 4]);
        let inputs = ramp_inputs(&program);
        let exec = ReferenceExecutor::new();
        let reference = exec.run_steps(&program, &inputs, 4).unwrap();
        let plans = [
            FaultPlan::none(),
            FaultPlan::dropped_halo(11),
            FaultPlan::delayed_halo(12),
            FaultPlan::duplicated_halo(13),
            FaultPlan::corrupted_halo(14),
        ];
        for plan in plans {
            let config = ShardConfig::shards(3)
                .with_window(1)
                .with_fault_plan(plan.clone());
            let outcome = exec
                .run_steps_sharded(&program, &inputs, 4, &config)
                .unwrap();
            assert!(
                !outcome.report.degraded,
                "recoverable plan degraded: {plan:?}: {:?}",
                outcome.report.degrade_reason
            );
            let got = outcome.result.field("h_next").unwrap();
            let want = reference.field("h_next").unwrap();
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "plan {plan:?}");
            }
        }
    }

    #[test]
    fn worker_panic_degrades_and_stays_bit_identical() {
        let program = diffusion_program(&[12, 6, 4]);
        let inputs = ramp_inputs(&program);
        let exec = ReferenceExecutor::new();
        let reference = exec.run_steps(&program, &inputs, 4).unwrap();
        let config = ShardConfig::shards(3)
            .with_window(1)
            .with_fault_plan(FaultPlan::worker_panic(1, 2));
        let outcome = exec
            .run_steps_sharded(&program, &inputs, 4, &config)
            .unwrap();
        assert!(outcome.report.degraded);
        assert!(outcome
            .report
            .degrade_reason
            .as_deref()
            .unwrap()
            .contains("panicked"));
        let got = outcome.result.field("h_next").unwrap();
        let want = reference.field("h_next").unwrap();
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn undersized_link_is_detected_with_the_starved_edge() {
        let program = diffusion_program(&[12, 6, 4]);
        let inputs = ramp_inputs(&program);
        let exec = ReferenceExecutor::new();
        let config = ShardConfig::shards(2)
            .with_window(1)
            .with_watchdog(Duration::from_millis(200))
            .with_link_capacity_words(8); // below one frame
        let started = Instant::now();
        let outcome = exec
            .run_steps_sharded(&program, &inputs, 4, &config)
            .unwrap();
        assert!(outcome.report.degraded, "undersized link must degrade");
        let watchdog = outcome.report.watchdog.expect("watchdog report");
        assert!(watchdog.starved_edge.contains("halo["));
        assert!(watchdog.configured_capacity_words < watchdog.required_frame_words);
        assert!(watchdog.analysis_agrees);
        // Detection must be fast, not a hang until some giant timeout.
        assert!(started.elapsed() < Duration::from_secs(5));
        // And the degraded result still matches the stepper bitwise.
        let reference = exec.run_steps(&program, &inputs, 4).unwrap();
        let got = outcome.result.field("h_next").unwrap();
        let want = reference.field("h_next").unwrap();
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn watchdog_trips_on_a_stalled_worker() {
        let program = diffusion_program(&[12, 6, 4]);
        let inputs = ramp_inputs(&program);
        let exec = ReferenceExecutor::new();
        let config = ShardConfig::shards(2)
            .with_window(1)
            .with_watchdog(Duration::from_millis(150))
            .with_fault_plan(FaultPlan::worker_stall(0, 1, Duration::from_millis(450)));
        let outcome = exec
            .run_steps_sharded(&program, &inputs, 4, &config)
            .unwrap();
        assert!(outcome.report.degraded);
        let reference = exec.run_steps(&program, &inputs, 4).unwrap();
        let got = outcome.result.field("h_next").unwrap();
        let want = reference.field("h_next").unwrap();
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn short_stall_recovers_without_degrading() {
        let program = diffusion_program(&[12, 6, 4]);
        let inputs = ramp_inputs(&program);
        let exec = ReferenceExecutor::new();
        let config = ShardConfig::shards(2)
            .with_window(1)
            .with_watchdog(Duration::from_millis(500))
            .with_fault_plan(FaultPlan::worker_stall(0, 1, Duration::from_millis(30)));
        let outcome = exec
            .run_steps_sharded(&program, &inputs, 4, &config)
            .unwrap();
        assert!(!outcome.report.degraded);
    }
}
