//! Compiled stencil templates and their per-run grid bindings.
//!
//! The reference executor used to walk the expression tree once per cell,
//! resolving every access through a string-keyed lookup that allocated an
//! offset vector per access. A [`CompiledStencil`] does all of that
//! resolution **once per program** — and, unlike the earlier per-run plan,
//! it borrows no grids, so one compiled template is reusable across any
//! number of runs (see `ReferenceExecutor::prepare`):
//!
//! * the code segment is lowered to a [`CompiledKernel`] (slot-resolved
//!   bytecode, see `stencilflow_expr::compile`), and additionally
//!   specialized to a [`TypedKernel`] when every instruction's result type
//!   is statically determined by the slot types — the typed sweep then runs
//!   on raw `f64`s with no `Value` tagging and no per-op promotion;
//! * every access slot is bound to its field's *declared* geometry: a
//!   per-dimension stride coefficient vector, a precomputed flat-offset
//!   delta, and its boundary-condition action. (Input grids are validated
//!   against the declared shape and element type before every run, so the
//!   declared geometry is the actual geometry.)
//! * the iteration space is split into an **interior** — where every access
//!   of the stencil is statically in bounds, so the inner loop is a pure
//!   strided array walk with no bounds checks and no branches — and a
//!   **halo**, where accesses are bounds-checked and boundary conditions
//!   applied. Out-of-bounds tracking for `shrink` masks falls out of the
//!   halo pass for free (interior cells are in bounds by construction).
//!
//! Per run, [`CompiledStencil::bind`] resolves each field name to its grid
//! slice (a handful of map lookups) and produces a [`BoundStencil`] whose
//! rows (runs of the innermost dimension) are independent, so the sweep is
//! parallelized across threads with disjoint output row chunks.

use crate::grid::Grid;
use std::collections::{BTreeMap, BTreeSet};
use stencilflow_expr::{
    CompiledKernel, DataType, EvalScratch, ExprError, LaneScratch, TypedKernel, TypedScratch,
    Value, KERNEL_LANES, KERNEL_LANES_WIDE,
};
use stencilflow_program::{BoundaryCondition, IterationSpace, StencilNode, StencilProgram};

/// Rows must be at least this many multiples of the wide lane width before
/// a stencil dispatches to the wide sweep: wide batches only fire where a
/// full batch fits, so short rows would spend most cells in the mixed-batch
/// and scalar-remainder paths and lose the amortization the width buys.
const WIDE_ROW_MULTIPLE: usize = 4;

/// Expand a field's declared dimension names into its dense row-major shape
/// over the iteration space (dimensions the space does not know contribute
/// extent 1). This single definition of the declared geometry is shared by
/// compilation, slot binding, and input validation.
pub(crate) fn declared_shape(space: &IterationSpace, dims: &[String]) -> Vec<usize> {
    dims.iter()
        .map(|d| space.dim_index(d).map(|ix| space.shape[ix]).unwrap_or(1))
        .collect()
}

/// How one access slot of the kernel reads its field.
#[derive(Debug)]
struct SlotTemplate {
    /// Index into the template's field table.
    grid: usize,
    /// Per-iteration-space-dimension stride coefficient into the field's own
    /// dense storage (zero for dimensions the field does not span). The
    /// center of a cell `index` lives at flat position `dot(index, coeffs)`.
    coeffs: Vec<i64>,
    /// Constant flat-offset delta of this access relative to the center.
    delta: i64,
    /// `(space dimension, offset)` pairs to bounds-check in the halo.
    checks: Vec<(usize, i64)>,
    /// Boundary condition applied when a check fails.
    boundary: BoundaryCondition,
    /// Element type of the source field (values are typed as the field is).
    dtype: DataType,
    /// The `Constant` boundary value pre-rounded through the slot's element
    /// type (`0.0` for `Copy`), so the typed halo pass needs no `Value`.
    halo_constant: f64,
    /// Scalar (0-D) access: resolved once per run, never re-read per cell.
    scalar: bool,
}

/// One entry of a compiled stencil's field table.
#[derive(Debug)]
struct FieldRef {
    name: String,
    dtype: DataType,
    len: usize,
}

/// A stencil compiled against the declared geometry of its fields. Owns no
/// grid data; reusable across runs.
pub(crate) struct CompiledStencil {
    name: String,
    kernel: CompiledKernel,
    /// Type-specialized kernel, present when every op's type is static.
    typed: Option<TypedKernel>,
    /// Whether the interior sweep may run lane-batched: the typed kernel is
    /// branch-free and every non-scalar slot walks the innermost dimension
    /// with a unit stride (contiguous run) or a zero stride (broadcast from
    /// a field that does not span the innermost dimension).
    lane_ready: bool,
    /// Lane width of the batched sweep, chosen per stencil at compile time
    /// (dtype-driven const dispatch): all-`f32` kernels on long rows take
    /// [`KERNEL_LANES_WIDE`] — their per-op `f32` rounding makes narrow
    /// batches latency-bound — everything else stays at [`KERNEL_LANES`].
    lane_width: usize,
    fields: Vec<FieldRef>,
    slots: Vec<SlotTemplate>,
    /// All syntactic `(dimension, offset)` access checks of the stencil
    /// (deduplicated) — drives the shrink mask, matching the tree-walking
    /// executor which considers every access, including ones the kernel may
    /// have folded away.
    mask_checks: Vec<(usize, i64)>,
    /// Interior bounds per dimension (`lo` inclusive, `hi` exclusive).
    interior_lo: Vec<usize>,
    interior_hi: Vec<usize>,
    has_interior: bool,
    shape: Vec<usize>,
    out_dtype: DataType,
    shrink: bool,
}

impl CompiledStencil {
    /// Compile `stencil` and bind its accesses against the **declared**
    /// geometry of the program's fields (input declarations for inputs, the
    /// full iteration space for intermediate results).
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::UnresolvedSymbol`] if an access refers to a
    /// field the program does not declare (indicates a validation bug
    /// upstream), and propagates kernel compilation failures.
    pub fn build(
        program: &StencilProgram,
        stencil: &StencilNode,
    ) -> Result<CompiledStencil, ExprError> {
        let kernel = CompiledKernel::compile(&stencil.program)?;
        let space = program.space();
        let rank = space.rank();

        let mut fields: Vec<FieldRef> = Vec::new();
        let mut field_shapes: Vec<Vec<usize>> = Vec::new();
        let mut field_table: BTreeMap<String, usize> = BTreeMap::new();
        let mut slots = Vec::with_capacity(kernel.slots().len());
        let mut slot_types = Vec::with_capacity(kernel.slots().len());

        for slot in kernel.slots() {
            let grid_ix = match field_table.get(slot.field.as_str()) {
                Some(&ix) => ix,
                None => {
                    let dims = program.field_dims(&slot.field).ok_or_else(|| {
                        ExprError::UnresolvedSymbol {
                            name: slot.field.clone(),
                        }
                    })?;
                    let dtype = program
                        .field_type(&slot.field)
                        .expect("declared fields have a type");
                    let shape = declared_shape(space, &dims);
                    let len = shape.iter().product::<usize>().max(1);
                    let ix = fields.len();
                    fields.push(FieldRef {
                        name: slot.field.clone(),
                        dtype,
                        len,
                    });
                    field_shapes.push(shape);
                    field_table.insert(slot.field.clone(), ix);
                    ix
                }
            };
            let field_shape = &field_shapes[grid_ix];
            let mut strides = vec![1usize; field_shape.len()];
            for d in (0..field_shape.len().saturating_sub(1)).rev() {
                strides[d] = strides[d + 1] * field_shape[d + 1];
            }
            let dtype = fields[grid_ix].dtype;
            let mut coeffs = vec![0i64; rank];
            let mut delta = 0i64;
            let mut checks = Vec::with_capacity(slot.index_vars.len());
            for (axis, (var, &off)) in slot.index_vars.iter().zip(slot.offsets.iter()).enumerate() {
                let dim = space
                    .dim_index(var)
                    .ok_or_else(|| ExprError::UnresolvedSymbol {
                        name: format!("{}{:?}", slot.field, slot.offsets),
                    })?;
                let stride = strides[axis] as i64;
                coeffs[dim] = stride;
                delta += off * stride;
                checks.push((dim, off));
            }
            let boundary = stencil.boundary.condition_for(&slot.field);
            let halo_constant = match boundary {
                BoundaryCondition::Constant(c) => Value::from_f64(c, dtype).as_f64(),
                BoundaryCondition::Copy => 0.0,
            };
            slot_types.push(dtype);
            slots.push(SlotTemplate {
                grid: grid_ix,
                coeffs,
                delta,
                checks,
                boundary,
                dtype,
                halo_constant,
                scalar: slot.is_scalar(),
            });
        }

        // Interior bounds and the shrink-mask check set come from the full
        // syntactic access pattern, exactly like the tree-walking executor's
        // per-cell out-of-bounds re-walk.
        let mut min_off = vec![0i64; rank];
        let mut max_off = vec![0i64; rank];
        let mut mask_checks: BTreeSet<(usize, i64)> = BTreeSet::new();
        for (_, info) in stencil.accesses.iter() {
            for offsets in &info.offsets {
                for (var, &off) in info.index_vars.iter().zip(offsets.iter()) {
                    if let Some(dim) = space.dim_index(var) {
                        min_off[dim] = min_off[dim].min(off);
                        max_off[dim] = max_off[dim].max(off);
                        if off != 0 {
                            mask_checks.insert((dim, off));
                        }
                    }
                }
            }
        }
        let mut interior_lo = Vec::with_capacity(rank);
        let mut interior_hi = Vec::with_capacity(rank);
        let mut has_interior = true;
        for d in 0..rank {
            let lo = (-min_off[d]).max(0) as usize;
            let hi = space.shape[d] as i64 - max_off[d].max(0);
            if hi <= lo as i64 {
                has_interior = false;
            }
            interior_lo.push(lo);
            interior_hi.push(hi.max(0) as usize);
        }

        // Debug builds consume the independent verifier verdict instead of
        // trusting compiler/optimizer bookkeeping: the kernel must verify
        // with the actual bind-time slot types (which also refines its
        // infallibility judgment past the typeless compile-time run).
        #[cfg(debug_assertions)]
        if let Err(e) = stencilflow_expr::verify_kernel(&kernel, Some(&slot_types)) {
            panic!(
                "stencil `{}` failed bytecode verification at bind time: {e}",
                stencil.name
            );
        }
        let typed = kernel.specialize(&slot_types);
        let lane_ready = typed.as_ref().is_some_and(TypedKernel::supports_lanes)
            && slots
                .iter()
                .all(|s| s.scalar || matches!(s.coeffs[rank - 1], 0 | 1));
        // Width-aware lane counts: all-f32 kernels on long rows batch wide
        // (their per-op f32 rounding chains are latency-bound at narrow
        // widths); f64-involving kernels keep the default width — the
        // once-proposed narrowing to 4 lanes for f64 measured strictly
        // slower (lanes are f64-typed regardless of element type, so
        // narrowing only sheds dispatch amortization; see KERNEL_LANES_WIDE).
        let row_len = *space
            .shape
            .last()
            .expect("iteration spaces are never empty");
        let all_f32 = slot_types.iter().all(|&t| t == DataType::Float32)
            && stencil.output_type == DataType::Float32;
        let lane_width =
            if lane_ready && all_f32 && row_len >= WIDE_ROW_MULTIPLE * KERNEL_LANES_WIDE {
                KERNEL_LANES_WIDE
            } else {
                KERNEL_LANES
            };
        Ok(CompiledStencil {
            name: stencil.name.clone(),
            kernel,
            typed,
            lane_ready,
            lane_width,
            fields,
            slots,
            mask_checks: mask_checks.into_iter().collect(),
            interior_lo,
            interior_hi,
            has_interior,
            shape: space.shape.clone(),
            out_dtype: stencil.output_type,
            shrink: stencil.boundary.shrink,
        })
    }

    /// Stencil name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output element type of the stencil.
    pub fn out_dtype(&self) -> DataType {
        self.out_dtype
    }

    /// Whether this stencil carries a type-specialized kernel.
    pub fn is_typed(&self) -> bool {
        self.typed.is_some()
    }

    /// Whether this stencil's interior sweep may run lane-batched (see the
    /// `lane_ready` field for the exact conditions).
    pub fn is_lane_ready(&self) -> bool {
        self.lane_ready
    }

    /// Number of per-cell field reads of the sweep (scalar slots excluded);
    /// at least 1. Drives the parallelization threshold.
    pub fn accesses_per_cell(&self) -> usize {
        self.slots.iter().filter(|s| !s.scalar).count().max(1)
    }

    /// Number of rows (runs of the innermost dimension) in the sweep.
    pub fn row_count(&self) -> usize {
        self.shape[..self.shape.len() - 1]
            .iter()
            .product::<usize>()
            .max(1)
    }

    /// Length of one row (innermost extent).
    pub fn row_len(&self) -> usize {
        *self.shape.last().expect("iteration spaces are never empty")
    }

    /// Resolve every field of this stencil to its grid for one run.
    ///
    /// This is the cheap per-run step: a few name lookups plus the scalar
    /// slot prefill — no compilation, no geometry analysis.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::UnresolvedSymbol`] if a field has no grid.
    pub fn bind<'g, 'p>(
        &'p self,
        inputs: &'g BTreeMap<String, Grid>,
        computed: &'g BTreeMap<String, Grid>,
        use_typed: bool,
        use_lanes: bool,
        use_wide_lanes: bool,
    ) -> Result<BoundStencil<'g, 'p>, ExprError> {
        let mut grid_data: Vec<&'g [f64]> = Vec::with_capacity(self.fields.len());
        for field in &self.fields {
            let grid = inputs
                .get(&field.name)
                .or_else(|| computed.get(&field.name))
                .ok_or_else(|| ExprError::UnresolvedSymbol {
                    name: field.name.clone(),
                })?;
            debug_assert_eq!(
                grid.data_type(),
                field.dtype,
                "input validation guarantees declared element types"
            );
            debug_assert_eq!(grid.len(), field.len, "input validation guarantees shapes");
            grid_data.push(grid.as_slice());
        }
        let mut slot_template = Vec::with_capacity(self.slots.len());
        let mut typed_template = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let raw = if slot.scalar {
                grid_data[slot.grid][0]
            } else {
                0.0
            };
            slot_template.push(Value::from_f64(raw, slot.dtype));
            typed_template.push(raw);
        }
        Ok(BoundStencil {
            plan: self,
            grid_data,
            slot_template,
            typed_template,
            use_typed: use_typed && self.typed.is_some(),
            use_lanes: use_typed && use_lanes && self.lane_ready,
            lane_width: if use_wide_lanes {
                self.lane_width
            } else {
                KERNEL_LANES
            },
        })
    }

    /// Lane width the batched sweep dispatches to for this stencil (one of
    /// [`KERNEL_LANES`] / [`KERNEL_LANES_WIDE`]; meaningful only when the
    /// stencil is lane-ready).
    pub fn lane_width(&self) -> usize {
        self.lane_width
    }

    /// The type-specialized kernel, when the slot types allowed one.
    pub(crate) fn typed_kernel(&self) -> Option<&TypedKernel> {
        self.typed.as_ref()
    }

    /// The slot-resolved `Value` bytecode kernel.
    /// Bind-time element type of every kernel slot, in slot order (the
    /// types the typed kernel was specialized with); feeds the
    /// JIT-eligibility verification pass.
    pub(crate) fn slot_dtypes(&self) -> Vec<DataType> {
        self.slots.iter().map(|s| s.dtype).collect()
    }

    pub(crate) fn compiled_kernel(&self) -> &CompiledKernel {
        &self.kernel
    }

    /// The deduplicated `(dimension, offset)` checks driving the shrink
    /// mask (see the field documentation).
    pub(crate) fn shrink_mask_checks(&self) -> &[(usize, i64)] {
        &self.mask_checks
    }

    /// Whether the stencil has the `shrink` boundary flag.
    pub(crate) fn is_shrink(&self) -> bool {
        self.shrink
    }
}

/// A [`CompiledStencil`] bound to this run's grids.
pub(crate) struct BoundStencil<'g, 'p> {
    plan: &'p CompiledStencil,
    grid_data: Vec<&'g [f64]>,
    /// Template slot-value vector with scalar slots prefilled (Value path).
    slot_template: Vec<Value>,
    /// Raw counterpart of `slot_template` (typed path).
    typed_template: Vec<f64>,
    use_typed: bool,
    /// Whether the interior sweep runs lane-batched (implies `use_typed`).
    use_lanes: bool,
    /// Effective lane width of this binding (the plan's width, or
    /// [`KERNEL_LANES`] when the executor pins the default width).
    lane_width: usize,
}

/// One kernel tier driving the generic sweep: how slot values are
/// represented, loaded from raw grid storage, and evaluated. Keeping the
/// interior/halo control flow in one generic function
/// ([`BoundStencil::sweep`]) means the two tiers cannot drift apart.
trait SweepKernel {
    /// Per-slot value representation ([`Value`] or raw `f64`).
    type Slot: Copy;
    /// A load of a raw grid value (or a pre-rounded boundary constant) for
    /// `slot`.
    fn load(raw: f64, slot: &SlotTemplate) -> Self::Slot;
    /// Evaluate the kernel on the resolved slot values; the result is the
    /// raw output value before rounding through the stencil's output type.
    fn eval(&mut self, values: &[Self::Slot]) -> Result<f64, ExprError>;
}

/// The dynamically typed `Value` bytecode tier.
struct ValueSweep<'k> {
    kernel: &'k CompiledKernel,
    scratch: EvalScratch,
}

impl SweepKernel for ValueSweep<'_> {
    type Slot = Value;

    fn load(raw: f64, slot: &SlotTemplate) -> Value {
        // Boundary constants are pre-rounded through the slot type, so
        // tagging them here is exactly `from_f64(c, dtype)` (idempotent).
        Value::from_f64(raw, slot.dtype)
    }

    fn eval(&mut self, values: &[Value]) -> Result<f64, ExprError> {
        Ok(self.kernel.eval_slots(values, &mut self.scratch)?.as_f64())
    }
}

/// The type-specialized raw-`f64` tier. Grids round every store through
/// their element type, so raw loads are exactly the payloads the `Value`
/// tier would tag — the tiers agree bit for bit.
struct TypedSweep<'k> {
    kernel: &'k TypedKernel,
    scratch: TypedScratch,
}

impl SweepKernel for TypedSweep<'_> {
    type Slot = f64;

    fn load(raw: f64, _slot: &SlotTemplate) -> f64 {
        raw
    }

    fn eval(&mut self, values: &[f64]) -> Result<f64, ExprError> {
        Ok(self.kernel.eval_slots(values, &mut self.scratch))
    }
}

/// Fill `values` with the slot values of interior cell `k` of the current
/// row: every access is statically in bounds, so the loads are plain strided
/// reads with no branches.
#[inline]
fn fill_interior_slots<K: SweepKernel>(
    plan: &CompiledStencil,
    grid_data: &[&[f64]],
    rowbase: &[i64],
    k: usize,
    values: &mut [K::Slot],
) {
    let rank = plan.shape.len();
    for (s, slot) in plan.slots.iter().enumerate() {
        if slot.scalar {
            continue;
        }
        let flat = (rowbase[s] + k as i64 * slot.coeffs[rank - 1]) as usize;
        values[s] = K::load(grid_data[slot.grid][flat], slot);
    }
}

/// Raw value of one non-scalar slot at a halo cell: bounds-check the access
/// and apply the boundary condition on a miss. `index` must hold the cell's
/// full index (leading dimensions and `k`). The returned raw value is what
/// grid storage holds (already rounded through the slot's element type), so
/// both kernel tiers load it identically — and the lane-batched halo gather
/// reuses this exact per-cell logic per lane, which is why it stays
/// bit-identical to the scalar halo sweep.
#[inline]
fn halo_slot_raw(
    plan: &CompiledStencil,
    grid_data: &[&[f64]],
    slot_ix: usize,
    slot: &SlotTemplate,
    index: &[usize],
    rowbase: &[i64],
    k: usize,
) -> f64 {
    let rank = plan.shape.len();
    let in_bounds = slot.checks.iter().all(|&(dim, off)| {
        let pos = index[dim] as i64 + off;
        pos >= 0 && pos < plan.shape[dim] as i64
    });
    let center = rowbase[slot_ix] - slot.delta + k as i64 * slot.coeffs[rank - 1];
    if in_bounds {
        grid_data[slot.grid][(center + slot.delta) as usize]
    } else {
        match slot.boundary {
            // Pre-rounded through the slot type; `K::load` tagging is
            // idempotent on it.
            BoundaryCondition::Constant(_) => slot.halo_constant,
            BoundaryCondition::Copy => grid_data[slot.grid][center as usize],
        }
    }
}

/// Fill `values` for a halo cell: bounds-check each access and apply the
/// boundary condition on misses. `index` must hold the cell's full index
/// (leading dimensions and `k`).
#[inline]
fn fill_halo_slots<K: SweepKernel>(
    plan: &CompiledStencil,
    grid_data: &[&[f64]],
    index: &[usize],
    rowbase: &[i64],
    k: usize,
    values: &mut [K::Slot],
) {
    for (s, slot) in plan.slots.iter().enumerate() {
        if slot.scalar {
            continue;
        }
        values[s] = K::load(
            halo_slot_raw(plan, grid_data, s, slot, index, rowbase, k),
            slot,
        );
    }
}

/// Shrink-mask validity of a halo cell (interior cells are always valid).
#[inline]
fn halo_mask_valid(plan: &CompiledStencil, index: &[usize]) -> bool {
    plan.mask_checks.iter().all(|&(dim, off)| {
        let pos = index[dim] as i64 + off;
        pos >= 0 && pos < plan.shape[dim] as i64
    })
}

/// Round a lane batch of raw results through the stencil's output element
/// type into `out` — per lane exactly `Value::from_f64(v, dtype).as_f64()`,
/// the rounding every scalar path applies on store.
#[inline]
pub(crate) fn round_lanes<const LANES: usize>(
    values: &[f64; LANES],
    dtype: DataType,
    out: &mut [f64],
) {
    match dtype {
        DataType::Float32 => {
            for (cell, &v) in out.iter_mut().zip(values.iter()) {
                *cell = v as f32 as f64;
            }
        }
        DataType::Float64 => out.copy_from_slice(values),
        _ => {
            for (cell, &v) in out.iter_mut().zip(values.iter()) {
                *cell = Value::from_f64(v, dtype).as_f64();
            }
        }
    }
}

impl BoundStencil<'_, '_> {
    /// Sweep rows `[row_start, row_end)`, writing results into `out` and the
    /// validity mask into `mask` (both spanning exactly those rows). Uses
    /// the type-specialized kernel when available and enabled — lane-batched
    /// over the interior where the stencil allows it; all paths produce
    /// identical bits.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (e.g. integer division by zero; only
    /// reachable on the `Value` path — typed kernels are infallible).
    pub fn run_rows(
        &self,
        row_start: usize,
        row_end: usize,
        out: &mut [f64],
        mask: &mut [bool],
    ) -> Result<(), ExprError> {
        match (self.use_typed, &self.plan.typed) {
            (true, Some(typed)) if self.use_lanes => {
                // Dtype-driven const dispatch on the per-stencil lane
                // width (see `CompiledStencil::lane_width`).
                match self.lane_width {
                    KERNEL_LANES_WIDE => {
                        self.sweep_lanes::<KERNEL_LANES_WIDE>(typed, row_start, row_end, out, mask)
                    }
                    _ => self.sweep_lanes::<KERNEL_LANES>(typed, row_start, row_end, out, mask),
                }
                Ok(())
            }
            (true, Some(typed)) => self.sweep(
                TypedSweep {
                    kernel: typed,
                    scratch: TypedScratch::default(),
                },
                &self.typed_template,
                row_start,
                row_end,
                out,
                mask,
            ),
            _ => self.sweep(
                ValueSweep {
                    kernel: &self.plan.kernel,
                    scratch: EvalScratch::default(),
                },
                &self.slot_template,
                row_start,
                row_end,
                out,
                mask,
            ),
        }
    }

    /// The lane-batched typed sweep: cells are evaluated `LANES` at a time
    /// wherever a full batch fits in the row.
    ///
    /// * **Interior batches** gather each slot with one contiguous
    ///   innermost-dimension load (unit stride) or a broadcast (zero
    ///   stride) and feed a single [`TypedKernel::eval_lanes`] pass.
    /// * **Halo (or mixed) batches** gather each slot lane by lane with
    ///   the same clamped/bounds-checked tap logic the scalar halo sweep
    ///   uses ([`halo_slot_raw`]) — the gather is slower than the
    ///   interior's contiguous copy, but the bytecode-dispatch cost of the
    ///   kernel is still amortized over all `LANES` cells, so halos no
    ///   longer force the per-cell scalar path.
    /// * Only the **row remainder** (fewer than `LANES` cells left in the
    ///   row) falls back to the scalar typed kernel.
    ///
    /// Bit-identical to [`BoundStencil::sweep`] because each lane applies
    /// the identical per-cell loads and computation — for any lane width
    /// (the width only changes how cells are grouped into batches, never
    /// what any one lane computes).
    fn sweep_lanes<const LANES: usize>(
        &self,
        typed: &TypedKernel,
        row_start: usize,
        row_end: usize,
        out: &mut [f64],
        mask: &mut [bool],
    ) {
        let plan = self.plan;
        let rank = plan.shape.len();
        let row_len = plan.row_len();
        debug_assert_eq!(out.len(), (row_end - row_start) * row_len);

        let mut scratch = TypedScratch::default();
        let mut lane_scratch = LaneScratch::<LANES>::default();
        // Slot-major lane buffer; scalar slots stay broadcast for the whole
        // sweep, exactly like the scalar template prefill.
        let mut lane_values: Vec<[f64; LANES]> =
            self.typed_template.iter().map(|&v| [v; LANES]).collect();
        let mut values = self.typed_template.clone();
        let mut lead = vec![0usize; rank - 1];
        let mut rowbase = vec![0i64; plan.slots.len()];
        let mut index = vec![0usize; rank];

        let lo_k = plan.interior_lo[rank - 1];
        let hi_k = plan.interior_hi[rank - 1];

        for row in row_start..row_end {
            let row_interior = self.row_setup(row, &mut lead, &mut rowbase);
            index[..rank - 1].copy_from_slice(&lead);

            let out_row = &mut out[(row - row_start) * row_len..][..row_len];
            let mask_row = &mut mask[(row - row_start) * row_len..][..row_len];

            let mut k = 0usize;
            while k < row_len {
                if k + LANES > row_len {
                    // Row remainder: scalar typed kernel, cell by cell.
                    let cell_interior = row_interior && k >= lo_k && k < hi_k;
                    if cell_interior {
                        fill_interior_slots::<TypedSweep<'_>>(
                            plan,
                            &self.grid_data,
                            &rowbase,
                            k,
                            &mut values,
                        );
                    } else {
                        index[rank - 1] = k;
                        fill_halo_slots::<TypedSweep<'_>>(
                            plan,
                            &self.grid_data,
                            &index,
                            &rowbase,
                            k,
                            &mut values,
                        );
                        if plan.shrink {
                            mask_row[k] = halo_mask_valid(plan, &index);
                        }
                    }
                    let result = typed.eval_slots(&values, &mut scratch);
                    out_row[k] = Value::from_f64(result, plan.out_dtype).as_f64();
                    k += 1;
                } else if row_interior && k >= lo_k && k + LANES <= hi_k {
                    // Lane-batched interior run: gather each slot's lanes
                    // from its contiguous innermost-dimension window.
                    for (s, slot) in plan.slots.iter().enumerate() {
                        if slot.scalar {
                            continue;
                        }
                        let stride = slot.coeffs[rank - 1];
                        let base = (rowbase[s] + k as i64 * stride) as usize;
                        let lanes = &mut lane_values[s];
                        if stride == 1 {
                            lanes.copy_from_slice(&self.grid_data[slot.grid][base..base + LANES]);
                        } else {
                            *lanes = [self.grid_data[slot.grid][base]; LANES];
                        }
                    }
                    let result = typed.eval_lanes(&lane_values, &mut lane_scratch);
                    round_lanes(&result, plan.out_dtype, &mut out_row[k..k + LANES]);
                    k += LANES;
                } else {
                    // Lane-batched halo (or mixed halo/interior) run. The
                    // interior cells of a batch form one contiguous lane
                    // interval, so the gather splits into a bulk interior
                    // load (contiguous copy or broadcast, exactly like the
                    // interior batch) plus per-lane bounds-checked edge
                    // lanes — identical loads to the scalar halo sweep,
                    // batched through one eval_lanes pass.
                    let (int_start, int_end) = if row_interior {
                        let start = lo_k.clamp(k, k + LANES);
                        (start, hi_k.clamp(start, k + LANES))
                    } else {
                        (k, k)
                    };
                    for (s, slot) in plan.slots.iter().enumerate() {
                        if slot.scalar {
                            continue;
                        }
                        let lanes = &mut lane_values[s];
                        if int_start < int_end {
                            let stride = slot.coeffs[rank - 1];
                            let base = (rowbase[s] + int_start as i64 * stride) as usize;
                            let span = &mut lanes[int_start - k..int_end - k];
                            if stride == 1 {
                                span.copy_from_slice(
                                    &self.grid_data[slot.grid][base..base + (int_end - int_start)],
                                );
                            } else {
                                span.fill(self.grid_data[slot.grid][base]);
                            }
                        }
                        for cell in (k..int_start).chain(int_end..k + LANES) {
                            index[rank - 1] = cell;
                            lanes[cell - k] = halo_slot_raw(
                                plan,
                                &self.grid_data,
                                s,
                                slot,
                                &index,
                                &rowbase,
                                cell,
                            );
                        }
                    }
                    if plan.shrink {
                        for (lane, mask_cell) in mask_row[k..k + LANES].iter_mut().enumerate() {
                            let cell = k + lane;
                            if !(row_interior && cell >= lo_k && cell < hi_k) {
                                index[rank - 1] = cell;
                                *mask_cell = halo_mask_valid(plan, &index);
                            }
                        }
                    }
                    let result = typed.eval_lanes(&lane_values, &mut lane_scratch);
                    round_lanes(&result, plan.out_dtype, &mut out_row[k..k + LANES]);
                    k += LANES;
                }
            }
        }
    }

    /// Decompose `row` into the leading index and per-slot row bases.
    fn row_setup(&self, row: usize, lead: &mut [usize], rowbase: &mut [i64]) -> bool {
        let plan = self.plan;
        let rank = plan.shape.len();
        let mut rem = row;
        for d in (0..rank - 1).rev() {
            lead[d] = rem % plan.shape[d];
            rem /= plan.shape[d];
        }
        // Per-slot row base: leading-dimension contribution plus the
        // constant access delta.
        for (s, slot) in plan.slots.iter().enumerate() {
            let mut base = slot.delta;
            for (d, &ix) in lead.iter().enumerate() {
                base += ix as i64 * slot.coeffs[d];
            }
            rowbase[s] = base;
        }
        plan.has_interior
            && lead
                .iter()
                .enumerate()
                .all(|(d, &ix)| ix >= plan.interior_lo[d] && ix < plan.interior_hi[d])
    }

    /// The sweep, generic over the kernel tier (monomorphized per tier, so
    /// the inner loops compile exactly as the hand-specialized versions
    /// would — with one shared copy of the interior/halo control flow).
    fn sweep<K: SweepKernel>(
        &self,
        mut kernel: K,
        template: &[K::Slot],
        row_start: usize,
        row_end: usize,
        out: &mut [f64],
        mask: &mut [bool],
    ) -> Result<(), ExprError> {
        let plan = self.plan;
        let rank = plan.shape.len();
        let row_len = plan.row_len();
        debug_assert_eq!(out.len(), (row_end - row_start) * row_len);

        let mut values = template.to_vec();
        let mut lead = vec![0usize; rank - 1];
        let mut rowbase = vec![0i64; plan.slots.len()];
        let mut index = vec![0usize; rank];

        let lo_k = plan.interior_lo[rank - 1];
        let hi_k = plan.interior_hi[rank - 1];

        for row in row_start..row_end {
            let row_interior = self.row_setup(row, &mut lead, &mut rowbase);
            index[..rank - 1].copy_from_slice(&lead);

            let out_row = &mut out[(row - row_start) * row_len..][..row_len];
            let mask_row = &mut mask[(row - row_start) * row_len..][..row_len];

            for (k, (out_cell, mask_cell)) in
                out_row.iter_mut().zip(mask_row.iter_mut()).enumerate()
            {
                if row_interior && k >= lo_k && k < hi_k {
                    // Interior fast path: every access is statically in
                    // bounds; plain strided reads, no branches, mask stays
                    // valid.
                    fill_interior_slots::<K>(plan, &self.grid_data, &rowbase, k, &mut values);
                } else {
                    // Halo: bounds-check each access and apply the boundary
                    // condition on misses.
                    index[rank - 1] = k;
                    fill_halo_slots::<K>(plan, &self.grid_data, &index, &rowbase, k, &mut values);
                    if plan.shrink {
                        *mask_cell = halo_mask_valid(plan, &index);
                    }
                }
                let result = kernel.eval(&values)?;
                *out_cell = Value::from_f64(result, plan.out_dtype).as_f64();
            }
        }
        Ok(())
    }
}
