//! Compiled execution plans: one stencil bound to concrete grids.
//!
//! The reference executor used to walk the expression tree once per cell,
//! resolving every access through a string-keyed lookup that allocated an
//! offset vector per access. A [`StencilPlan`] does all of that resolution
//! **once per stencil**:
//!
//! * the code segment is lowered to a [`CompiledKernel`] (slot-resolved
//!   bytecode, see `stencilflow_expr::compile`);
//! * every access slot is bound to its grid, a per-dimension stride
//!   coefficient vector, a precomputed flat-offset delta, and its
//!   boundary-condition action;
//! * the iteration space is split into an **interior** — where every access
//!   of the stencil is statically in bounds, so the inner loop is a pure
//!   strided array walk with no bounds checks and no branches — and a
//!   **halo**, where accesses are bounds-checked and boundary conditions
//!   applied. Out-of-bounds tracking for `shrink` masks falls out of the
//!   halo pass for free (interior cells are in bounds by construction).
//!
//! Rows (runs of the innermost dimension) are independent, so the sweep is
//! parallelized across threads with disjoint output row chunks.

use crate::grid::Grid;
use std::collections::{BTreeMap, BTreeSet};
use stencilflow_expr::{CompiledKernel, DataType, EvalScratch, ExprError, Value};
use stencilflow_program::{BoundaryCondition, StencilNode, StencilProgram};

/// How one access slot of the kernel reads its field.
#[derive(Debug)]
struct BoundSlot {
    /// Index into the plan's grid table.
    grid: usize,
    /// Per-iteration-space-dimension stride coefficient into the field's own
    /// dense storage (zero for dimensions the field does not span). The
    /// center of a cell `index` lives at flat position `dot(index, coeffs)`.
    coeffs: Vec<i64>,
    /// Constant flat-offset delta of this access relative to the center.
    delta: i64,
    /// `(space dimension, offset)` pairs to bounds-check in the halo.
    checks: Vec<(usize, i64)>,
    /// Boundary condition applied when a check fails.
    boundary: BoundaryCondition,
    /// Element type of the source grid (values are typed as the grid is).
    dtype: DataType,
    /// Scalar (0-D) access: resolved once, never re-read per cell.
    scalar: bool,
}

/// A stencil compiled and bound to its input/intermediate grids.
pub(crate) struct StencilPlan<'g> {
    kernel: CompiledKernel,
    grid_data: Vec<&'g [f64]>,
    slots: Vec<BoundSlot>,
    /// Template slot-value vector with scalar slots prefilled.
    slot_template: Vec<Value>,
    /// All syntactic `(dimension, offset)` access checks of the stencil
    /// (deduplicated) — drives the shrink mask, matching the tree-walking
    /// executor which considers every access, including ones the kernel may
    /// have folded away.
    mask_checks: Vec<(usize, i64)>,
    /// Interior bounds per dimension (`lo` inclusive, `hi` exclusive).
    interior_lo: Vec<usize>,
    interior_hi: Vec<usize>,
    has_interior: bool,
    shape: Vec<usize>,
    out_dtype: DataType,
    shrink: bool,
}

impl<'g> StencilPlan<'g> {
    /// Compile `stencil` and bind its accesses against `inputs` and the
    /// already-`computed` intermediate grids.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::UnresolvedSymbol`] if an access refers to a
    /// field with no grid (indicates a validation bug upstream), and
    /// propagates kernel compilation failures.
    pub fn build(
        program: &StencilProgram,
        stencil: &StencilNode,
        inputs: &'g BTreeMap<String, Grid>,
        computed: &'g BTreeMap<String, Grid>,
    ) -> Result<StencilPlan<'g>, ExprError> {
        let kernel = CompiledKernel::compile(&stencil.program)?;
        let space = program.space();
        let rank = space.rank();

        let mut grid_data: Vec<&[f64]> = Vec::new();
        let mut grid_table: BTreeMap<&str, (usize, &Grid)> = BTreeMap::new();
        let mut slots = Vec::with_capacity(kernel.slots().len());
        let mut slot_template = Vec::with_capacity(kernel.slots().len());

        for slot in kernel.slots() {
            let (grid_ix, grid) = match grid_table.get(slot.field.as_str()) {
                Some(&entry) => entry,
                None => {
                    let grid = inputs
                        .get(&slot.field)
                        .or_else(|| computed.get(&slot.field))
                        .ok_or_else(|| ExprError::UnresolvedSymbol {
                            name: slot.field.clone(),
                        })?;
                    let ix = grid_data.len();
                    grid_data.push(grid.as_slice());
                    grid_table.insert(slot.field.as_str(), (ix, grid));
                    (ix, grid)
                }
            };
            let mut coeffs = vec![0i64; rank];
            let mut delta = 0i64;
            let mut checks = Vec::with_capacity(slot.index_vars.len());
            for (axis, (var, &off)) in slot
                .index_vars
                .iter()
                .zip(slot.offsets.iter())
                .enumerate()
            {
                let dim = space
                    .dim_index(var)
                    .ok_or_else(|| ExprError::UnresolvedSymbol {
                        name: format!("{}{:?}", slot.field, slot.offsets),
                    })?;
                let stride = grid.strides()[axis] as i64;
                coeffs[dim] = stride;
                delta += off * stride;
                checks.push((dim, off));
            }
            let scalar = slot.is_scalar();
            slot_template.push(if scalar {
                grid.get_value(&[])
            } else {
                Value::zero(grid.data_type())
            });
            slots.push(BoundSlot {
                grid: grid_ix,
                coeffs,
                delta,
                checks,
                boundary: stencil.boundary.condition_for(&slot.field),
                dtype: grid.data_type(),
                scalar,
            });
        }

        // Interior bounds and the shrink-mask check set come from the full
        // syntactic access pattern, exactly like the tree-walking executor's
        // per-cell out-of-bounds re-walk.
        let mut min_off = vec![0i64; rank];
        let mut max_off = vec![0i64; rank];
        let mut mask_checks: BTreeSet<(usize, i64)> = BTreeSet::new();
        for (_, info) in stencil.accesses.iter() {
            for offsets in &info.offsets {
                for (var, &off) in info.index_vars.iter().zip(offsets.iter()) {
                    if let Some(dim) = space.dim_index(var) {
                        min_off[dim] = min_off[dim].min(off);
                        max_off[dim] = max_off[dim].max(off);
                        if off != 0 {
                            mask_checks.insert((dim, off));
                        }
                    }
                }
            }
        }
        let mut interior_lo = Vec::with_capacity(rank);
        let mut interior_hi = Vec::with_capacity(rank);
        let mut has_interior = true;
        for d in 0..rank {
            let lo = (-min_off[d]).max(0) as usize;
            let hi = space.shape[d] as i64 - max_off[d].max(0);
            if hi <= lo as i64 {
                has_interior = false;
            }
            interior_lo.push(lo);
            interior_hi.push(hi.max(0) as usize);
        }

        Ok(StencilPlan {
            kernel,
            grid_data,
            slots,
            slot_template,
            mask_checks: mask_checks.into_iter().collect(),
            interior_lo,
            interior_hi,
            has_interior,
            shape: space.shape.clone(),
            out_dtype: stencil.output_type,
            shrink: stencil.boundary.shrink,
        })
    }

    /// Number of rows (runs of the innermost dimension) in the sweep.
    pub fn row_count(&self) -> usize {
        self.shape[..self.shape.len() - 1].iter().product::<usize>().max(1)
    }

    /// Length of one row (innermost extent).
    pub fn row_len(&self) -> usize {
        *self.shape.last().expect("iteration spaces are never empty")
    }

    /// Sweep rows `[row_start, row_end)`, writing results into `out` and the
    /// validity mask into `mask` (both spanning exactly those rows).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (e.g. integer division by zero).
    pub fn run_rows(
        &self,
        row_start: usize,
        row_end: usize,
        out: &mut [f64],
        mask: &mut [bool],
    ) -> Result<(), ExprError> {
        let rank = self.shape.len();
        let row_len = self.row_len();
        debug_assert_eq!(out.len(), (row_end - row_start) * row_len);

        let mut scratch = EvalScratch::default();
        let mut values = self.slot_template.clone();
        let mut lead = vec![0usize; rank - 1];
        let mut rowbase = vec![0i64; self.slots.len()];
        let mut index = vec![0usize; rank];

        let lo_k = self.interior_lo[rank - 1];
        let hi_k = self.interior_hi[rank - 1];

        for row in row_start..row_end {
            // Decompose the row number into the leading index.
            let mut rem = row;
            for d in (0..rank - 1).rev() {
                lead[d] = rem % self.shape[d];
                rem /= self.shape[d];
            }
            index[..rank - 1].copy_from_slice(&lead);

            // Per-slot row base: leading-dimension contribution plus the
            // constant access delta.
            for (s, slot) in self.slots.iter().enumerate() {
                let mut base = slot.delta;
                for (d, &ix) in lead.iter().enumerate() {
                    base += ix as i64 * slot.coeffs[d];
                }
                rowbase[s] = base;
            }

            let row_interior = self.has_interior
                && lead
                    .iter()
                    .enumerate()
                    .all(|(d, &ix)| ix >= self.interior_lo[d] && ix < self.interior_hi[d]);

            let out_row = &mut out[(row - row_start) * row_len..][..row_len];
            let mask_row = &mut mask[(row - row_start) * row_len..][..row_len];

            for (k, (out_cell, mask_cell)) in
                out_row.iter_mut().zip(mask_row.iter_mut()).enumerate()
            {
                if row_interior && k >= lo_k && k < hi_k {
                    // Interior fast path: every access is statically in
                    // bounds; plain strided reads, no branches, mask stays
                    // valid.
                    for (s, slot) in self.slots.iter().enumerate() {
                        if slot.scalar {
                            continue;
                        }
                        let flat = (rowbase[s] + k as i64 * slot.coeffs[rank - 1]) as usize;
                        values[s] = Value::from_f64(self.grid_data[slot.grid][flat], slot.dtype);
                    }
                } else {
                    // Halo: bounds-check each access and apply the boundary
                    // condition on misses.
                    index[rank - 1] = k;
                    for (s, slot) in self.slots.iter().enumerate() {
                        if slot.scalar {
                            continue;
                        }
                        let in_bounds = slot.checks.iter().all(|&(dim, off)| {
                            let pos = index[dim] as i64 + off;
                            pos >= 0 && pos < self.shape[dim] as i64
                        });
                        let center = rowbase[s] - slot.delta + k as i64 * slot.coeffs[rank - 1];
                        values[s] = if in_bounds {
                            let flat = (center + slot.delta) as usize;
                            Value::from_f64(self.grid_data[slot.grid][flat], slot.dtype)
                        } else {
                            match slot.boundary {
                                BoundaryCondition::Constant(c) => Value::from_f64(c, slot.dtype),
                                BoundaryCondition::Copy => Value::from_f64(
                                    self.grid_data[slot.grid][center as usize],
                                    slot.dtype,
                                ),
                            }
                        };
                    }
                    if self.shrink {
                        *mask_cell = self.mask_checks.iter().all(|&(dim, off)| {
                            let pos = index[dim] as i64 + off;
                            pos >= 0 && pos < self.shape[dim] as i64
                        });
                    }
                }
                let result = self.kernel.eval_slots(&values, &mut scratch)?;
                *out_cell = Value::from_f64(result.as_f64(), self.out_dtype).as_f64();
            }
        }
        Ok(())
    }
}
