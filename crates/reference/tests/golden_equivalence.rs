//! Golden equivalence: the compiled-plan executor must agree **bit for bit**
//! with the tree-walking evaluator on every workload program and on randomly
//! generated stencil DAGs with varied boundary conditions.

use std::collections::BTreeMap;
use stencilflow_expr::DataType;
use stencilflow_program::{BoundaryCondition, StencilProgram, StencilProgramBuilder};
use stencilflow_reference::{generate_inputs, Grid, ReferenceExecutor};
use stencilflow_workloads::{
    chain_program, diffusion2d, diffusion3d, horizontal_diffusion, jacobi2d, jacobi3d,
    listing1::listing1_with_shape, upwind3d, upwind3d_typed, ChainSpec, HorizontalDiffusionSpec,
};

/// Run all four executor paths — tree-walking interpreter, dynamically
/// typed `Value` bytecode, scalar type-specialized kernels, and the
/// lane-batched typed sweep (the default) — and require identical bits
/// everywhere: every field (inputs included in the comparison domain via
/// the program outputs), every validity mask, and the evaluation counters.
fn assert_bit_identical(program: &StencilProgram, seed: u64) {
    let inputs = generate_inputs(program, seed);
    let executor = ReferenceExecutor::new();
    let value_executor = ReferenceExecutor::new().with_typed_kernels(false);
    let scalar_typed_executor = ReferenceExecutor::new().with_lane_batching(false);
    let compiled = executor.run(program, &inputs).unwrap();
    let value_compiled = value_executor.run(program, &inputs).unwrap();
    let scalar_typed = scalar_typed_executor.run(program, &inputs).unwrap();
    let interpreted = executor.run_interpreted(program, &inputs).unwrap();

    assert_eq!(compiled.cells_evaluated(), interpreted.cells_evaluated());
    let compiled_fields: Vec<&str> = compiled.fields().map(|(name, _)| name).collect();
    let interpreted_fields: Vec<&str> = interpreted.fields().map(|(name, _)| name).collect();
    assert_eq!(compiled_fields, interpreted_fields);

    for (name, grid) in compiled.fields() {
        let baseline = interpreted.field(name).unwrap();
        let value_grid = value_compiled.field(name).unwrap();
        let scalar_grid = scalar_typed.field(name).unwrap();
        assert_eq!(
            grid.shape(),
            baseline.shape(),
            "shape mismatch for `{name}`"
        );
        for (cell, (((a, b), c), d)) in grid
            .as_slice()
            .iter()
            .zip(baseline.as_slice().iter())
            .zip(value_grid.as_slice().iter())
            .zip(scalar_grid.as_slice().iter())
            .enumerate()
        {
            assert!(
                a.to_bits() == b.to_bits(),
                "program `{}`, field `{name}`, cell {cell}: compiled {a:?} != interpreted {b:?}",
                program.name()
            );
            assert!(
                a.to_bits() == c.to_bits(),
                "program `{}`, field `{name}`, cell {cell}: typed {a:?} != Value path {c:?}",
                program.name()
            );
            assert!(
                a.to_bits() == d.to_bits(),
                "program `{}`, field `{name}`, cell {cell}: lane-batched {a:?} != scalar typed {d:?}",
                program.name()
            );
        }
        assert_eq!(
            compiled.valid_mask(name).unwrap(),
            interpreted.valid_mask(name).unwrap(),
            "mask mismatch for `{name}` in `{}`",
            program.name()
        );
        assert_eq!(
            compiled.valid_mask(name).unwrap(),
            value_compiled.valid_mask(name).unwrap(),
            "typed/Value mask mismatch for `{name}` in `{}`",
            program.name()
        );
        assert_eq!(
            compiled.valid_mask(name).unwrap(),
            scalar_typed.valid_mask(name).unwrap(),
            "lane/scalar mask mismatch for `{name}` in `{}`",
            program.name()
        );
        assert_eq!(compiled.valid_count(name), interpreted.valid_count(name));
    }
}

#[test]
fn jacobi_workloads_match_bitwise() {
    assert_bit_identical(&jacobi2d(2, &[13, 9], 1), 1);
    assert_bit_identical(&jacobi3d(2, &[9, 7, 11], 1), 2);
}

#[test]
fn diffusion_workloads_match_bitwise() {
    assert_bit_identical(&diffusion2d(2, &[12, 10], 1), 3);
    assert_bit_identical(&diffusion3d(2, &[7, 6, 9], 1), 4);
}

#[test]
fn horizontal_diffusion_matches_bitwise() {
    assert_bit_identical(&horizontal_diffusion(&HorizontalDiffusionSpec::small()), 5);
}

#[test]
fn chain_and_listing1_match_bitwise() {
    let chain = chain_program(&ChainSpec::new(6, 8).with_shape(&[6, 5, 7]));
    assert_bit_identical(&chain, 6);
    assert_bit_identical(&listing1_with_shape(&[6, 7, 5]), 7);
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    // Big enough to cross the parallel threshold (2^15 cells).
    let program = jacobi3d(1, &[40, 32, 32], 1);
    let inputs = generate_inputs(&program, 8);
    let parallel = ReferenceExecutor::new().run(&program, &inputs).unwrap();
    let sequential = ReferenceExecutor::new()
        .with_max_threads(1)
        .run(&program, &inputs)
        .unwrap();
    assert_bit_identical(&program, 8);
    for (name, grid) in parallel.fields() {
        let baseline = sequential.field(name).unwrap();
        for (a, b) in grid.as_slice().iter().zip(baseline.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn boundary_condition_variety_matches_bitwise() {
    // Exercise constant / copy boundaries, shrink masks, lower-dimensional
    // and scalar inputs, ternaries, math functions, and f64 output types in
    // one DAG — the halo paths of the plan must mirror the evaluator.
    let program = StencilProgramBuilder::new("boundaries", &[9, 8, 7])
        .input("u", DataType::Float32, &["i", "j", "k"])
        .input("surf", DataType::Float32, &["i", "k"])
        .scalar("dt", DataType::Float32)
        .stencil(
            "lap",
            "-4.0*u[i,j,k] + u[i-1,j,k] + u[i+1,j,k] + u[i,j-1,k] + u[i,j+1,k]",
        )
        .boundary("lap", "u", BoundaryCondition::Constant(1.5))
        .stencil("flux", "d = lap[i,j,k] - lap[i,j,k-1]; d * surf[i,k] + dt")
        .boundary("flux", "lap", BoundaryCondition::Copy)
        .shrink("flux")
        .stencil(
            "out",
            "flux[i,j,k] > 0.0 ? sqrt(abs(flux[i,j,k])) : min(flux[i-2,j,k], 0.5)",
        )
        .shrink("out")
        .output_type("out", DataType::Float64)
        .output("out")
        .build()
        .unwrap();
    assert_bit_identical(&program, 9);
}

#[test]
fn copy_boundaries_on_full_rank_fields_match_bitwise() {
    // The compiled halo path reads the center cell unchecked for `copy`
    // boundaries; pin it bitwise against the interpreter on every edge and
    // corner of a 3-D domain, for f32 and f64 output types.
    let program = StencilProgramBuilder::new("copy3d", &[5, 4, 6])
        .input("u", DataType::Float32, &["i", "j", "k"])
        .stencil(
            "s",
            "u[i-1,j,k] + u[i+1,j,k] + u[i,j-2,k] + u[i,j+2,k] + u[i,j,k-1] + u[i,j,k+1]",
        )
        .boundary("s", "u", BoundaryCondition::Copy)
        .stencil("t", "0.5 * s[i-2,j-1,k-2] + 0.25 * s[i+2,j+1,k+2]")
        .boundary("t", "s", BoundaryCondition::Copy)
        .output_type("t", DataType::Float64)
        .output("t")
        .build()
        .unwrap();
    assert_bit_identical(&program, 21);
}

#[test]
fn copy_boundaries_on_lower_dimensional_fields_match_bitwise() {
    // Copy boundaries on fields that span only a subset of the iteration
    // space: the center read must land in the field's own storage.
    let program = StencilProgramBuilder::new("copy_lowdim", &[6, 5, 7])
        .input("u", DataType::Float32, &["i", "j", "k"])
        .input("surf", DataType::Float32, &["i", "k"])
        .input("col", DataType::Float64, &["j"])
        .stencil("s", "u[i,j,k] + surf[i-2,k+1] * 0.5 + col[j-1]")
        .boundary("s", "surf", BoundaryCondition::Copy)
        .boundary("s", "col", BoundaryCondition::Copy)
        .shrink("s")
        .output("s")
        .build()
        .unwrap();
    assert_bit_identical(&program, 22);

    // One-dimensional domain: every cell is halo in some access.
    let program = StencilProgramBuilder::new("copy1d", &[5])
        .input("a", DataType::Float32, &["i"])
        .stencil("s", "a[i-3] + a[i+3]")
        .boundary("s", "a", BoundaryCondition::Copy)
        .output("s")
        .build()
        .unwrap();
    assert_bit_identical(&program, 23);
}

#[test]
fn run_steps_matches_interpreted_ping_pong_bitwise() {
    let program = jacobi2d(1, &[9, 8], 1);
    let inputs = generate_inputs(&program, 31);
    let executor = ReferenceExecutor::new();
    let stepped = executor.run_steps(&program, &inputs, 4).unwrap();

    // Interpreted ping-pong: feed the output back by hand.
    let mut work = inputs.clone();
    let mut last = None;
    for _ in 0..4 {
        let result = executor.run_interpreted(&program, &work).unwrap();
        work.insert("f0".to_string(), result.field("f1").unwrap().clone());
        last = Some(result);
    }
    let manual = last.unwrap();
    for (a, b) in stepped
        .field("f1")
        .unwrap()
        .as_slice()
        .iter()
        .zip(manual.field("f1").unwrap().as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(
        stepped.valid_mask("f1").unwrap(),
        manual.valid_mask("f1").unwrap()
    );
}

#[test]
fn random_small_dags_match_bitwise() {
    // Deterministic pseudo-random DAG sweep in the spirit of the
    // cross-crate property tests: every stage reads earlier fields at small
    // offsets with a mix of boundary conditions.
    for seed in 0..24u64 {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        let stages = 1 + next(5) as usize;
        let mut builder = StencilProgramBuilder::new("random", &[9, 11]).input(
            "src",
            DataType::Float32,
            &["i", "j"],
        );
        let mut produced = vec!["src".to_string()];
        for stage in 0..stages {
            let name = format!("s{stage}");
            let a = produced[next(produced.len() as u64) as usize].clone();
            let di = next(5) as i64 - 2;
            let dj = next(3) as i64 - 1;
            let fi = match di.cmp(&0) {
                std::cmp::Ordering::Equal => "i".to_string(),
                std::cmp::Ordering::Greater => format!("i+{di}"),
                std::cmp::Ordering::Less => format!("i{di}"),
            };
            let fj = match dj.cmp(&0) {
                std::cmp::Ordering::Equal => "j".to_string(),
                std::cmp::Ordering::Greater => format!("j+{dj}"),
                std::cmp::Ordering::Less => format!("j{dj}"),
            };
            let code = format!("0.5 * {a}[{fi},{fj}] + 0.25 * {a}[i,j] + 1.0");
            builder = builder.stencil(&name, &code);
            match next(3) {
                0 => builder = builder.boundary(&name, &a, BoundaryCondition::Constant(2.5)),
                1 => builder = builder.boundary(&name, &a, BoundaryCondition::Copy),
                _ => builder = builder.shrink(&name),
            }
            produced.push(name);
        }
        let last = produced.last().unwrap().clone();
        let program = builder.output(&last).build().unwrap();
        assert_bit_identical(&program, seed);
    }
}

#[test]
fn wide_lane_dispatch_is_bit_identical_and_engages_on_f32() {
    // The width-aware lane dispatch: all-f32 kernels on long rows batch
    // 16 wide, f64 kernels and short rows keep the default width — and
    // every width produces identical bits (a lane computes the same ops
    // regardless of how cells are grouped into batches).
    let executor = ReferenceExecutor::new();
    let f32_long = jacobi3d(2, &[20, 10, 64], 1);
    let compiled = executor.prepare(&f32_long).unwrap();
    assert_eq!(compiled.wide_lane_stencil_count(), compiled.stencil_count());
    let f64_long = stencilflow_workloads::jacobi3d_typed(2, &[20, 10, 64], 1, DataType::Float64);
    let compiled = executor.prepare(&f64_long).unwrap();
    assert_eq!(compiled.wide_lane_stencil_count(), 0);
    assert_eq!(compiled.lane_stencil_count(), compiled.stencil_count());
    let f32_short = jacobi3d(2, &[20, 20, 32], 1);
    let compiled = executor.prepare(&f32_short).unwrap();
    assert_eq!(compiled.wide_lane_stencil_count(), 0);

    let narrow_executor = ReferenceExecutor::new().with_wide_lanes(false);
    for (program, seed) in [(&f32_long, 91u64), (&f64_long, 92), (&f32_short, 93)] {
        assert_bit_identical(program, seed);
        let inputs = generate_inputs(program, seed);
        let wide = executor.run(program, &inputs).unwrap();
        let narrow = narrow_executor.run(program, &inputs).unwrap();
        for (name, grid) in wide.fields() {
            let baseline = narrow.field(name).unwrap();
            for (a, b) in grid.as_slice().iter().zip(baseline.as_slice().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "wide/narrow mismatch in `{name}`");
            }
        }
    }

    // Odd row lengths drive the wide mixed-batch and remainder paths.
    for width in [64usize, 65, 71, 79] {
        assert_bit_identical(&jacobi3d(1, &[6, 5, width], 1), 94 + width as u64);
    }
}

#[test]
fn lane_batched_sweep_is_engaged_on_jacobi() {
    // The lane tier must actually dispatch (not silently fall back to the
    // scalar typed kernel) on the flagship workloads.
    let executor = ReferenceExecutor::new();
    let jacobi = executor.prepare(&jacobi3d(2, &[16, 16, 16], 1)).unwrap();
    assert_eq!(jacobi.lane_stencil_count(), jacobi.stencil_count());
    let diffusion = executor.prepare(&diffusion2d(2, &[16, 16], 1)).unwrap();
    assert!(diffusion.lane_stencil_count() > 0);
}

#[test]
fn branchy_upwind_matches_bitwise_and_lane_batches() {
    // The branchy workload: data-dependent ternaries that only lane-batch
    // because the if-conversion pass lowers their diamonds to selects.
    // Every tier (interpreter, Value bytecode, scalar typed, lane-batched)
    // must agree bitwise, and the lane tier must actually engage.
    for dtype in [DataType::Float32, DataType::Float64] {
        let program = upwind3d_typed(2, &[7, 9, 11], 1, dtype);
        assert_bit_identical(&program, 61);
        let executor = ReferenceExecutor::new();
        let compiled = executor.prepare(&program).unwrap();
        assert_eq!(
            compiled.lane_stencil_count(),
            compiled.stencil_count(),
            "if-converted upwind kernels must dispatch to the lane tier"
        );
    }
}

#[test]
fn branchy_upwind_matches_on_remainder_widths() {
    // Innermost extents straddling the lane width, exercising the halo
    // lane path and the scalar row remainder on a select-carrying kernel.
    for width in [1usize, 2, 3, 7, 8, 9, 11, 16, 20] {
        let program = upwind3d(1, &[4, 5, width], 1);
        assert_bit_identical(&program, 70 + width as u64);
    }
}

#[test]
fn halo_lane_path_matches_on_wide_halos() {
    // Deep halos on both ends of the innermost dimension with mixed
    // boundary conditions: whole batches land in the halo (and in the
    // halo/interior transition), driving the lane-batched halo gather
    // rather than the per-cell fallback.
    let program = StencilProgramBuilder::new("deep_halo", &[5, 24])
        .input("a", DataType::Float32, &["i", "j"])
        .input("b", DataType::Float32, &["i", "j"])
        .stencil(
            "s",
            "x = a[i,j-9] + a[i,j+9] + b[i-1,j]; x > 0.0 ? x * b[i,j] : a[i,j]",
        )
        .boundary("s", "a", BoundaryCondition::Constant(0.75))
        .boundary("s", "b", BoundaryCondition::Copy)
        .shrink("s")
        .output("s")
        .build()
        .unwrap();
    assert_bit_identical(&program, 83);
}

#[test]
fn lane_batched_matches_scalar_typed_on_remainder_widths() {
    // Innermost extents straddling the lane width (KERNEL_LANES = 8):
    // shorter than one batch, exactly one batch, and batch + remainder —
    // every cell of every width must match the scalar typed sweep bitwise,
    // for f32 (per-op rounding) and f64 workloads.
    for width in [1usize, 2, 3, 7, 8, 9, 11, 16, 20] {
        for dtype in [DataType::Float32, DataType::Float64] {
            let program = StencilProgramBuilder::new("lane_rem", &[5, width])
                .input("u", dtype, &["i", "j"])
                .stencil(
                    "s",
                    "0.2 * (u[i,j] + u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1])",
                )
                .boundary("s", "u", BoundaryCondition::Constant(0.25))
                .stencil("t", "sqrt(abs(s[i,j-2])) + s[i,j] * 0.5")
                .boundary("t", "s", BoundaryCondition::Copy)
                .output_type("t", dtype)
                .output("t")
                .build()
                .unwrap();
            assert_bit_identical(&program, 40 + width as u64);
        }
    }
}

#[test]
fn lane_batched_matches_scalar_typed_on_low_rank_fields() {
    // One-dimensional iteration space: rows are single innermost runs.
    let program = StencilProgramBuilder::new("lane_1d", &[19])
        .input("a", DataType::Float32, &["i"])
        .stencil("s", "0.5 * (a[i-1] + a[i+1]) - a[i]")
        .boundary("s", "a", BoundaryCondition::Copy)
        .output("s")
        .build()
        .unwrap();
    assert_bit_identical(&program, 51);

    // Broadcast slots: `col[i]` does not span the innermost dimension, so
    // its innermost stride is zero and the lane gather broadcasts; `row[j]`
    // spans only the innermost dimension with unit stride.
    let program = StencilProgramBuilder::new("lane_broadcast", &[6, 17])
        .input("u", DataType::Float64, &["i", "j"])
        .input("col", DataType::Float64, &["i"])
        .input("row", DataType::Float64, &["j"])
        .scalar("dt", DataType::Float64)
        .stencil("s", "u[i,j-1] + u[i,j+1] + col[i] * row[j-1] + dt")
        .shrink("s")
        .output("s")
        .build()
        .unwrap();
    assert_bit_identical(&program, 52);
}

#[test]
fn compiled_path_handles_explicit_grids() {
    // Hand-checked values through the compiled path (not just equivalence).
    let program = StencilProgramBuilder::new("p", &[4])
        .input("a", DataType::Float32, &["i"])
        .stencil("s", "a[i-1] + a[i+1]")
        .output("s")
        .build()
        .unwrap();
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "a".to_string(),
        Grid::from_values(&["i"], &[4], &[1.0, 2.0, 3.0, 4.0]),
    );
    let result = ReferenceExecutor::new().run(&program, &inputs).unwrap();
    // Zero-constant default boundaries: s = [2, 4, 6, 3].
    assert_eq!(result.field("s").unwrap().as_slice(), &[2.0, 4.0, 6.0, 3.0]);
}
