//! Golden equivalence of the Tier-4 native backend: JIT execution must
//! agree **bit for bit** with the tree-walking interpreter on every
//! program output — values and shrink masks — across tile heights, window
//! sizes, and workloads, including programs that fall back to the fused
//! tier (statically ineligible) or the materializing path (fusion
//! ineligible). These tests require a working system `cc` (the CI image
//! guarantees one; `verify.sh` probes for it up front).

use std::collections::BTreeMap;
use stencilflow_expr::DataType;
use stencilflow_program::{BoundaryCondition, StencilProgram, StencilProgramBuilder};
use stencilflow_reference::{generate_inputs, Grid, ReferenceExecutor};
use stencilflow_workloads::{
    chain_program, diffusion2d, diffusion3d, horizontal_diffusion, jacobi2d, jacobi3d,
    jacobi3d_typed, listing1::listing1_with_shape, membench_program, upwind3d_typed, ChainSpec,
    HorizontalDiffusionSpec, MembenchSpec,
};

/// Compare two results on the program outputs, bitwise, masks included.
fn assert_outputs_match(
    program: &StencilProgram,
    label: &str,
    jit: &stencilflow_reference::ExecutionResult,
    baseline: &stencilflow_reference::ExecutionResult,
) {
    for output in program.outputs() {
        let f = jit
            .field(output)
            .unwrap_or_else(|| panic!("jit result misses output `{output}`"));
        let b = baseline.field(output).unwrap();
        assert_eq!(f.shape(), b.shape());
        for (cell, (x, y)) in f.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "program `{}` ({label}), output `{output}`, cell {cell}: \
                 jit {x:?} != baseline {y:?}",
                program.name()
            );
        }
        assert_eq!(
            jit.valid_mask(output).unwrap(),
            baseline.valid_mask(output).unwrap(),
            "mask mismatch for `{output}` in `{}` ({label})",
            program.name()
        );
    }
}

/// Run the JIT tier under several tile heights and compare each against
/// the interpreter.
fn assert_jit_bit_identical(program: &StencilProgram, seed: u64) {
    let inputs = generate_inputs(program, seed);
    let plain = ReferenceExecutor::new();
    let interpreted = plain.run_interpreted(program, &inputs).unwrap();
    for tile_rows in [0usize, 1, 2, 5] {
        let executor = ReferenceExecutor::new().with_fusion_tile_rows(tile_rows);
        let jit = executor.run_jit(program, &inputs).unwrap();
        assert_outputs_match(
            program,
            &format!("tile_rows={tile_rows}"),
            &jit,
            &interpreted,
        );
        // JIT results carry exactly the program outputs, like the fused tier.
        let fields: Vec<&str> = jit.fields().map(|(name, _)| name).collect();
        assert_eq!(fields.len(), program.outputs().len());
    }
}

/// JIT time stepping across window sizes and tile heights vs the
/// materializing stepper.
fn assert_jit_steps_bit_identical(program: &StencilProgram, seed: u64, steps: usize) {
    let inputs = generate_inputs(program, seed);
    let plain = ReferenceExecutor::new();
    let baseline = plain.run_steps(program, &inputs, steps).unwrap();
    for window in [1usize, 2, steps.max(1)] {
        for tile_rows in [0usize, 1, 3] {
            let executor = ReferenceExecutor::new()
                .with_fusion_window(window)
                .with_fusion_tile_rows(tile_rows);
            let jit = executor.run_steps_jit(program, &inputs, steps).unwrap();
            assert_outputs_match(
                program,
                &format!("steps={steps} window={window} tile_rows={tile_rows}"),
                &jit,
                &baseline,
            );
        }
    }
}

fn assert_eligible(program: &StencilProgram) {
    let compiled = ReferenceExecutor::new().prepare(program).unwrap();
    assert!(
        compiled.jit_supported(),
        "`{}` should be Tier-4 eligible: {:?}",
        program.name(),
        compiled.jit_fallback_reason()
    );
    let source = compiled.jit_source().unwrap();
    assert!(
        source.contains("sf_stage_"),
        "emitted unit must define stage symbols"
    );
}

#[test]
fn cc_is_available_in_the_test_environment() {
    // The whole suite is vacuous without a compiler; fail loudly rather
    // than silently testing the fallback ladder only.
    stencilflow_reference::jit_available().expect("system cc must be available for JIT tests");
}

#[test]
fn jit_matches_on_jacobi_and_diffusion() {
    for program in [
        jacobi2d(2, &[13, 9], 1),
        jacobi3d(2, &[9, 7, 11], 1),
        jacobi3d_typed(2, &[9, 7, 11], 1, DataType::Float64),
        diffusion2d(2, &[12, 10], 1),
        diffusion3d(2, &[7, 6, 9], 1),
    ] {
        assert_eligible(&program);
    }
    assert_jit_bit_identical(&jacobi2d(2, &[13, 9], 1), 1);
    assert_jit_bit_identical(&jacobi3d(2, &[9, 7, 11], 1), 2);
    assert_jit_bit_identical(&jacobi3d_typed(2, &[9, 7, 11], 1, DataType::Float64), 3);
    assert_jit_bit_identical(&diffusion2d(2, &[12, 10], 1), 4);
    assert_jit_bit_identical(&diffusion3d(2, &[7, 6, 9], 1), 5);
}

#[test]
fn jit_matches_on_chains_and_membench() {
    let chain = chain_program(&ChainSpec::new(6, 8).with_shape(&[6, 5, 7]));
    assert_eligible(&chain);
    assert_jit_bit_identical(&chain, 11);
    let mem = membench_program(&MembenchSpec::new(8, 1).with_shape(&[16, 8, 8]));
    assert_jit_bit_identical(&mem, 12);
}

#[test]
fn jit_matches_on_branchy_division_and_clamp_kernels() {
    // Upwind kernels are ternary-heavy: typed if-conversion must leave
    // them branch-free, the emitter turns the selects into C ternaries
    // (or fused fmin/fmax), and IEEE special values must round-trip.
    for dtype in [DataType::Float32, DataType::Float64] {
        let program = upwind3d_typed(2, &[7, 9, 11], 1, dtype);
        assert_eligible(&program);
        assert_jit_bit_identical(&program, 21);
    }
    // Division in a ternary arm: inf/NaN from the unselected arm must
    // match the interpreter bitwise.
    let program = StencilProgramBuilder::new("divsel", &[6, 12])
        .input("a", DataType::Float32, &["i", "j"])
        .input("b", DataType::Float32, &["i", "j"])
        .stencil("s", "b[i,j] > 0.25 ? a[i,j] / b[i,j-1] : a[i-1,j]")
        .shrink("s")
        .output("s")
        .build()
        .unwrap();
    assert_eligible(&program);
    assert_jit_bit_identical(&program, 22);
    // A clamp the emitter fuses to fmin/fmax. Float64 input: the f32
    // variant mixes an F32 slot with the F64 literal in the select arms
    // and never specializes (no typed kernel), so it exercises the
    // fallback ladder instead of the emitter.
    let clamp = StencilProgramBuilder::new("clamp", &[9, 8])
        .input("a", DataType::Float64, &["i", "j"])
        .stencil("s", "a[i,j] < 0.5 ? a[i,j] : 0.5")
        .output_type("s", DataType::Float64)
        .output("s")
        .build()
        .unwrap();
    assert_eligible(&clamp);
    let compiled = ReferenceExecutor::new().prepare(&clamp).unwrap();
    assert!(
        compiled.jit_source().unwrap().contains("fmin"),
        "literal-else clamp should fuse to fmin in the emitted unit"
    );
    assert_jit_bit_identical(&clamp, 23);
    // f32 math-call kernel: every store must carry the (double)(float)
    // round wrap, and fmin on exact f32 values round-trips exactly.
    let minf = StencilProgramBuilder::new("minf", &[9, 8])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("s", "min(a[i,j], a[i,j-1] * 0.75)")
        .output("s")
        .build()
        .unwrap();
    assert_eligible(&minf);
    let compiled = ReferenceExecutor::new().prepare(&minf).unwrap();
    assert!(compiled.jit_source().unwrap().contains("(double)(float)("));
    assert_jit_bit_identical(&minf, 24);
}

#[test]
fn jit_matches_on_boundary_and_geometry_variety() {
    // Mixed constant boundaries, shrink masks, scalars, f64 outputs, deep
    // halos — the same torture program the fused tier pins.
    let program = StencilProgramBuilder::new("constants", &[7, 6, 9])
        .input("u", DataType::Float32, &["i", "j", "k"])
        .scalar("dt", DataType::Float32)
        .stencil(
            "lap",
            "-4.0*u[i,j,k] + u[i-1,j,k] + u[i+1,j,k] + u[i,j-1,k] + u[i,j+1,k]",
        )
        .boundary("lap", "u", BoundaryCondition::Constant(1.5))
        .stencil("flux", "lap[i,j,k] - lap[i,j,k-2] + dt")
        .boundary("flux", "lap", BoundaryCondition::Constant(-2.25))
        .shrink("flux")
        .stencil("out", "flux[i,j,k] * flux[i+2,j,k]")
        .shrink("out")
        .output_type("out", DataType::Float64)
        .output("out")
        .build()
        .unwrap();
    assert_eligible(&program);
    assert_jit_bit_identical(&program, 31);

    // One-dimensional domain: the native sweep degenerates to one row.
    let program = StencilProgramBuilder::new("jit1d", &[23])
        .input("a", DataType::Float32, &["i"])
        .stencil("s", "a[i-3] + a[i+2] * 0.5")
        .boundary("s", "a", BoundaryCondition::Constant(0.75))
        .shrink("s")
        .output("s")
        .build()
        .unwrap();
    assert_eligible(&program);
    assert_jit_bit_identical(&program, 32);

    // Remainder-heavy innermost extents around the fused lane widths.
    for width in [1usize, 3, 8, 9, 17, 33] {
        assert_jit_bit_identical(&jacobi2d(1, &[5, width], 1), 40 + width as u64);
    }
}

#[test]
fn jit_steps_match_materializing_steps() {
    assert_jit_steps_bit_identical(&jacobi3d(1, &[9, 8, 10], 1), 61, 5);
    assert_jit_steps_bit_identical(&jacobi2d(1, &[11, 9], 1), 62, 7);
    assert_jit_steps_bit_identical(&jacobi3d_typed(1, &[6, 7, 9], 1, DataType::Float64), 63, 4);

    // Coupled multi-field state with prefix pairing.
    let coupled = StencilProgramBuilder::new("coupled", &[10, 12])
        .input("h", DataType::Float32, &["i", "j"])
        .input("h2", DataType::Float32, &["i", "j"])
        .stencil("h_next", "0.5 * (h[i-1,j] + h[i+1,j]) + 0.1 * h2[i,j]")
        .stencil("h2_next", "h2[i,j-1] * 0.25 + h[i,j]")
        .output("h_next")
        .output("h2_next")
        .build()
        .unwrap();
    assert_eligible(&coupled);
    assert_jit_steps_bit_identical(&coupled, 65, 5);

    // Unpairable programs error exactly like the other steppers.
    let unpairable = StencilProgramBuilder::new("unpairable", &[6])
        .input("a", DataType::Float32, &["i"])
        .stencil("x", "a[i] + 1.0")
        .stencil("y", "a[i] * 2.0")
        .output("x")
        .output("y")
        .build()
        .unwrap();
    let executor = ReferenceExecutor::new();
    let inputs = generate_inputs(&unpairable, 1);
    assert!(executor.run_steps_jit(&unpairable, &inputs, 3).is_err());
    assert!(executor.run_steps_jit(&unpairable, &inputs, 1).is_err());
    assert!(executor.run_steps_jit(&unpairable, &inputs, 0).is_err());
}

#[test]
fn ineligible_programs_fall_back_bit_identically() {
    let executor = ReferenceExecutor::new();

    // Fusion-ineligible programs fall all the way to the materializing
    // path, and the JIT fallback reason names the fused tier's reason.
    let listing = listing1_with_shape(&[6, 7, 5]);
    let compiled = executor.prepare(&listing).unwrap();
    assert!(!compiled.jit_supported());
    assert!(compiled
        .jit_fallback_reason()
        .unwrap()
        .contains("fused tier unavailable"));
    assert!(compiled.jit_source().is_none());
    assert_jit_bit_identical(&listing, 71);

    let hd = horizontal_diffusion(&HorizontalDiffusionSpec::small());
    let compiled = executor.prepare(&hd).unwrap();
    assert!(!compiled.jit_supported());
    assert_jit_bit_identical(&hd, 72);

    // Copy boundaries: fused-ineligible, same ladder.
    let copy = StencilProgramBuilder::new("copyb", &[6, 8])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("s", "a[i-1,j] + a[i+1,j]")
        .boundary("s", "a", BoundaryCondition::Copy)
        .output("s")
        .build()
        .unwrap();
    let compiled = executor.prepare(&copy).unwrap();
    assert!(!compiled.jit_supported());
    assert_jit_bit_identical(&copy, 74);

    // The middle rung of the ladder: *fused*-supported, but the int32
    // output keeps Tier-4 off (the native sweep stores raw doubles; only
    // float outputs round-trip losslessly). run_jit lands on the fused
    // tier, still bit-identical.
    let intout = StencilProgramBuilder::new("intout", &[6, 8])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("s", "a[i-1,j] + a[i+1,j]")
        .output_type("s", DataType::Int32)
        .output("s")
        .build()
        .unwrap();
    let compiled = executor.prepare(&intout).unwrap();
    assert!(compiled.fused_tier_supported());
    assert!(!compiled.jit_supported());
    assert!(compiled
        .jit_fallback_reason()
        .unwrap()
        .contains("not a float type"));
    assert_jit_bit_identical(&intout, 75);
}

#[test]
fn jit_reuses_modules_and_pool_in_steady_state() {
    // Same executor, same program: the second run must reuse the loaded
    // module (in-process map) and the pooled scratch buffers. The strict
    // zero-`cc`-invocation guarantee across *processes* is asserted by the
    // `jit_gate` binary under `verify.sh --assert-cached`.
    let program = jacobi3d(1, &[12, 10, 16], 1);
    let inputs = generate_inputs(&program, 91);
    let executor = ReferenceExecutor::new().with_fusion_window(2);
    executor.run_steps_jit(&program, &inputs, 6).unwrap();
    let warm_misses = executor.pool_miss_count();
    assert!(warm_misses > 0, "the first run must populate the pool");
    for _ in 0..3 {
        executor.run_steps_jit(&program, &inputs, 6).unwrap();
    }
    assert_eq!(
        executor.pool_miss_count(),
        warm_misses,
        "steady-state jit stepping must reuse pooled buffers"
    );
    let stats = stencilflow_reference::jit_cache_stats().expect("engine initialized");
    assert!(
        stats.hits + stats.misses > 0,
        "jit runs must go through the code cache"
    );
}

#[test]
fn jit_parallel_tiling_matches_sequential() {
    let program = jacobi3d(2, &[40, 16, 16], 1);
    let inputs = generate_inputs(&program, 101);
    let sequential = ReferenceExecutor::new()
        .with_max_threads(1)
        .with_fusion_tile_rows(4)
        .run_jit(&program, &inputs)
        .unwrap();
    let parallel = ReferenceExecutor::new()
        .with_fusion_tile_rows(4)
        .run_jit(&program, &inputs)
        .unwrap();
    for output in program.outputs() {
        for (a, b) in sequential
            .field(output)
            .unwrap()
            .as_slice()
            .iter()
            .zip(parallel.field(output).unwrap().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn jit_handles_explicit_values() {
    // Hand-checked values through the native path (not just equivalence).
    let program = StencilProgramBuilder::new("p", &[4])
        .input("a", DataType::Float32, &["i"])
        .stencil("s", "a[i-1] + a[i+1]")
        .output("s")
        .build()
        .unwrap();
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "a".to_string(),
        Grid::from_values(&["i"], &[4], &[1.0, 2.0, 3.0, 4.0]),
    );
    let result = ReferenceExecutor::new().run_jit(&program, &inputs).unwrap();
    assert_eq!(result.field("s").unwrap().as_slice(), &[2.0, 4.0, 6.0, 3.0]);
}
