//! Resilience contracts of the serving daemon and the panic-isolating
//! batch layer underneath it:
//!
//! * a poison job comes back as a structured `Panicked` outcome while the
//!   rest of the batch completes bitwise-identically, and the pooled
//!   buffers it touched recycle (0 new misses afterwards);
//! * admission control sheds load with stable `SF04xx` codes (queue
//!   bound, per-tenant in-flight caps and cell budgets, per-job size
//!   bound, duplicate ids, draining);
//! * deadlines replace FIFO: dispatch is earliest-deadline-first, lapsed
//!   hard timeouts cancel before start, the watchdog cancels mid-run;
//! * graceful drain settles everything (the seeded chaos test runs
//!   poison + over-quota + hard-timeout + mid-stream shutdown in one
//!   daemon lifetime);
//! * exported tier decisions reload on a fresh executor with zero
//!   re-measurements and bitwise-identical results; a wrong salt
//!   discards them as stale; malformed caches error.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use stencilflow_json::Json;
use stencilflow_program::StencilProgram;
use stencilflow_reference::{
    generate_inputs, CancelReason, Daemon, DaemonConfig, DaemonOutcome, DaemonRequest,
    ExecutionResult, Grid, JobError, JobFault, JobSpec, JobStatus, ReferenceExecutor, RejectReason,
    ServeConfig, ServeExecutor, TenantQuota, Tier,
};
use stencilflow_workloads::{diffusion2d, jacobi2d, jacobi3d};

fn assert_outputs_bitwise(program: &StencilProgram, got: &ExecutionResult, want: &ExecutionResult) {
    for name in program.outputs() {
        let got_grid = got
            .field(name)
            .unwrap_or_else(|| panic!("{}: missing output `{name}`", program.name()));
        let want_grid = want.field(name).expect("reference computes every output");
        assert_eq!(got_grid.shape(), want_grid.shape());
        for (ix, (a, b)) in got_grid
            .as_slice()
            .iter()
            .zip(want_grid.as_slice())
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: output `{name}` differs at flat index {ix}",
                program.name()
            );
        }
    }
}

fn job(program: &Arc<StencilProgram>, inputs: &Arc<BTreeMap<String, Grid>>) -> JobSpec {
    JobSpec::new(Arc::clone(program), Arc::clone(inputs))
}

/// Collect daemon outcomes into an id-keyed map.
fn drain_collect(daemon: &Daemon) -> (BTreeMap<String, JobStatus>, bool) {
    let outcomes: Mutex<Vec<DaemonOutcome>> = Mutex::new(Vec::new());
    let report = daemon.drain(|outcome| {
        outcomes.lock().expect("sink poisoned").push(outcome);
    });
    let map = outcomes
        .into_inner()
        .expect("sink poisoned")
        .into_iter()
        .map(|o| (o.id, o.status))
        .collect();
    (map, report.clean)
}

// ---------------------------------------------------------------------
// Panic isolation on the batch layer (satellite: replace the join-abort
// with per-job isolation; pooled buffers must recycle after a poison job).
// ---------------------------------------------------------------------

#[test]
fn poison_job_is_isolated_and_pooled_buffers_recycle() {
    let serve = ServeExecutor::new(ServeConfig::new().with_workers(2));
    let program = Arc::new(jacobi2d(2, &[20, 16], 1));
    let inputs = Arc::new(generate_inputs(&program, 42));
    let expected = ReferenceExecutor::new()
        .run_interpreted(&program, &inputs)
        .unwrap();
    // The strict 0-miss guarantee is the banded tier's (fused/jit own
    // internal scratch); pin it so the invariant is exact.
    let clean = job(&program, &inputs).with_tier(Tier::Simd);
    for _ in 0..2 {
        let outcome = serve.run_one(clean.clone());
        serve.recycle(outcome.result.expect("warmup runs clean"));
    }
    let warm = serve.stats();

    let outcome = serve.run_one(clean.clone().with_fault(JobFault::Poison));
    match outcome.result {
        Err(JobError::Panicked(message)) => {
            assert!(message.contains("injected poison-job fault"), "{message}")
        }
        other => panic!("poison job must surface as Panicked, got {other:?}"),
    }

    // The executor still serves, bitwise, with zero new pool misses: the
    // poison job's buffers went back to the pool on the error path.
    let outcome = serve.run_one(clean.clone());
    let result = outcome.result.expect("the batch layer survives poison");
    assert_outputs_bitwise(&program, &result, &expected);
    serve.recycle(result);
    let after = serve.stats();
    assert_eq!(
        after.pool_misses, warm.pool_misses,
        "poison job leaked pooled buffers"
    );
    assert_eq!(
        after.mask_misses, warm.mask_misses,
        "poison job leaked pooled masks"
    );
}

#[test]
fn batch_with_poison_jobs_completes_and_stays_bitwise() {
    let serve = ServeExecutor::new(ServeConfig::new().with_workers(3));
    let program = Arc::new(diffusion2d(2, &[18, 14], 1));
    let inputs = Arc::new(generate_inputs(&program, 7));
    let expected = ReferenceExecutor::new()
        .run_interpreted(&program, &inputs)
        .unwrap();
    let clean = job(&program, &inputs);
    let jobs = vec![
        clean.clone(),
        clean.clone().with_fault(JobFault::Poison),
        clean.clone(),
        clean.clone().with_fault(JobFault::Poison),
        clean.clone(),
    ];
    let mut statuses = vec![None, None, None, None, None];
    for outcome in serve.run_batch(jobs) {
        statuses[outcome.job] = Some(outcome.result);
    }
    for (ix, slot) in statuses.into_iter().enumerate() {
        let result = slot.expect("every job settles exactly once");
        if ix % 2 == 1 {
            assert!(
                matches!(result, Err(JobError::Panicked(_))),
                "job {ix} should have panicked"
            );
        } else {
            let result = result.unwrap_or_else(|e| panic!("job {ix}: {e}"));
            assert_outputs_bitwise(&program, &result, &expected);
            serve.recycle(result);
        }
    }
}

// ---------------------------------------------------------------------
// Admission control and quotas.
// ---------------------------------------------------------------------

#[test]
fn bounded_queue_sheds_load_with_queue_full() {
    let daemon = Daemon::new(
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(1))
            .with_queue_capacity(1),
    );
    let program = Arc::new(jacobi2d(1, &[8, 8], 1));
    let inputs = Arc::new(generate_inputs(&program, 1));
    assert!(daemon
        .submit(DaemonRequest::new("a", "t", job(&program, &inputs)))
        .is_ok());
    let reject = daemon
        .submit(DaemonRequest::new("b", "t", job(&program, &inputs)))
        .unwrap_err();
    assert!(matches!(reject, RejectReason::QueueFull { capacity: 1 }));
    assert_eq!(reject.code(), "SF0401");
    drain_collect(&daemon);
}

#[test]
fn tenant_in_flight_cap_releases_after_completion() {
    let daemon = Daemon::new(
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(1))
            .with_default_quota(TenantQuota::new().with_max_in_flight(1)),
    );
    let program = Arc::new(jacobi2d(1, &[8, 8], 1));
    let inputs = Arc::new(generate_inputs(&program, 2));
    assert!(daemon
        .submit(DaemonRequest::new("j1", "t", job(&program, &inputs)))
        .is_ok());
    let reject = daemon
        .submit(DaemonRequest::new("j2", "t", job(&program, &inputs)))
        .unwrap_err();
    assert_eq!(reject.code(), "SF0402");
    // Other tenants keep flowing.
    assert!(daemon
        .submit(DaemonRequest::new("other", "u", job(&program, &inputs)))
        .is_ok());
    // Settling j1 releases the slot.
    while daemon.dispatch(|outcome| match outcome.status {
        JobStatus::Done { result, .. } => daemon.serve().recycle(result),
        other => panic!("{}: {other:?}", outcome.id),
    }) > 0
    {}
    assert!(daemon
        .submit(DaemonRequest::new("j2", "t", job(&program, &inputs)))
        .is_ok());
    drain_collect(&daemon);
}

#[test]
fn tenant_cell_budget_is_a_fixed_allowance_without_a_rate() {
    let program = Arc::new(jacobi2d(1, &[10, 10], 1));
    let inputs = Arc::new(generate_inputs(&program, 3));
    let cost = 100u64; // 10x10 cells, one step
    let daemon = Daemon::new(
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(1))
            .with_tenant_quota("metered", TenantQuota::new().with_cell_budget(cost)),
    );
    assert!(daemon
        .submit(DaemonRequest::new("m1", "metered", job(&program, &inputs)))
        .is_ok());
    let reject = daemon
        .submit(DaemonRequest::new("m2", "metered", job(&program, &inputs)))
        .unwrap_err();
    match &reject {
        RejectReason::TenantBudget {
            tenant,
            needed,
            available,
        } => {
            assert_eq!(tenant, "metered");
            assert_eq!(*needed, cost);
            assert_eq!(*available, 0);
        }
        other => panic!("expected TenantBudget, got {other:?}"),
    }
    assert_eq!(reject.code(), "SF0403");
    // Unmetered tenants are untouched.
    assert!(daemon
        .submit(DaemonRequest::new("free", "open", job(&program, &inputs)))
        .is_ok());
    drain_collect(&daemon);
}

#[test]
fn oversized_jobs_are_rejected_before_any_allocation() {
    let daemon = Daemon::new(
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(1))
            .with_max_job_cells(1000),
    );
    let big = Arc::new(jacobi2d(1, &[64, 64], 1));
    // Empty inputs: admission must reject on the program description
    // alone, before inputs are ever validated or buffers allocated.
    let inputs: Arc<BTreeMap<String, Grid>> = Arc::new(BTreeMap::new());
    let reject = daemon
        .submit(DaemonRequest::new(
            "big",
            "t",
            job(&big, &inputs).with_steps(4),
        ))
        .unwrap_err();
    match reject {
        RejectReason::Oversized { cells, limit } => {
            assert_eq!(cells, 64 * 64 * 4);
            assert_eq!(limit, 1000);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Deadlines: EDF ordering, lapsed-in-queue cancellation, mid-run
// watchdog cancellation.
// ---------------------------------------------------------------------

#[test]
fn dispatch_is_earliest_deadline_first_not_fifo() {
    let daemon = Daemon::new(
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(1))
            .with_batch_size(1),
    );
    let program = Arc::new(jacobi2d(1, &[8, 8], 1));
    let inputs = Arc::new(generate_inputs(&program, 4));
    for (id, deadline_ms) in [("slack", 800u64), ("urgent", 100), ("middle", 400)] {
        daemon
            .submit(
                DaemonRequest::new(id, "t", job(&program, &inputs))
                    .with_soft_deadline(Duration::from_millis(deadline_ms)),
            )
            .unwrap();
    }
    let order: Mutex<Vec<String>> = Mutex::new(Vec::new());
    while daemon.dispatch(|outcome| {
        if let JobStatus::Done { result, .. } = outcome.status {
            daemon.serve().recycle(result);
        }
        order.lock().expect("sink poisoned").push(outcome.id);
    }) > 0
    {}
    assert_eq!(
        order.into_inner().expect("sink poisoned"),
        ["urgent", "middle", "slack"],
        "dispatch must follow soft deadlines, not submission order"
    );
}

#[test]
fn lapsed_hard_timeout_cancels_before_start() {
    let daemon = Daemon::new(DaemonConfig::new().with_serve(ServeConfig::new().with_workers(1)));
    let program = Arc::new(jacobi2d(1, &[8, 8], 1));
    let inputs = Arc::new(generate_inputs(&program, 5));
    daemon
        .submit(
            DaemonRequest::new("late", "t", job(&program, &inputs))
                .with_hard_timeout(Duration::ZERO),
        )
        .unwrap();
    let (outcomes, clean) = drain_collect(&daemon);
    assert!(
        clean,
        "hard-timeout cancellation is not a drain cancellation"
    );
    match &outcomes["late"] {
        JobStatus::Cancelled(reason) => {
            assert_eq!(*reason, CancelReason::HardTimeout);
            assert_eq!(reason.code(), "SF0407");
        }
        other => panic!("expected Cancelled(HardTimeout), got {other:?}"),
    }
}

#[test]
fn watchdog_cancels_a_stalled_job_mid_run() {
    let daemon = Daemon::new(
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(1))
            .with_watchdog_tick(Duration::from_millis(1)),
    );
    let program = Arc::new(jacobi2d(1, &[8, 8], 1));
    let inputs = Arc::new(generate_inputs(&program, 6));
    // The stall holds the first band long enough for the watchdog to
    // fire the 25 ms hard timeout; the band boundary then observes the
    // token. Pinned to the banded tier, where cancellation is checked.
    daemon
        .submit(
            DaemonRequest::new(
                "stalled",
                "t",
                job(&program, &inputs)
                    .with_tier(Tier::Simd)
                    .with_fault(JobFault::Stall(Duration::from_millis(150))),
            )
            .with_hard_timeout(Duration::from_millis(25)),
        )
        .unwrap();
    let (outcomes, _) = drain_collect(&daemon);
    match &outcomes["stalled"] {
        JobStatus::Cancelled(CancelReason::HardTimeout) => {}
        other => panic!("expected mid-run Cancelled(HardTimeout), got {other:?}"),
    }
}

#[test]
fn drain_timeout_cancels_queued_remnants_with_drain_code() {
    let daemon = Daemon::new(
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(1))
            .with_drain_timeout(Duration::ZERO),
    );
    let program = Arc::new(jacobi2d(1, &[8, 8], 1));
    let inputs = Arc::new(generate_inputs(&program, 8));
    daemon
        .submit(DaemonRequest::new("q1", "t", job(&program, &inputs)))
        .unwrap();
    daemon
        .submit(DaemonRequest::new("q2", "t", job(&program, &inputs)))
        .unwrap();
    let (outcomes, clean) = drain_collect(&daemon);
    assert!(!clean, "a zero drain timeout cannot drain cleanly");
    for id in ["q1", "q2"] {
        match &outcomes[id] {
            JobStatus::Cancelled(reason) => assert_eq!(reason.code(), "SF0408"),
            other => panic!("{id}: expected Cancelled(Drain), got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// The seeded chaos run: poison + over-quota + hard-timeout + mid-stream
// shutdown in one daemon lifetime, every admitted job bitwise-checked or
// structurally settled, and the daemon never aborts.
// ---------------------------------------------------------------------

#[test]
fn chaos_mix_settles_every_job_and_stays_bitwise() {
    let daemon = Daemon::new(
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(2))
            .with_batch_size(2)
            .with_max_job_cells(10_000)
            .with_tenant_quota("greedy", TenantQuota::new().with_cell_budget(1)),
    );
    let jac = Arc::new(jacobi2d(2, &[20, 16], 1));
    let jac_inputs = Arc::new(generate_inputs(&jac, 42));
    let dif = Arc::new(diffusion2d(2, &[16, 12], 1));
    let dif_inputs = Arc::new(generate_inputs(&dif, 43));
    let step = Arc::new(jacobi3d(1, &[10, 8, 6], 1));
    let step_inputs = Arc::new(generate_inputs(&step, 44));
    let reference = ReferenceExecutor::new();
    let jac_expected = reference.run_interpreted(&jac, &jac_inputs).unwrap();
    let dif_expected = reference.run_interpreted(&dif, &dif_inputs).unwrap();
    let step_expected = reference.run_steps(&step, &step_inputs, 3).unwrap();

    daemon
        .submit(DaemonRequest::new("jac-1", "acme", job(&jac, &jac_inputs)))
        .unwrap();
    daemon
        .submit(DaemonRequest::new("dif-1", "acme", job(&dif, &dif_inputs)))
        .unwrap();
    daemon
        .submit(DaemonRequest::new(
            "step-1",
            "acme",
            job(&step, &step_inputs).with_steps(3),
        ))
        .unwrap();
    daemon
        .submit(DaemonRequest::new(
            "poison-1",
            "chaos",
            job(&jac, &jac_inputs).with_fault(JobFault::Poison),
        ))
        .unwrap();
    assert_eq!(
        daemon
            .submit(DaemonRequest::new(
                "greedy-1",
                "greedy",
                job(&jac, &jac_inputs)
            ))
            .unwrap_err()
            .code(),
        "SF0403"
    );
    daemon
        .submit(
            DaemonRequest::new("late-1", "acme", job(&jac, &jac_inputs))
                .with_hard_timeout(Duration::ZERO),
        )
        .unwrap();
    assert_eq!(
        daemon
            .submit(DaemonRequest::new("jac-1", "acme", job(&jac, &jac_inputs)))
            .unwrap_err()
            .code(),
        "SF0405"
    );

    // Mid-stream shutdown: drain, then keep (failing to) talk.
    let (mut outcomes, clean) = drain_collect(&daemon);
    assert!(clean, "nothing should be drain-cancelled");
    assert_eq!(
        daemon
            .submit(DaemonRequest::new("tail-1", "acme", job(&jac, &jac_inputs)))
            .unwrap_err()
            .code(),
        "SF0406"
    );

    assert_eq!(outcomes.len(), 5, "all five admitted jobs settled");
    for (id, program, expected) in [
        ("jac-1", &jac, &jac_expected),
        ("dif-1", &dif, &dif_expected),
        ("step-1", &step, &step_expected),
    ] {
        match outcomes.remove(id).unwrap() {
            JobStatus::Done { result, .. } => {
                assert_outputs_bitwise(program, &result, expected);
                daemon.serve().recycle(result);
            }
            other => panic!("{id}: expected Done, got {other:?}"),
        }
    }
    assert!(matches!(
        outcomes.remove("poison-1").unwrap(),
        JobStatus::Panicked(_)
    ));
    assert!(matches!(
        outcomes.remove("late-1").unwrap(),
        JobStatus::Cancelled(CancelReason::HardTimeout)
    ));

    let stats = daemon.stats();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.admitted, 5);
    assert_eq!(stats.rejected, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.rejects_by_code["SF0403"], 1);
    assert_eq!(stats.rejects_by_code["SF0405"], 1);
    assert_eq!(stats.rejects_by_code["SF0406"], 1);
}

// ---------------------------------------------------------------------
// Tier-decision persistence: the restart golden.
// ---------------------------------------------------------------------

#[test]
fn restart_reuses_exported_tier_decisions_with_zero_remeasurements() {
    let first = ServeExecutor::new(ServeConfig::new().with_workers(2));
    let jac = Arc::new(jacobi2d(2, &[20, 16], 1));
    let jac_inputs = Arc::new(generate_inputs(&jac, 42));
    let step = Arc::new(jacobi3d(1, &[10, 8, 6], 1));
    let step_inputs = Arc::new(generate_inputs(&step, 9));

    let single_a = first
        .run_one(job(&jac, &jac_inputs))
        .result
        .expect("first run clean");
    let stepped_a = first
        .run_one(job(&step, &step_inputs).with_steps(4))
        .result
        .expect("first stepped run clean");
    assert!(first.stats().tier_measurements > 0 || first.tier_choices().len() == 2);
    let exported = first.export_tier_decisions();

    // A "restarted" executor: fresh caches, the persisted decisions.
    let second = ServeExecutor::new(ServeConfig::new().with_workers(2));
    let load = second
        .import_tier_decisions(&exported)
        .expect("cache loads");
    assert!(!load.stale);
    assert_eq!(load.loaded, first.tier_choices().len());

    let single_b = second
        .run_one(job(&jac, &jac_inputs))
        .result
        .expect("restart run clean");
    let stepped_b = second
        .run_one(job(&step, &step_inputs).with_steps(4))
        .result
        .expect("restart stepped run clean");
    assert_eq!(
        second.stats().tier_measurements,
        0,
        "a restart with a warm tier cache re-measures nothing"
    );
    assert_outputs_bitwise(&jac, &single_b, &single_a);
    assert_outputs_bitwise(&step, &stepped_b, &stepped_a);
    // The reloaded decisions are the exported ones, verbatim.
    let choices = |serve: &ServeExecutor| {
        let mut v: Vec<(String, bool, Tier)> = serve
            .tier_choices()
            .into_iter()
            .map(|c| (c.fingerprint, c.stepped, c.tier))
            .collect();
        v.sort();
        v
    };
    assert_eq!(choices(&first), choices(&second));
    for result in [single_a, stepped_a] {
        first.recycle(result);
    }
    for result in [single_b, stepped_b] {
        second.recycle(result);
    }
}

#[test]
fn stale_salt_discards_persisted_decisions() {
    let first = ServeExecutor::new(ServeConfig::new().with_workers(1));
    let program = Arc::new(jacobi2d(1, &[12, 10], 1));
    let inputs = Arc::new(generate_inputs(&program, 13));
    first.recycle(first.run_one(job(&program, &inputs)).result.unwrap());
    let exported = first.export_tier_decisions();

    // Flip the salt: decisions from "another build" must not be trusted.
    let mut doc = stencilflow_json::parse(&exported).unwrap();
    if let Json::Object(fields) = &mut doc {
        for (key, value) in fields.iter_mut() {
            if key == "salt" {
                *value = Json::String("some-other-build".to_string());
            }
        }
    }
    let second = ServeExecutor::new(ServeConfig::new().with_workers(1));
    let load = second
        .import_tier_decisions(&doc.to_string_compact())
        .expect("a stale cache is not an error");
    assert!(load.stale);
    assert_eq!(load.loaded, 0);
    assert!(second.tier_choices().is_empty());
}

#[test]
fn malformed_tier_caches_error_without_polluting_the_executor() {
    let serve = ServeExecutor::new(ServeConfig::new().with_workers(1));
    assert!(serve.import_tier_decisions("not json at all").is_err());
    assert!(serve.import_tier_decisions("[1, 2, 3]").is_err());
    assert!(serve
        .import_tier_decisions(r#"{"format":"something-else","salt":"x","decisions":[]}"#)
        .is_err());
    assert!(serve.tier_choices().is_empty());
}
