//! Automatic tier selection: correctness and performance contracts.
//!
//! * **Golden**: under [`TierPolicy::Auto`] every analyze-suite workload
//!   must produce program outputs bitwise identical to the interpreter —
//!   on the first job (where the tiers are being measured) and on the
//!   cached decision afterwards. Auto may pick any tier; it may never
//!   change a bit.
//! * **Floor**: on the two historical regression workloads — `upwind3d`
//!   (fused ran 0.89x the SIMD tier) and the 24x24x64
//!   `horizontal_diffusion` domain (0.94x) — the auto policy must run
//!   at 0.95x the best manually pinned tier or better, as the median of
//!   interleaved samples. Auto's steady state executes the winning
//!   tier's exact code path, so this holds by construction unless the
//!   decision cache or the measurement pass regresses.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;
use stencilflow_expr::DataType;
use stencilflow_program::StencilProgram;
use stencilflow_reference::{
    generate_inputs, Grid, JobSpec, ReferenceExecutor, ServeConfig, ServeExecutor, Tier,
};
use stencilflow_workloads::{
    chain_program, diffusion2d, diffusion3d, horizontal_diffusion, jacobi2d, jacobi3d,
    jacobi3d_typed, listing1, membench_program, upwind3d, ChainSpec, HorizontalDiffusionSpec,
    MembenchSpec,
};

/// Serializes the tests in this file: the floor test times wall-clock
/// samples, and on a small host a concurrently running golden test
/// would distort them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The analyze-suite workloads, at the execution-sized domains the jit
/// gate uses (chain and membench default to bandwidth-benchmark shapes
/// that take minutes through the tree-walking interpreter).
fn suite() -> Vec<StencilProgram> {
    vec![
        listing1(),
        jacobi2d(1, &[32, 32], 1),
        jacobi3d(1, &[16, 16, 8], 1),
        jacobi3d_typed(1, &[16, 16, 8], 1, DataType::Float64),
        diffusion2d(1, &[32, 32], 1),
        diffusion3d(1, &[16, 16, 8], 1),
        chain_program(&ChainSpec::new(8, 8).with_shape(&[32, 16, 16])),
        membench_program(&MembenchSpec::new(8, 1).with_shape(&[16, 8, 8])),
        horizontal_diffusion(&HorizontalDiffusionSpec::small()),
        upwind3d(2, &[8, 8, 8], 1),
    ]
}

fn assert_outputs_bitwise(
    program: &StencilProgram,
    got: &stencilflow_reference::ExecutionResult,
    want: &stencilflow_reference::ExecutionResult,
) {
    for name in program.outputs() {
        let got_grid = got
            .field(name)
            .unwrap_or_else(|| panic!("{}: missing output `{name}`", program.name()));
        let want_grid = want.field(name).expect("reference computes every output");
        assert_eq!(got_grid.shape(), want_grid.shape());
        for (ix, (a, b)) in got_grid
            .as_slice()
            .iter()
            .zip(want_grid.as_slice())
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: output `{name}` differs at flat index {ix}: {a} != {b}",
                program.name()
            );
        }
        assert_eq!(
            got.valid_mask(name),
            want.valid_mask(name),
            "{}: validity mask of `{name}` differs",
            program.name()
        );
    }
    // Outputs-only contract.
    assert_eq!(got.fields().count(), program.outputs().len());
}

#[test]
fn auto_tier_matches_the_interpreter_bitwise_on_the_analyze_suite() {
    let _guard = serial();
    let serve = ServeExecutor::new(ServeConfig::new().with_workers(2));
    let reference = ReferenceExecutor::new();
    for program in suite() {
        let program = Arc::new(program);
        let inputs = Arc::new(generate_inputs(&program, 42));
        let expected = reference.run_interpreted(&program, &inputs).unwrap();
        // Round 0 exercises the measurement pass (every eligible tier
        // runs), round 1 the cached decision.
        for round in 0..2 {
            let outcome = serve.run_one(JobSpec::new(Arc::clone(&program), Arc::clone(&inputs)));
            let result = outcome
                .result
                .unwrap_or_else(|e| panic!("{} round {round}: {e}", program.name()));
            assert_outputs_bitwise(&program, &result, &expected);
            serve.recycle(result);
        }
    }
    // Every workload got exactly one cached decision (measured once, or
    // single-candidate fast path).
    assert_eq!(serve.tier_choices().len(), suite().len());
}

#[test]
fn auto_tier_matches_run_steps_bitwise_when_stepping() {
    let _guard = serial();
    let serve = ServeExecutor::new(ServeConfig::new().with_workers(2));
    let reference = ReferenceExecutor::new();
    let program = Arc::new(jacobi3d(1, &[12, 12, 6], 1));
    let inputs = Arc::new(generate_inputs(&program, 7));
    let expected = reference.run_steps(&program, &inputs, 5).unwrap();
    for round in 0..2 {
        let outcome =
            serve.run_one(JobSpec::new(Arc::clone(&program), Arc::clone(&inputs)).with_steps(5));
        let result = outcome
            .result
            .unwrap_or_else(|e| panic!("stepped round {round}: {e}"));
        assert_outputs_bitwise(&program, &result, &expected);
        serve.recycle(result);
    }
}

/// Median wall-clock of `samples` timed samples, each running the job
/// `runs_per_sample` times. Samples of all modes interleave round-robin
/// at the call site, so drift hits every mode equally.
fn sample_seconds(serve: &ServeExecutor, job: &JobSpec, runs_per_sample: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..runs_per_sample {
        let outcome = serve.run_one(job.clone());
        serve.recycle(outcome.result.expect("floor workloads run clean"));
    }
    t0.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One full interleaved measurement: returns
/// `(best manual median / auto median, auto median, best manual median)`.
fn measure_floor_ratio(
    serve: &ServeExecutor,
    auto_job: &JobSpec,
    manual_jobs: &[JobSpec],
) -> (f64, f64, f64) {
    const SAMPLES: usize = 7;
    const RUNS: usize = 6;
    let mut auto_s = Vec::with_capacity(SAMPLES);
    let mut manual_s: Vec<Vec<f64>> = vec![Vec::with_capacity(SAMPLES); manual_jobs.len()];
    for _ in 0..SAMPLES {
        auto_s.push(sample_seconds(serve, auto_job, RUNS));
        for (ix, job) in manual_jobs.iter().enumerate() {
            manual_s[ix].push(sample_seconds(serve, job, RUNS));
        }
    }
    let auto_median = median(&mut auto_s);
    let best_manual = manual_s
        .iter_mut()
        .map(|s| median(s))
        .fold(f64::INFINITY, f64::min);
    (best_manual / auto_median, auto_median, best_manual)
}

#[test]
fn auto_tier_is_at_least_95pct_of_best_manual_tier_on_regression_workloads() {
    let _guard = serial();
    let regressions: Vec<StencilProgram> = vec![
        upwind3d(2, &[8, 8, 8], 1),
        horizontal_diffusion(&HorizontalDiffusionSpec::bench()),
    ];
    for program in regressions {
        let name = program.name().to_string();
        let program = Arc::new(program);
        let inputs: Arc<BTreeMap<String, Grid>> = Arc::new(generate_inputs(&program, 11));
        let serve = ServeExecutor::new(ServeConfig::new().with_workers(1));
        let auto_job = JobSpec::new(Arc::clone(&program), Arc::clone(&inputs));
        let manual_jobs: Vec<JobSpec> = [Tier::Simd, Tier::Fused, Tier::Jit]
            .into_iter()
            .map(|tier| auto_job.clone().with_tier(tier))
            .collect();
        // Warmup: fixes the auto decision, fills the pools, JIT-compiles.
        sample_seconds(&serve, &auto_job, 2);
        for job in &manual_jobs {
            sample_seconds(&serve, job, 2);
        }
        // Medians of interleaved samples absorb steady load; a burst of
        // external load on a shared runner can still land mid-measurement,
        // so allow a bounded number of full re-measurements before
        // declaring a real regression.
        const ATTEMPTS: usize = 3;
        for attempt in 1..=ATTEMPTS {
            let (ratio, auto_median, best_manual) =
                measure_floor_ratio(&serve, &auto_job, &manual_jobs);
            if ratio >= 0.95 {
                break;
            }
            assert!(
                attempt < ATTEMPTS,
                "{name}: auto tier runs at {ratio:.3}x the best manual tier \
                 (auto {auto_median:.6}s vs best manual {best_manual:.6}s, \
                 {ATTEMPTS} attempts)"
            );
        }
    }
}
