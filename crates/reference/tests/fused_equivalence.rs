//! Golden equivalence of the tile-fused tier: fused execution must agree
//! **bit for bit** with the tree-walking interpreter (and the
//! materializing compiled path) on every program output — values and
//! shrink masks — across tile heights, window sizes, and workloads,
//! including the programs that fall back to the materializing path.

use std::collections::BTreeMap;
use stencilflow_expr::DataType;
use stencilflow_program::{BoundaryCondition, StencilProgram, StencilProgramBuilder};
use stencilflow_reference::{generate_inputs, Grid, ReferenceExecutor};
use stencilflow_workloads::{
    chain_program, diffusion2d, diffusion3d, horizontal_diffusion, jacobi2d, jacobi3d,
    jacobi3d_typed, listing1::listing1_with_shape, upwind3d_typed, ChainSpec,
    HorizontalDiffusionSpec,
};

/// Compare two results on the program outputs, bitwise, masks included.
fn assert_outputs_match(
    program: &StencilProgram,
    label: &str,
    fused: &stencilflow_reference::ExecutionResult,
    baseline: &stencilflow_reference::ExecutionResult,
) {
    for output in program.outputs() {
        let f = fused
            .field(output)
            .unwrap_or_else(|| panic!("fused result misses output `{output}`"));
        let b = baseline.field(output).unwrap();
        assert_eq!(f.shape(), b.shape());
        for (cell, (x, y)) in f.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "program `{}` ({label}), output `{output}`, cell {cell}: \
                 fused {x:?} != baseline {y:?}",
                program.name()
            );
        }
        assert_eq!(
            fused.valid_mask(output).unwrap(),
            baseline.valid_mask(output).unwrap(),
            "mask mismatch for `{output}` in `{}` ({label})",
            program.name()
        );
    }
}

/// Run the fused tier under several tile heights and compare each against
/// the interpreter (and the materializing compiled path).
fn assert_fused_bit_identical(program: &StencilProgram, seed: u64) {
    let inputs = generate_inputs(program, seed);
    let plain = ReferenceExecutor::new();
    let interpreted = plain.run_interpreted(program, &inputs).unwrap();
    let materializing = plain.run(program, &inputs).unwrap();
    assert_outputs_match(program, "materializing", &materializing, &interpreted);
    for tile_rows in [0usize, 1, 2, 5] {
        let executor = ReferenceExecutor::new()
            .with_tier_measurement(false)
            .with_fusion_tile_rows(tile_rows);
        let fused = executor.run_fused(program, &inputs).unwrap();
        assert_outputs_match(
            program,
            &format!("tile_rows={tile_rows}"),
            &fused,
            &interpreted,
        );
        // The fused result carries exactly the program outputs.
        let fields: Vec<&str> = fused.fields().map(|(name, _)| name).collect();
        assert_eq!(fields.len(), program.outputs().len());
    }
}

/// Fused time stepping across window sizes and tile heights vs the
/// materializing stepper.
fn assert_fused_steps_bit_identical(program: &StencilProgram, seed: u64, steps: usize) {
    let inputs = generate_inputs(program, seed);
    let plain = ReferenceExecutor::new();
    let baseline = plain.run_steps(program, &inputs, steps).unwrap();
    for window in [1usize, 2, 3, steps.max(1)] {
        for tile_rows in [0usize, 1, 3] {
            let executor = ReferenceExecutor::new()
                .with_tier_measurement(false)
                .with_fusion_window(window)
                .with_fusion_tile_rows(tile_rows);
            let fused = executor.run_steps_fused(program, &inputs, steps).unwrap();
            assert_outputs_match(
                program,
                &format!("steps={steps} window={window} tile_rows={tile_rows}"),
                &fused,
                &baseline,
            );
        }
    }
}

#[test]
fn fused_matches_on_jacobi_and_diffusion() {
    assert_fused_bit_identical(&jacobi2d(2, &[13, 9], 1), 1);
    assert_fused_bit_identical(&jacobi3d(2, &[9, 7, 11], 1), 2);
    assert_fused_bit_identical(&jacobi3d_typed(2, &[9, 7, 11], 1, DataType::Float64), 3);
    assert_fused_bit_identical(&diffusion2d(2, &[12, 10], 1), 4);
    assert_fused_bit_identical(&diffusion3d(2, &[7, 6, 9], 1), 5);
}

#[test]
fn fused_matches_on_chains() {
    for stages in [2usize, 6, 8] {
        let chain = chain_program(&ChainSpec::new(stages, 8).with_shape(&[6, 5, 7]));
        let executor = ReferenceExecutor::new();
        let compiled = executor.prepare(&chain).unwrap();
        assert!(
            compiled.fused_tier_supported(),
            "chains must take the fused fast path: {:?}",
            compiled.fused_fallback_reason()
        );
        assert_fused_bit_identical(&chain, 6 + stages as u64);
    }
    // Longer chains whose cumulative dilation exceeds the tile height.
    let chain = chain_program(&ChainSpec::new(10, 4).with_shape(&[24, 6]));
    assert_fused_bit_identical(&chain, 17);
}

#[test]
fn fused_matches_on_branchy_and_division_kernels() {
    for dtype in [DataType::Float32, DataType::Float64] {
        let program = upwind3d_typed(2, &[7, 9, 11], 1, dtype);
        let executor = ReferenceExecutor::new();
        let compiled = executor.prepare(&program).unwrap();
        assert!(compiled.fused_tier_supported());
        assert_fused_bit_identical(&program, 21);
    }
    // Division inside a ternary arm: only the statically-typed
    // if-conversion makes this kernel branch-free, which the fused tier
    // requires — and IEEE division by zero (inf/NaN) must match bitwise.
    let program = StencilProgramBuilder::new("divsel", &[6, 12])
        .input("a", DataType::Float32, &["i", "j"])
        .input("b", DataType::Float32, &["i", "j"])
        .stencil("s", "b[i,j] > 0.25 ? a[i,j] / b[i,j-1] : a[i-1,j]")
        .shrink("s")
        .output("s")
        .build()
        .unwrap();
    let compiled = ReferenceExecutor::new().prepare(&program).unwrap();
    assert!(
        compiled.fused_tier_supported(),
        "typed if-conversion should make division ternaries fusible: {:?}",
        compiled.fused_fallback_reason()
    );
    assert_fused_bit_identical(&program, 22);
}

#[test]
fn fused_matches_on_boundary_and_geometry_variety() {
    // Mixed constant boundaries (per-field constants differ; consumers of
    // each field agree), shrink masks, scalars, f64 outputs, deep halos.
    let program = StencilProgramBuilder::new("constants", &[7, 6, 9])
        .input("u", DataType::Float32, &["i", "j", "k"])
        .scalar("dt", DataType::Float32)
        .stencil(
            "lap",
            "-4.0*u[i,j,k] + u[i-1,j,k] + u[i+1,j,k] + u[i,j-1,k] + u[i,j+1,k]",
        )
        .boundary("lap", "u", BoundaryCondition::Constant(1.5))
        .stencil("flux", "lap[i,j,k] - lap[i,j,k-2] + dt")
        .boundary("flux", "lap", BoundaryCondition::Constant(-2.25))
        .shrink("flux")
        .stencil("out", "flux[i,j,k] * flux[i+2,j,k]")
        .shrink("out")
        .output_type("out", DataType::Float64)
        .output("out")
        .build()
        .unwrap();
    let compiled = ReferenceExecutor::new().prepare(&program).unwrap();
    assert!(
        compiled.fused_tier_supported(),
        "{:?}",
        compiled.fused_fallback_reason()
    );
    assert_fused_bit_identical(&program, 31);

    // One-dimensional domain: a single tile spanning the row.
    let program = StencilProgramBuilder::new("fused1d", &[23])
        .input("a", DataType::Float32, &["i"])
        .stencil("s", "a[i-3] + a[i+2] * 0.5")
        .boundary("s", "a", BoundaryCondition::Constant(0.75))
        .shrink("s")
        .output("s")
        .build()
        .unwrap();
    assert_fused_bit_identical(&program, 32);

    // Remainder-heavy innermost extents around the fused lane widths.
    for width in [1usize, 3, 7, 8, 9, 15, 16, 17, 31, 33] {
        assert_fused_bit_identical(&jacobi2d(1, &[5, width], 1), 40 + width as u64);
    }
}

#[test]
fn fused_multi_output_and_dead_stage_elision() {
    // Two outputs sharing intermediates, plus a dead stencil nobody
    // consumes: the fused tier elides it (its value is unobservable).
    let program = StencilProgramBuilder::new("multi", &[8, 10])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("base", "a[i,j] + a[i-1,j]")
        .stencil("left", "base[i,j-1] * 2.0")
        .stencil("right", "base[i,j+1] * 3.0")
        .stencil("dead", "base[i,j] * 100.0")
        .shrink("left")
        .output("left")
        .output("right")
        .build()
        .unwrap();
    assert_fused_bit_identical(&program, 51);
    // The dead stage does not add evaluations: fused counts at most the
    // live stages (times dilation overlap, bounded by an extra stage's
    // worth here).
    let inputs = generate_inputs(&program, 51);
    let executor = ReferenceExecutor::new().with_tier_measurement(false);
    let fused = executor.run_fused(&program, &inputs).unwrap();
    let cells = program.space().num_cells();
    assert!(
        fused.cells_evaluated() < 4 * cells,
        "dead stage should be elided: {} evaluations for {} cells",
        fused.cells_evaluated(),
        cells
    );
    assert!(fused.field("dead").is_none());
    assert!(fused.field("base").is_none());
}

#[test]
fn fused_steps_match_materializing_steps() {
    assert_fused_steps_bit_identical(&jacobi3d(1, &[9, 8, 10], 1), 61, 5);
    assert_fused_steps_bit_identical(&jacobi2d(1, &[11, 9], 1), 62, 7);
    assert_fused_steps_bit_identical(&jacobi3d_typed(1, &[6, 7, 9], 1, DataType::Float64), 63, 4);
    // Multi-stencil program per step (two internal Jacobi sweeps).
    assert_fused_steps_bit_identical(&jacobi3d(2, &[8, 6, 9], 1), 64, 3);

    // Coupled multi-field state with prefix pairing.
    let coupled = StencilProgramBuilder::new("coupled", &[10, 12])
        .input("h", DataType::Float32, &["i", "j"])
        .input("h2", DataType::Float32, &["i", "j"])
        .stencil("h_next", "0.5 * (h[i-1,j] + h[i+1,j]) + 0.1 * h2[i,j]")
        .stencil("h2_next", "h2[i,j-1] * 0.25 + h[i,j]")
        .output("h_next")
        .output("h2_next")
        .build()
        .unwrap();
    let compiled = ReferenceExecutor::new().prepare(&coupled).unwrap();
    assert!(compiled.fused_steps_supported());
    assert_fused_steps_bit_identical(&coupled, 65, 5);
}

#[test]
fn ineligible_programs_fall_back_bit_identically() {
    // Listing 1 combines a lower-dimensional input with copy boundaries;
    // both keep it on the materializing path.
    let listing = listing1_with_shape(&[6, 7, 5]);
    let executor = ReferenceExecutor::new();
    let compiled = executor.prepare(&listing).unwrap();
    assert!(!compiled.fused_tier_supported());
    assert_fused_bit_identical(&listing, 71);

    // Copy boundaries cannot be expressed as position-indexed pads.
    let copy = StencilProgramBuilder::new("copyb", &[6, 8])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("s", "a[i-1,j] + a[i+1,j]")
        .boundary("s", "a", BoundaryCondition::Copy)
        .output("s")
        .build()
        .unwrap();
    let compiled = executor.prepare(&copy).unwrap();
    assert!(!compiled.fused_tier_supported());
    assert!(compiled
        .fused_fallback_reason()
        .unwrap()
        .contains("copy boundary"));
    assert_fused_bit_identical(&copy, 74);

    // Lower-dimensional parameter fields keep horizontal diffusion on the
    // materializing path (for now).
    let hd = horizontal_diffusion(&HorizontalDiffusionSpec::small());
    let compiled = executor.prepare(&hd).unwrap();
    assert!(!compiled.fused_tier_supported());
    assert_fused_bit_identical(&hd, 72);

    // Consumers disagreeing on a field's boundary constant.
    let conflict = StencilProgramBuilder::new("conflict", &[6, 8])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("s", "a[i-1,j] + a[i+1,j]")
        .boundary("s", "a", BoundaryCondition::Constant(1.0))
        .stencil("t", "a[i,j-1] + s[i,j]")
        .boundary("t", "a", BoundaryCondition::Constant(2.0))
        .output("t")
        .build()
        .unwrap();
    let compiled = executor.prepare(&conflict).unwrap();
    assert!(!compiled.fused_tier_supported());
    assert_fused_bit_identical(&conflict, 73);

    // Fused stepping on unpairable programs errors exactly like the
    // materializing stepper.
    let unpairable = StencilProgramBuilder::new("unpairable", &[6])
        .input("a", DataType::Float32, &["i"])
        .stencil("x", "a[i] + 1.0")
        .stencil("y", "a[i] * 2.0")
        .output("x")
        .output("y")
        .build()
        .unwrap();
    let inputs = generate_inputs(&unpairable, 1);
    assert!(executor.run_steps_fused(&unpairable, &inputs, 3).is_err());
    // Even a single step validates the pairing, like `run_steps` does.
    assert!(executor.run_steps(&unpairable, &inputs, 1).is_err());
    assert!(executor.run_steps_fused(&unpairable, &inputs, 1).is_err());
    assert!(executor.run_steps_fused(&unpairable, &inputs, 0).is_err());
}

#[test]
fn fused_steps_state_round_trips_through_windows() {
    // Enough steps to force several windows (and pooled state grids), on
    // a domain small enough that every path is exercised quickly.
    let program = jacobi3d(1, &[8, 6, 10], 1);
    let inputs = generate_inputs(&program, 81);
    let plain = ReferenceExecutor::new();
    let baseline = plain.run_steps(&program, &inputs, 11).unwrap();
    let executor = ReferenceExecutor::new()
        .with_tier_measurement(false)
        .with_fusion_window(2)
        .with_fusion_tile_rows(3);
    let fused = executor.run_steps_fused(&program, &inputs, 11).unwrap();
    assert_outputs_match(&program, "windows", &fused, &baseline);
}

#[test]
fn fused_steady_state_allocates_nothing_from_the_pool() {
    let program = jacobi3d(1, &[12, 10, 16], 1);
    let inputs = generate_inputs(&program, 91);
    let executor = ReferenceExecutor::new()
        .with_tier_measurement(false)
        .with_fusion_window(2);
    // Warm-up populates the pool.
    executor.run_steps_fused(&program, &inputs, 6).unwrap();
    let warm_misses = executor.pool_miss_count();
    assert!(warm_misses > 0, "the first run must populate the pool");
    for _ in 0..3 {
        executor.run_steps_fused(&program, &inputs, 6).unwrap();
    }
    assert_eq!(
        executor.pool_miss_count(),
        warm_misses,
        "steady-state fused stepping must reuse pooled buffers"
    );
    assert!(executor.pool_acquire_count() > warm_misses);

    // Single fused runs reuse the same pool.
    executor.run_fused(&program, &inputs).unwrap();
    let after_single = executor.pool_miss_count();
    executor.run_fused(&program, &inputs).unwrap();
    assert_eq!(executor.pool_miss_count(), after_single);
}

#[test]
fn fused_parallel_tiling_matches_sequential() {
    // Big enough to cross the parallel threshold; disjoint output slabs
    // must compose to the identical grid.
    let program = jacobi3d(2, &[40, 16, 16], 1);
    let inputs = generate_inputs(&program, 101);
    let sequential = ReferenceExecutor::new()
        .with_tier_measurement(false)
        .with_max_threads(1)
        .with_fusion_tile_rows(4)
        .run_fused(&program, &inputs)
        .unwrap();
    let parallel = ReferenceExecutor::new()
        .with_tier_measurement(false)
        .with_fusion_tile_rows(4)
        .run_fused(&program, &inputs)
        .unwrap();
    for output in program.outputs() {
        for (a, b) in sequential
            .field(output)
            .unwrap()
            .as_slice()
            .iter()
            .zip(parallel.field(output).unwrap().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn measured_routing_stays_bit_identical_and_caches_the_decision() {
    // The default `run_fused` path now measures the eligible execution
    // paths on first sight (like the service layer's automatic tier
    // selection). Whatever wins, the result must stay bit-identical to
    // the interpreter, and repeat traffic must hit the cached decision.
    let program = jacobi2d(2, &[14, 11], 1);
    let inputs = generate_inputs(&program, 111);
    let executor = ReferenceExecutor::new();
    let interpreted = executor.run_interpreted(&program, &inputs).unwrap();
    assert_eq!(executor.tier_measure_count(), 0);
    let first = executor.run_fused(&program, &inputs).unwrap();
    assert_outputs_match(&program, "measured single", &first, &interpreted);
    assert_eq!(executor.tier_measure_count(), 1);
    for _ in 0..3 {
        let repeat = executor.run_fused(&program, &inputs).unwrap();
        assert_outputs_match(&program, "measured repeat", &repeat, &interpreted);
    }
    assert_eq!(
        executor.tier_measure_count(),
        1,
        "repeat traffic must reuse the measured decision"
    );

    // Stepped traffic is a distinct decision key.
    let stepped = executor.run_steps_fused(&program, &inputs, 4).unwrap();
    let baseline = executor.run_steps(&program, &inputs, 4).unwrap();
    assert_outputs_match(&program, "measured stepped", &stepped, &baseline);
    assert_eq!(executor.tier_measure_count(), 2);
    executor.run_steps_fused(&program, &inputs, 4).unwrap();
    assert_eq!(executor.tier_measure_count(), 2);

    // The bypass knob pins the fused tier and never measures.
    let pinned = ReferenceExecutor::new().with_tier_measurement(false);
    let fused = pinned.run_fused(&program, &inputs).unwrap();
    assert_outputs_match(&program, "pinned", &fused, &interpreted);
    assert_eq!(pinned.tier_measure_count(), 0);
}

#[test]
fn fused_handles_explicit_values() {
    // Hand-checked values through the fused path (not just equivalence).
    let program = StencilProgramBuilder::new("p", &[4])
        .input("a", DataType::Float32, &["i"])
        .stencil("s", "a[i-1] + a[i+1]")
        .output("s")
        .build()
        .unwrap();
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "a".to_string(),
        Grid::from_values(&["i"], &[4], &[1.0, 2.0, 3.0, 4.0]),
    );
    let result = ReferenceExecutor::new()
        .with_tier_measurement(false)
        .run_fused(&program, &inputs)
        .unwrap();
    // Zero-constant default boundaries: s = [2, 4, 6, 3].
    assert_eq!(result.field("s").unwrap().as_slice(), &[2.0, 4.0, 6.0, 3.0]);
}
