//! FPGA resource estimation (ALM / FF / M20K / DSP).
//!
//! The paper reports post-fit utilization for its highest-performing kernels
//! (Tab. I). Without a synthesis toolchain we estimate utilization from the
//! mapped design: hardened floating-point DSP usage follows the operation mix
//! directly, logic (ALM/FF) follows the operations per cycle with a
//! per-vector-lane discount (vectorization amortizes control logic — the
//! coarsening effect of §IV-C), and M20K usage follows the buffered bytes
//! plus per-unit and per-memory-interface overheads. The coefficients are
//! calibrated against the Jacobi 3D rows of Tab. I and documented in
//! `EXPERIMENTS.md`.

use crate::device::Device;
use stencilflow_core::HardwareMapping;

/// Estimated resource usage of a mapped design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Adaptive logic modules.
    pub alm: u64,
    /// Flip-flops.
    pub ff: u64,
    /// M20K memory blocks.
    pub m20k: u64,
    /// DSP blocks.
    pub dsp: u64,
}

impl ResourceEstimate {
    /// Utilization fractions relative to a device's resource pool, in the
    /// order (ALM, FF, M20K, DSP).
    pub fn utilization(&self, device: &Device) -> (f64, f64, f64, f64) {
        let frac = |used: u64, avail: u64| {
            if avail == 0 {
                0.0
            } else {
                used as f64 / avail as f64
            }
        };
        (
            frac(self.alm, device.resources.alm),
            frac(self.ff, device.resources.ff),
            frac(self.m20k, device.resources.m20k),
            frac(self.dsp, device.resources.dsp),
        )
    }

    /// Whether the design fits the device.
    pub fn fits(&self, device: &Device) -> bool {
        let (alm, ff, m20k, dsp) = self.utilization(device);
        alm <= 1.0 && ff <= 1.0 && m20k <= 1.0 && dsp <= 1.0
    }

    /// The binding (largest) utilization fraction.
    pub fn max_utilization(&self, device: &Device) -> f64 {
        let (alm, ff, m20k, dsp) = self.utilization(device);
        alm.max(ff).max(m20k).max(dsp)
    }
}

/// ALM cost per floating-point operation instantiated per cycle, as a
/// function of the vectorization width (wider designs amortize per-operation
/// control logic). Calibrated on Tab. I: ≈264 ALM/(Op/cycle) at W = 1 and
/// ≈142 at W = 8.
fn alm_per_op(width: u64) -> f64 {
    125.0 + 139.0 / width.max(1) as f64
}

/// Estimate the resource usage of a mapped single-device design.
pub fn estimate_resources(mapping: &HardwareMapping) -> ResourceEstimate {
    let width = mapping.vector_width.max(1) as u64;
    let ops_per_cycle: u64 = mapping.ops_per_cycle();
    let access_points = mapping.memory_access_points() as u64;

    // DSPs: one hardened FP block per add/mul lane; divisions and square
    // roots are composed of several blocks plus logic.
    let mut dsp = 0u64;
    let mut heavy_ops = 0u64;
    for unit in &mapping.units {
        let ops = &unit.ops;
        dsp += (ops.additions + ops.multiplications) * width;
        heavy_ops += (ops.divisions + ops.square_roots) * width;
    }
    dsp += heavy_ops * 4;

    // Logic: per-op cost plus a shell/infrastructure baseline and the memory
    // interfaces.
    let alm = (ops_per_cycle as f64 * alm_per_op(width)
        + heavy_ops as f64 * 900.0
        + access_points as f64 * 6_000.0
        + 25_000.0) as u64;
    let ff = (alm as f64 * 2.6) as u64;

    // On-chip memory: one M20K holds 20 kbit = 2,560 bytes of 32-bit data.
    let buffer_bytes = mapping.total_buffer_elements() * 4;
    let m20k = buffer_bytes.div_ceil(2_560)
        + mapping.units.len() as u64 * 3
        + access_points * (40 + 25 * width)
        + 300;

    ResourceEstimate { alm, ff, m20k, dsp }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_core::AnalysisConfig;
    use stencilflow_workloads::{jacobi3d, listing1};

    #[test]
    fn utilization_and_fit() {
        let program = listing1();
        let mapping = HardwareMapping::build(&program, &AnalysisConfig::paper_defaults()).unwrap();
        let estimate = estimate_resources(&mapping);
        let device = Device::stratix10_gx2800();
        assert!(estimate.fits(&device));
        let (alm, ff, m20k, dsp) = estimate.utilization(&device);
        assert!(alm > 0.0 && alm < 0.5);
        assert!(ff > 0.0 && ff < 0.5);
        assert!(m20k > 0.0 && m20k < 0.5);
        assert!(dsp > 0.0 && dsp < 0.5);
        assert!(estimate.max_utilization(&device) < 0.5);
    }

    #[test]
    fn resources_grow_with_chain_length() {
        let config = AnalysisConfig::paper_defaults();
        let small = estimate_resources(
            &HardwareMapping::build(&jacobi3d(4, &[256, 32, 32], 1), &config).unwrap(),
        );
        let large = estimate_resources(
            &HardwareMapping::build(&jacobi3d(16, &[256, 32, 32], 1), &config).unwrap(),
        );
        assert!(large.alm > small.alm);
        assert!(large.dsp > small.dsp);
        assert!(large.m20k > small.m20k);
    }

    #[test]
    fn vectorization_amortizes_logic_per_op() {
        let config = AnalysisConfig::paper_defaults();
        let w1 = HardwareMapping::build(&jacobi3d(8, &[256, 32, 32], 1), &config).unwrap();
        let w8 = HardwareMapping::build(&jacobi3d(8, &[256, 32, 32], 8), &config).unwrap();
        let e1 = estimate_resources(&w1);
        let e8 = estimate_resources(&w8);
        let per_op_1 = e1.alm as f64 / w1.ops_per_cycle() as f64;
        let per_op_8 = e8.alm as f64 / w8.ops_per_cycle() as f64;
        assert!(per_op_8 < per_op_1);
        // DSPs scale proportionally to ops per cycle.
        assert!(e8.dsp > e1.dsp * 7);
    }

    #[test]
    fn jacobi3d_calibration_is_in_table1_ballpark() {
        // The paper's best unvectorized Jacobi 3D design sustains
        // ~883 Op/cycle with 233K ALMs, 784 DSPs, and 1,495 M20Ks. Build a
        // chain of comparable ops/cycle and check the estimate lands within
        // a factor of ~1.5 of those numbers.
        let config = AnalysisConfig::paper_defaults();
        let timesteps = 126; // 126 stencils * 7 Op = 882 Op/cycle
        let program = jacobi3d(timesteps, &[1 << 15, 32, 32], 1);
        let mapping = HardwareMapping::build(&program, &config).unwrap();
        let estimate = estimate_resources(&mapping);
        assert!(
            (600..=1_200).contains(&estimate.dsp),
            "dsp = {}",
            estimate.dsp
        );
        assert!(
            (150_000..=380_000).contains(&estimate.alm),
            "alm = {}",
            estimate.alm
        );
        assert!(
            (900..=2_500).contains(&estimate.m20k),
            "m20k = {}",
            estimate.m20k
        );
        let device = Device::stratix10_gx2800();
        assert!(estimate.fits(&device));
    }
}
