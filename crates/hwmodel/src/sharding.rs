//! Predicted per-shard bandwidth and throughput for sharded execution.
//!
//! The paper's multi-device evaluation (§IX-B) splits one dataflow graph
//! across FPGAs connected by 40 Gbit/s links; the reproduction's sharded
//! runtime (`stencilflow_reference::shard`) splits the *iteration space*
//! across host worker threads connected by FIFO halo channels. This module
//! prices both sides of that analogy with the same machinery: the
//! multi-device link parameters ([`stencilflow_core::PartitionConfig`]'s
//! words-per-cycle × links × frequency) give a predicted halo-exchange
//! bandwidth, and a per-shard [`Roofline`] — the host's memory bandwidth
//! divided across shards against the workload's arithmetic intensity —
//! gives the per-shard throughput bound that benchmark reports compare
//! against measured values.

use crate::roofline::Roofline;

/// Analytical model of a sharded run: link parameters for halo traffic and
/// a host roofline shared by the shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardModel {
    /// Bandwidth of one halo link in words per cycle (paper default: a
    /// 40 Gbit/s QSFP link at ~300 MHz moves ~4 32-bit words per cycle).
    pub link_words_per_cycle: f64,
    /// Parallel links per shard boundary (the testbed has two).
    pub links_per_boundary: usize,
    /// Link clock in Hz.
    pub frequency_hz: f64,
    /// Bytes per transferred word.
    pub word_bytes: f64,
    /// Aggregate memory bandwidth of the executing host in bytes/s,
    /// divided evenly across shards for the per-shard roofline.
    pub memory_bandwidth_bytes_per_s: f64,
    /// Compute roof of one shard in GOp/s.
    pub compute_gops_per_shard: f64,
}

impl ShardModel {
    /// The paper's testbed parameters: 4 words/cycle per link, two links
    /// per boundary, ~300 MHz, 4-byte words, and the 520N board's
    /// 76.8 GB/s of aggregate DDR4 bandwidth.
    pub fn paper_defaults() -> Self {
        ShardModel {
            link_words_per_cycle: 4.0,
            links_per_boundary: 2,
            frequency_hz: 300e6,
            word_bytes: 4.0,
            memory_bandwidth_bytes_per_s: 76.8e9,
            compute_gops_per_shard: 210.5,
        }
    }

    /// Predicted halo-exchange bandwidth across one shard boundary in
    /// bytes per second: words/cycle × links × frequency × bytes/word.
    pub fn predicted_link_bytes_per_s(&self) -> f64 {
        self.link_words_per_cycle
            * self.links_per_boundary as f64
            * self.frequency_hz
            * self.word_bytes
    }

    /// Predicted time to move one halo exchange of `halo_bytes` across a
    /// boundary.
    pub fn halo_transfer_seconds(&self, halo_bytes: f64) -> f64 {
        if halo_bytes <= 0.0 {
            return 0.0;
        }
        halo_bytes / self.predicted_link_bytes_per_s()
    }

    /// The roofline one shard sees: an even share of the host memory
    /// bandwidth against the shard compute roof.
    pub fn per_shard_roofline(&self, shards: usize) -> Roofline {
        let shards = shards.max(1) as f64;
        Roofline::new(
            self.memory_bandwidth_bytes_per_s / shards,
            self.compute_gops_per_shard,
        )
    }

    /// Predict one run: per-shard bandwidth and throughput bounds plus the
    /// halo tax, for a workload touching `bytes_per_cell` and performing
    /// `ops_per_cell` at every cell.
    pub fn predict(
        &self,
        shards: usize,
        bytes_per_cell: f64,
        ops_per_cell: f64,
        halo_bytes_per_exchange: f64,
    ) -> ShardPrediction {
        let roofline = self.per_shard_roofline(shards);
        let intensity = if bytes_per_cell > 0.0 {
            ops_per_cell / bytes_per_cell
        } else {
            f64::INFINITY
        };
        let point = roofline.evaluate(intensity);
        let cells_per_s = if ops_per_cell > 0.0 {
            point.attainable_gops * 1e9 / ops_per_cell
        } else {
            f64::INFINITY
        };
        ShardPrediction {
            shards: shards.max(1),
            per_shard_bandwidth_bytes_per_s: roofline.bandwidth_bytes_per_s,
            per_shard_cells_per_s: cells_per_s,
            memory_bound: point.memory_bound,
            link_bytes_per_s: self.predicted_link_bytes_per_s(),
            halo_seconds_per_exchange: self.halo_transfer_seconds(halo_bytes_per_exchange),
        }
    }
}

/// Prediction for one sharded run, compared against measured per-shard
/// throughput in benchmark reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPrediction {
    /// Effective shard count.
    pub shards: usize,
    /// Predicted memory bandwidth available to one shard in bytes/s.
    pub per_shard_bandwidth_bytes_per_s: f64,
    /// Predicted per-shard throughput bound in cells/s.
    pub per_shard_cells_per_s: f64,
    /// Whether the per-shard bound is memory-set.
    pub memory_bound: bool,
    /// Predicted halo-link bandwidth across one boundary in bytes/s.
    pub link_bytes_per_s: f64,
    /// Predicted transfer time of one halo exchange.
    pub halo_seconds_per_exchange: f64,
}

impl ShardPrediction {
    /// Ratio of a measured per-shard throughput to the predicted bound
    /// (> 1 means the measurement beats the model, e.g. cache residency).
    pub fn measured_fraction(&self, measured_cells_per_s: f64) -> f64 {
        if self.per_shard_cells_per_s == 0.0 || !self.per_shard_cells_per_s.is_finite() {
            return 0.0;
        }
        measured_cells_per_s / self.per_shard_cells_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_bandwidth_matches_testbed_arithmetic() {
        // 4 words/cycle × 2 links × 300 MHz × 4 B = 9.6 GB/s.
        let model = ShardModel::paper_defaults();
        assert!((model.predicted_link_bytes_per_s() - 9.6e9).abs() < 1e6);
        // A 1 MiB halo then takes ~109 µs.
        let t = model.halo_transfer_seconds(1024.0 * 1024.0);
        assert!((t - 1048576.0 / 9.6e9).abs() < 1e-12);
    }

    #[test]
    fn per_shard_roofline_splits_memory_bandwidth() {
        let model = ShardModel::paper_defaults();
        let one = model.per_shard_roofline(1);
        let four = model.per_shard_roofline(4);
        assert!((one.bandwidth_bytes_per_s / four.bandwidth_bytes_per_s - 4.0).abs() < 1e-12);
        assert_eq!(one.compute_gops, four.compute_gops);
    }

    #[test]
    fn prediction_scales_down_with_shards_when_memory_bound() {
        let model = ShardModel::paper_defaults();
        // Low intensity (jacobi-like): memory bound, so per-shard cells/s
        // shrinks linearly with the shard count.
        let p1 = model.predict(1, 16.0, 8.0, 0.0);
        let p4 = model.predict(4, 16.0, 8.0, 0.0);
        assert!(p1.memory_bound && p4.memory_bound);
        assert!((p1.per_shard_cells_per_s / p4.per_shard_cells_per_s - 4.0).abs() < 1e-9);
        assert_eq!(p4.shards, 4);
        // measured_fraction is measured / predicted.
        assert!((p4.measured_fraction(p4.per_shard_cells_per_s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_shards_and_degenerate_workloads_are_clamped() {
        let model = ShardModel::paper_defaults();
        let p = model.predict(0, 0.0, 0.0, 0.0);
        assert_eq!(p.shards, 1);
        assert_eq!(p.halo_seconds_per_exchange, 0.0);
        assert_eq!(p.measured_fraction(1e9), 0.0);
    }
}
