//! Device descriptors for the evaluation platforms.

/// Spatial-resource pool of an FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourcePool {
    /// Adaptive logic modules.
    pub alm: u64,
    /// Flip-flops.
    pub ff: u64,
    /// M20K on-chip memory blocks (20 kbit each).
    pub m20k: u64,
    /// Hardened DSP blocks.
    pub dsp: u64,
}

/// Broad device category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// A reconfigurable spatial device (FPGA).
    Fpga,
    /// A GPU comparator.
    Gpu,
    /// A CPU comparator.
    Cpu,
}

/// A device descriptor: enough information to bound performance (compute,
/// bandwidth), estimate utilization (FPGA resources), and compute silicon
/// efficiency (die area).
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Device category.
    pub kind: DeviceKind,
    /// Usable spatial resources (zeroed for CPUs/GPUs).
    pub resources: ResourcePool,
    /// Peak off-chip memory bandwidth in GB/s.
    pub peak_bandwidth_gbs: f64,
    /// Peak single-precision compute in GOp/s (GPU/CPU comparators) or the
    /// practically reachable compute of StencilFlow designs (FPGA, from the
    /// paper's §VIII-C measurements).
    pub peak_compute_gops: f64,
    /// Nominal clock frequency in Hz (FPGA designs; boost clock otherwise).
    pub frequency_hz: f64,
    /// Approximate die area in mm² (for silicon efficiency, §IX-C).
    pub die_area_mm2: f64,
    /// Number of 40 Gbit/s network ports (FPGA only).
    pub network_ports: usize,
}

impl Device {
    /// The Intel Stratix 10 GX 2800 on the BittWare 520N board used by the
    /// paper: 4 DDR4 banks totalling 76.8 GB/s, four 40 Gbit/s QSFP ports,
    /// ~700 mm² die. The "available" resource numbers follow Tab. I (the
    /// board shell consumes part of the device).
    pub fn stratix10_gx2800() -> Self {
        Device {
            name: "Stratix 10 GX 2800 (BittWare 520N)".to_string(),
            kind: DeviceKind::Fpga,
            resources: ResourcePool {
                alm: 692_000,
                ff: 2_800_000,
                m20k: 8_900,
                dsp: 4_468,
            },
            peak_bandwidth_gbs: 76.8,
            // Highest single-device compute measured by the paper (Diffusion
            // 2D, W=8): 1.31 TOp/s; used as the compute roof.
            peak_compute_gops: 1_313.0,
            frequency_hz: 300e6,
            die_area_mm2: 700.0,
            network_ports: 4,
        }
    }

    /// Intel Xeon E5-2690 v3 (12 cores, 2.6/3.5 GHz), the CPU comparator.
    pub fn xeon_e5_2690v3() -> Self {
        Device {
            name: "Xeon E5-2690 v3 (12C)".to_string(),
            kind: DeviceKind::Cpu,
            resources: ResourcePool {
                alm: 0,
                ff: 0,
                m20k: 0,
                dsp: 0,
            },
            peak_bandwidth_gbs: 68.0,
            peak_compute_gops: 998.0, // 12 cores * 3.25 GHz * 2 FMA * 8-wide + margin
            frequency_hz: 2.6e9,
            die_area_mm2: 662.0,
            network_ports: 0,
        }
    }

    /// NVIDIA Tesla P100 (TSMC 16 nm, 610 mm², 732 GB/s HBM2).
    pub fn tesla_p100() -> Self {
        Device {
            name: "Tesla P100".to_string(),
            kind: DeviceKind::Gpu,
            resources: ResourcePool {
                alm: 0,
                ff: 0,
                m20k: 0,
                dsp: 0,
            },
            peak_bandwidth_gbs: 732.0,
            peak_compute_gops: 9_300.0,
            frequency_hz: 1.48e9,
            die_area_mm2: 610.0,
            network_ports: 0,
        }
    }

    /// NVIDIA Tesla V100 (TSMC 12 nm, 815 mm², 900 GB/s HBM2).
    pub fn tesla_v100() -> Self {
        Device {
            name: "Tesla V100".to_string(),
            kind: DeviceKind::Gpu,
            resources: ResourcePool {
                alm: 0,
                ff: 0,
                m20k: 0,
                dsp: 0,
            },
            peak_bandwidth_gbs: 900.0,
            peak_compute_gops: 14_000.0,
            frequency_hz: 1.53e9,
            die_area_mm2: 815.0,
            network_ports: 0,
        }
    }

    /// The Arria 10 GX 1150 used by some of the related-work comparisons in
    /// Tab. I.
    pub fn arria10_gx1150() -> Self {
        Device {
            name: "Arria 10 GX 1150".to_string(),
            kind: DeviceKind::Fpga,
            resources: ResourcePool {
                alm: 427_200,
                ff: 1_708_800,
                m20k: 2_713,
                dsp: 1_518,
            },
            peak_bandwidth_gbs: 34.1,
            peak_compute_gops: 630.0,
            frequency_hz: 300e6,
            die_area_mm2: 560.0,
            network_ports: 0,
        }
    }

    /// Peak off-chip bandwidth in bytes per second.
    pub fn peak_bandwidth_bytes(&self) -> f64 {
        self.peak_bandwidth_gbs * 1e9
    }

    /// Aggregate network bandwidth in Gbit/s (FPGA only).
    pub fn network_gbits(&self) -> f64 {
        self.network_ports as f64 * 40.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_devices_have_expected_ordering() {
        let s10 = Device::stratix10_gx2800();
        let p100 = Device::tesla_p100();
        let v100 = Device::tesla_v100();
        let xeon = Device::xeon_e5_2690v3();
        assert!(v100.peak_bandwidth_gbs > p100.peak_bandwidth_gbs);
        assert!(p100.peak_bandwidth_gbs > s10.peak_bandwidth_gbs);
        assert!(s10.peak_bandwidth_gbs > xeon.peak_bandwidth_gbs);
        assert_eq!(s10.kind, DeviceKind::Fpga);
        assert_eq!(p100.kind, DeviceKind::Gpu);
        assert_eq!(xeon.kind, DeviceKind::Cpu);
    }

    #[test]
    fn die_areas_match_section9c() {
        assert_eq!(Device::stratix10_gx2800().die_area_mm2, 700.0);
        assert_eq!(Device::tesla_p100().die_area_mm2, 610.0);
        assert_eq!(Device::tesla_v100().die_area_mm2, 815.0);
    }

    #[test]
    fn network_capacity() {
        let s10 = Device::stratix10_gx2800();
        assert_eq!(s10.network_ports, 4);
        assert_eq!(s10.network_gbits(), 160.0);
        assert_eq!(Device::tesla_v100().network_gbits(), 0.0);
    }

    #[test]
    fn bandwidth_units() {
        assert_eq!(Device::stratix10_gx2800().peak_bandwidth_bytes(), 76.8e9);
    }
}
