//! Effective off-chip bandwidth model (Fig. 16, §VIII-D).
//!
//! The Stratix 10 board's four DDR4 banks provide 76.8 GB/s of raw bandwidth,
//! but the memory-controller crossbar and the routing of many parallel access
//! points across the device limit what StencilFlow designs actually achieve:
//!
//! * with scalar (32-bit) access points, effective bandwidth tracks the
//!   request rate up to ~24 access points and then flattens out at
//!   ~36.4 GB/s (47 % of peak);
//! * with 4-way (or wider) vectorized access points, fewer endpoints request
//!   more data each, and the achievable bandwidth flattens at ~58.3 GB/s
//!   (76 % of peak).

use crate::device::Device;

/// Calibrated effective-bandwidth model for a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthModel {
    /// Raw peak bandwidth (bytes/s).
    pub peak_bytes_per_s: f64,
    /// Saturation bandwidth for scalar (1-word) access points (bytes/s).
    pub scalar_saturation_bytes_per_s: f64,
    /// Saturation bandwidth for vectorized (≥4-word) access points
    /// (bytes/s).
    pub vector_saturation_bytes_per_s: f64,
    /// Number of scalar access points the crossbar serves at full rate.
    pub scalar_knee_access_points: usize,
    /// Number of vectorized access points served at (nearly) full rate.
    pub vector_knee_access_points: usize,
}

impl BandwidthModel {
    /// The Stratix 10 / BittWare 520N model calibrated on Fig. 16.
    pub fn stratix10() -> Self {
        BandwidthModel {
            peak_bytes_per_s: 76.8e9,
            scalar_saturation_bytes_per_s: 36.4e9,
            vector_saturation_bytes_per_s: 58.3e9,
            scalar_knee_access_points: 24,
            vector_knee_access_points: 12,
        }
    }

    /// A model for an arbitrary device, assuming the same relative crossbar
    /// behaviour as the Stratix 10.
    pub fn for_device(device: &Device) -> Self {
        let scale = device.peak_bandwidth_bytes() / 76.8e9;
        let base = Self::stratix10();
        BandwidthModel {
            peak_bytes_per_s: device.peak_bandwidth_bytes(),
            scalar_saturation_bytes_per_s: base.scalar_saturation_bytes_per_s * scale,
            vector_saturation_bytes_per_s: base.vector_saturation_bytes_per_s * scale,
            ..base
        }
    }

    /// The saturation bandwidth for a given access-point vector width.
    pub fn saturation_bytes_per_s(&self, vector_width: usize) -> f64 {
        if vector_width >= 4 {
            self.vector_saturation_bytes_per_s
        } else if vector_width <= 1 {
            self.scalar_saturation_bytes_per_s
        } else {
            // Interpolate between the scalar and vectorized saturation points
            // for intermediate widths.
            let t = (vector_width - 1) as f64 / 3.0;
            self.scalar_saturation_bytes_per_s
                + t * (self.vector_saturation_bytes_per_s - self.scalar_saturation_bytes_per_s)
        }
    }

    /// Effective bandwidth (bytes/s) for a design with `access_points`
    /// endpoints of `vector_width` 32-bit operands each, clocked at
    /// `frequency_hz`.
    pub fn effective_bytes_per_s(
        &self,
        access_points: usize,
        vector_width: usize,
        frequency_hz: f64,
    ) -> f64 {
        let requested = access_points as f64 * vector_width as f64 * 4.0 * frequency_hz;
        requested
            .min(self.saturation_bytes_per_s(vector_width))
            .min(self.peak_bytes_per_s)
    }

    /// Fraction of the requested bandwidth actually delivered.
    pub fn efficiency(&self, access_points: usize, vector_width: usize, frequency_hz: f64) -> f64 {
        let requested = access_points as f64 * vector_width as f64 * 4.0 * frequency_hz;
        if requested == 0.0 {
            return 1.0;
        }
        self.effective_bytes_per_s(access_points, vector_width, frequency_hz) / requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 318e6; // Fig. 16 designs close timing near the top of the band.

    #[test]
    fn scalar_bandwidth_flattens_at_36gbs() {
        let model = BandwidthModel::stratix10();
        // Up to 24 scalar access points the request is served ~fully.
        let low = model.effective_bytes_per_s(8, 1, F);
        assert!((low / 1e9 - 10.2).abs() < 0.5, "low = {low}");
        assert!(model.efficiency(24, 1, F) > 0.95);
        // Beyond the knee it saturates at 36.4 GB/s (47% of peak).
        let high = model.effective_bytes_per_s(48, 1, F);
        assert!((high - 36.4e9).abs() < 1e8);
        assert!(model.efficiency(48, 1, F) < 0.65);
    }

    #[test]
    fn vectorized_bandwidth_reaches_58gbs() {
        let model = BandwidthModel::stratix10();
        let high = model.effective_bytes_per_s(12, 4, F);
        assert!((high - 58.3e9).abs() < 1e8);
        // 76% of peak.
        assert!((high / model.peak_bytes_per_s - 0.76).abs() < 0.02);
        // Vectorization beats scalar access at the same operand count.
        assert!(model.effective_bytes_per_s(12, 4, F) > model.effective_bytes_per_s(48, 1, F));
    }

    #[test]
    fn efficiency_is_one_for_small_designs() {
        let model = BandwidthModel::stratix10();
        assert!((model.efficiency(2, 1, F) - 1.0).abs() < 1e-9);
        assert_eq!(model.efficiency(0, 1, F), 1.0);
    }

    #[test]
    fn device_scaled_model() {
        let v100 = Device::tesla_v100();
        let model = BandwidthModel::for_device(&v100);
        assert!(model.peak_bytes_per_s > 800e9);
        assert!(model.vector_saturation_bytes_per_s > model.scalar_saturation_bytes_per_s);
    }

    #[test]
    fn intermediate_widths_interpolate() {
        let model = BandwidthModel::stratix10();
        let w2 = model.saturation_bytes_per_s(2);
        assert!(w2 > model.scalar_saturation_bytes_per_s);
        assert!(w2 < model.vector_saturation_bytes_per_s);
    }
}
