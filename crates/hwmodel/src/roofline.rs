//! Roofline model (Eq. 2–4, §IX-A).

/// A roofline: a memory-bandwidth roof and a compute roof.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Memory bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Compute roof in GOp/s.
    pub compute_gops: f64,
}

/// One evaluated point under a roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Arithmetic intensity in operations per byte.
    pub intensity: f64,
    /// Attainable performance in GOp/s.
    pub attainable_gops: f64,
    /// Whether the bound is set by memory bandwidth (as opposed to compute).
    pub memory_bound: bool,
}

impl Roofline {
    /// Create a roofline from a bandwidth (bytes/s) and a compute roof
    /// (GOp/s).
    pub fn new(bandwidth_bytes_per_s: f64, compute_gops: f64) -> Self {
        Roofline {
            bandwidth_bytes_per_s,
            compute_gops,
        }
    }

    /// Attainable performance (GOp/s) at the given arithmetic intensity
    /// (Op/byte).
    pub fn attainable_gops(&self, intensity: f64) -> f64 {
        let memory_roof = intensity * self.bandwidth_bytes_per_s / 1e9;
        memory_roof.min(self.compute_gops)
    }

    /// Evaluate a point, recording which roof binds.
    pub fn evaluate(&self, intensity: f64) -> RooflinePoint {
        let memory_roof = intensity * self.bandwidth_bytes_per_s / 1e9;
        RooflinePoint {
            intensity,
            attainable_gops: memory_roof.min(self.compute_gops),
            memory_bound: memory_roof < self.compute_gops,
        }
    }

    /// The arithmetic intensity at which the model transitions from memory-
    /// to compute-bound (the "ridge point").
    pub fn ridge_intensity(&self) -> f64 {
        if self.bandwidth_bytes_per_s == 0.0 {
            return f64::INFINITY;
        }
        self.compute_gops * 1e9 / self.bandwidth_bytes_per_s
    }

    /// The bandwidth (bytes/s) needed to sustain `gops` at the given
    /// intensity (Eq. 4 of the paper).
    pub fn bandwidth_to_saturate(gops: f64, intensity: f64) -> f64 {
        gops * 1e9 / intensity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The horizontal-diffusion arithmetic intensity of Eq. 2: 65/18 Op/B.
    const HD_INTENSITY: f64 = 65.0 / 18.0;

    #[test]
    fn eq3_bandwidth_bound() {
        // 65/18 Op/B × 58.3 GB/s = 210.5 GOp/s.
        let r = Roofline::new(58.3e9, 1_313.0);
        let p = r.evaluate(HD_INTENSITY);
        assert!((p.attainable_gops - 210.5).abs() < 1.0);
        assert!(p.memory_bound);
        // At the data-sheet bandwidth of 76.8 GB/s the bound is 277.3 GOp/s.
        let r = Roofline::new(76.8e9, 1_313.0);
        assert!((r.attainable_gops(HD_INTENSITY) - 277.3).abs() < 1.0);
    }

    #[test]
    fn eq4_bandwidth_to_saturate_compute() {
        // 917.1 GOp/s at 65/18 Op/B needs 254 GB/s.
        let needed = Roofline::bandwidth_to_saturate(917.1, HD_INTENSITY);
        assert!((needed / 1e9 - 254.0).abs() < 1.0);
    }

    #[test]
    fn ridge_point_and_compute_bound_region() {
        let r = Roofline::new(76.8e9, 1_313.0);
        let ridge = r.ridge_intensity();
        assert!((ridge - 1_313.0 / 76.8).abs() < 0.1);
        let p = r.evaluate(ridge * 2.0);
        assert!(!p.memory_bound);
        assert_eq!(p.attainable_gops, 1_313.0);
    }
}
