//! Clock-frequency model.
//!
//! "Frequencies across all benchmarks are consistently in the range
//! 292–317 MHz" (§VIII-C). Larger, more congested designs close timing at the
//! lower end of that band; small designs at the upper end. The model below
//! interpolates linearly with the binding resource utilization.

use crate::device::Device;
use crate::resources::ResourceEstimate;

/// Fill-dependent clock-frequency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyModel {
    /// Frequency achieved by small designs (Hz).
    pub max_hz: f64,
    /// Frequency achieved by nearly full designs (Hz).
    pub min_hz: f64,
}

impl Default for FrequencyModel {
    fn default() -> Self {
        FrequencyModel {
            max_hz: 317e6,
            min_hz: 292e6,
        }
    }
}

impl FrequencyModel {
    /// Estimated clock frequency for a design with the given resource
    /// estimate on the given device.
    pub fn frequency_hz(&self, estimate: &ResourceEstimate, device: &Device) -> f64 {
        let fill = estimate.max_utilization(device).clamp(0.0, 1.0);
        self.max_hz - (self.max_hz - self.min_hz) * fill
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(alm: u64) -> ResourceEstimate {
        ResourceEstimate {
            alm,
            ff: alm * 2,
            m20k: 500,
            dsp: 500,
        }
    }

    #[test]
    fn frequency_stays_in_paper_band() {
        let model = FrequencyModel::default();
        let device = Device::stratix10_gx2800();
        for alm in [10_000, 200_000, 400_000, 690_000] {
            let f = model.frequency_hz(&estimate(alm), &device);
            assert!((292e6..=317e6).contains(&f), "f = {f}");
        }
    }

    #[test]
    fn fuller_designs_run_slower() {
        let model = FrequencyModel::default();
        let device = Device::stratix10_gx2800();
        let small = model.frequency_hz(&estimate(50_000), &device);
        let large = model.frequency_hz(&estimate(600_000), &device);
        assert!(small > large);
    }
}
