//! CPU / GPU comparator performance models (Tab. II).
//!
//! The paper measures the Dawn-generated horizontal-diffusion code on a Xeon
//! E5-2690v3, a Tesla P100, and a Tesla V100. Those measurements show the
//! platforms reaching only a modest fraction of their bandwidth rooflines
//! (13 %, 8 %, and 26 % respectively) because the program is split into five
//! separate kernels with intermediate fields spilled to memory, boundary
//! scheduling overhead, and limited occupancy. We cannot run CUDA or the
//! Dawn toolchain here, so the comparator model combines each device's
//! roofline with a calibrated *stencil efficiency* factor encoding exactly
//! those effects; the factors are taken from the paper's own measurements and
//! recorded in `EXPERIMENTS.md` as calibrated constants.

use crate::device::{Device, DeviceKind};
use crate::roofline::Roofline;

/// Performance estimate of a comparator platform on a stencil program.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparatorResult {
    /// Device name.
    pub device: String,
    /// Estimated sustained throughput in GOp/s.
    pub gops: f64,
    /// Estimated runtime in microseconds.
    pub runtime_us: f64,
    /// The device's peak memory bandwidth in GB/s (reported alongside, as in
    /// Tab. II).
    pub peak_bandwidth_gbs: f64,
    /// Fraction of the device's bandwidth roofline achieved.
    pub roofline_fraction: f64,
}

/// The fraction of its own roofline a platform achieves on the multi-kernel
/// horizontal-diffusion program (calibrated on Tab. II).
pub fn stencil_efficiency(device: &Device) -> f64 {
    match device.kind {
        DeviceKind::Cpu => 0.13,
        DeviceKind::Gpu => {
            if device.peak_bandwidth_gbs >= 850.0 {
                0.26 // V100: newer scheduler, better occupancy
            } else {
                0.08 // P100
            }
        }
        DeviceKind::Fpga => 0.52,
    }
}

/// Estimate a comparator's performance on a program with the given total
/// operation count and off-chip traffic.
pub fn comparator_estimate(device: &Device, total_ops: u64, memory_bytes: u64) -> ComparatorResult {
    let intensity = total_ops as f64 / memory_bytes as f64;
    let roofline = Roofline::new(device.peak_bandwidth_bytes(), device.peak_compute_gops);
    let bound = roofline.attainable_gops(intensity);
    let fraction = stencil_efficiency(device);
    let gops = bound * fraction;
    let runtime_us = total_ops as f64 / (gops * 1e9) * 1e6;
    ComparatorResult {
        device: device.name.clone(),
        gops,
        runtime_us,
        peak_bandwidth_gbs: device.peak_bandwidth_gbs,
        roofline_fraction: fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Horizontal diffusion on the 128×128×80 domain: ~130 Op/point and
    /// 9·IJK + 5·J operands of 4 bytes.
    fn hd_totals() -> (u64, u64) {
        let ijk = 128 * 128 * 80u64;
        let ops = 130 * ijk;
        let bytes = (9 * ijk + 5 * 128) * 4;
        (ops, bytes)
    }

    #[test]
    fn table2_ordering_is_reproduced() {
        let (ops, bytes) = hd_totals();
        let xeon = comparator_estimate(&Device::xeon_e5_2690v3(), ops, bytes);
        let p100 = comparator_estimate(&Device::tesla_p100(), ops, bytes);
        let v100 = comparator_estimate(&Device::tesla_v100(), ops, bytes);
        // Paper: Xeon 32 GOp/s, P100 210 GOp/s, V100 849 GOp/s.
        assert!(xeon.gops < p100.gops);
        assert!(p100.gops < v100.gops);
        assert!((20.0..60.0).contains(&xeon.gops), "xeon = {}", xeon.gops);
        assert!((150.0..280.0).contains(&p100.gops), "p100 = {}", p100.gops);
        assert!((650.0..1000.0).contains(&v100.gops), "v100 = {}", v100.gops);
    }

    #[test]
    fn runtimes_track_throughput() {
        let (ops, bytes) = hd_totals();
        let v100 = comparator_estimate(&Device::tesla_v100(), ops, bytes);
        let xeon = comparator_estimate(&Device::xeon_e5_2690v3(), ops, bytes);
        assert!(v100.runtime_us < xeon.runtime_us);
        // Paper: V100 201 us, Xeon 5,270 us — check the order of magnitude.
        assert!(
            (100.0..400.0).contains(&v100.runtime_us),
            "{}",
            v100.runtime_us
        );
        assert!(
            (3_000.0..9_000.0).contains(&xeon.runtime_us),
            "{}",
            xeon.runtime_us
        );
    }

    #[test]
    fn efficiency_factors_match_calibration() {
        assert_eq!(stencil_efficiency(&Device::xeon_e5_2690v3()), 0.13);
        assert_eq!(stencil_efficiency(&Device::tesla_p100()), 0.08);
        assert_eq!(stencil_efficiency(&Device::tesla_v100()), 0.26);
        assert_eq!(stencil_efficiency(&Device::stratix10_gx2800()), 0.52);
    }
}
