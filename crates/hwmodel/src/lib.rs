//! Hardware models for the StencilFlow reproduction.
//!
//! The paper's evaluation runs on a BittWare 520N board (Intel Stratix 10 GX
//! 2800, four DDR4 banks, four 40 Gbit/s network ports) and compares against
//! a Xeon E5-2690v3, a Tesla P100, and a Tesla V100. None of that hardware is
//! available here, so this crate provides calibrated analytical models of it:
//!
//! * [`device`] — device descriptors (resource pools, peak bandwidth, die
//!   area, clock band) for the FPGA and the comparison platforms.
//! * [`resources`] — ALM / FF / M20K / DSP estimation for mapped designs,
//!   calibrated against the utilization numbers of Tab. I.
//! * [`frequency`] — the 292–317 MHz clock-frequency band observed across the
//!   paper's bitstreams, as a simple fill-dependent model.
//! * [`bandwidth`] — the effective off-chip bandwidth model of Fig. 16
//!   (crossbar-limited roll-off with the number of parallel access points,
//!   mitigated by vectorized endpoints).
//! * [`roofline`] — arithmetic intensity / roofline bounds (Eq. 2–4).
//! * [`comparators`] — roofline-style performance models of the CPU and GPU
//!   baselines of Tab. II.
//! * [`sharding`] — predicted per-shard bandwidth/roofline bounds for the
//!   sharded host runtime, compared against measured per-shard throughput
//!   in the benchmark reports.
//! * [`silicon`] — the silicon-efficiency metric of §IX-C.

#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod comparators;
pub mod device;
pub mod frequency;
pub mod resources;
pub mod roofline;
pub mod sharding;
pub mod silicon;

pub use bandwidth::BandwidthModel;
pub use comparators::{comparator_estimate, ComparatorResult};
pub use device::{Device, DeviceKind, ResourcePool};
pub use frequency::FrequencyModel;
pub use resources::{estimate_resources, ResourceEstimate};
pub use roofline::{Roofline, RooflinePoint};
pub use sharding::{ShardModel, ShardPrediction};
pub use silicon::silicon_efficiency;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratix10_descriptor_matches_table1_totals() {
        let device = Device::stratix10_gx2800();
        // Tab. I "Avail." row: 692K ALMs (usable), 2.8M FFs, 8.9K M20Ks,
        // 4468 usable DSPs (5760 total).
        assert_eq!(device.resources.alm, 692_000);
        assert_eq!(device.resources.m20k, 8_900);
        assert!(device.resources.dsp >= 4_400);
        assert!((device.peak_bandwidth_gbs - 76.8).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_roofline_matches_eq3() {
        // Eq. 3: 65/18 Op/B * 58.3 GB/s = 210.5 GOp/s.
        let roofline = Roofline::new(58.3e9, f64::INFINITY);
        let bound = roofline.attainable_gops(65.0 / 18.0);
        assert!((bound - 210.5).abs() < 1.0, "bound = {bound}");
    }
}
