//! Silicon efficiency (§IX-C): sustained GOp/s per mm² of die area.

use crate::device::Device;

/// Silicon efficiency in GOp/s per mm² for a device sustaining `gops`.
pub fn silicon_efficiency(gops: f64, device: &Device) -> f64 {
    if device.die_area_mm2 == 0.0 {
        return 0.0;
    }
    gops / device.die_area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section9c_numbers() {
        // Stratix 10 at 145 GOp/s (memory bound): 0.21 GOp/s/mm².
        let s10 = Device::stratix10_gx2800();
        assert!((silicon_efficiency(145.0, &s10) - 0.21).abs() < 0.01);
        // Stratix 10 at 513 GOp/s (simulated infinite bandwidth): 0.73.
        assert!((silicon_efficiency(513.0, &s10) - 0.73).abs() < 0.03);
        // P100 at 210 GOp/s: 0.34; V100 at 849 GOp/s: 1.04.
        assert!((silicon_efficiency(210.0, &Device::tesla_p100()) - 0.344).abs() < 0.01);
        assert!((silicon_efficiency(849.0, &Device::tesla_v100()) - 1.04).abs() < 0.01);
    }

    #[test]
    fn zero_area_is_handled() {
        let mut device = Device::tesla_p100();
        device.die_area_mm2 = 0.0;
        assert_eq!(silicon_efficiency(100.0, &device), 0.0);
    }
}
