//! Static shard-link sizing: the fig04 buffer analysis extended to the
//! halo-exchange links of the sharded runtime.
//!
//! The paper's fig04 analysis proves a *delay buffer* deep enough to hold
//! the data in flight between two stencil units, ruling out deadlock before
//! anything runs. The sharded tier (`stencilflow_reference::shard`) has the
//! same failure mode one level up: neighbors exchange framed halo slabs
//! over bounded FIFOs, and a link too shallow to hold one whole frame can
//! never drain — the sender blocks mid-frame forever and the receiver
//! starves. PR 6 *detects* that case at runtime with a progress watchdog;
//! this module *predicts* it, from the program and the shard configuration
//! alone, using the exact arithmetic the runtime plans with:
//!
//! ```text
//! radius        = cumulative dim0 halo radius of the DAG per step
//! halo_rows     = radius × window
//! payload_words = halo_rows × row_words          (one halo slab)
//! required      = FRAME_HEADER_WORDS + payload_words
//! deadlock      ⇔ shards > 1 ∧ configured capacity < required
//! ```
//!
//! The runtime imports [`halo_radius`], [`minimum_link_depth_words`], and
//! [`FRAME_HEADER_WORDS`] from here — prediction and detection share one
//! set of constants by construction, which `tests/analysis_prediction.rs`
//! cross-checks against the live watchdog report.

use crate::error::{CoreError, Result};
use crate::partition::SlabPartition;
use std::collections::BTreeMap;
use stencilflow_program::{ProgramError, StencilProgram};

/// Words of framing metadata preceding every halo payload on a link
/// (magic, kind, shard, seq, window, checksum). Must match the frame
/// layout in `stencilflow_reference::shard`.
pub const FRAME_HEADER_WORDS: usize = 6;

/// The fig04-style minimum capacity of a halo link: it must hold at least
/// one whole frame (header plus payload), or the sender can never complete
/// a push and the receiver starves — the sharded analogue of the paper's
/// undersized delay-buffer deadlock (Fig. 4).
pub fn minimum_link_depth_words(payload_words: usize) -> usize {
    FRAME_HEADER_WORDS + payload_words
}

/// Cumulative per-step halo radius of the DAG along the outermost
/// dimension: how many rows of garbage one time step can propagate inward
/// from a wrong boundary. Accumulates each stencil's dim0 reach on top of
/// its upstream producers' radii along the topological order.
///
/// # Errors
///
/// Returns the underlying [`ProgramError`] when the DAG is cyclic.
pub fn halo_radius(program: &StencilProgram) -> std::result::Result<usize, ProgramError> {
    let space = program.space();
    let dim0 = &space.dims[0];
    let mut radius: BTreeMap<String, i64> = program
        .inputs()
        .map(|(name, _)| (name.to_string(), 0))
        .collect();
    let mut max_radius = 0i64;
    for name in program.topological_stencils()? {
        let stencil = program
            .stencil(&name)
            .expect("topological order lists stencils");
        let mut r = 0i64;
        for (field, info) in stencil.accesses.iter() {
            let upstream = radius.get(field).copied().unwrap_or(0);
            // Position of the outermost dimension within the accessed
            // field's dims: inputs may be lower-dimensional; stencil
            // outputs always span the full space with dim0 first.
            let pos = if program.is_input(field) {
                program
                    .input(field)
                    .and_then(|decl| decl.dims.iter().position(|d| d == dim0))
            } else {
                Some(0)
            };
            let reach = pos
                .map(|p| {
                    info.offsets
                        .iter()
                        .map(|offsets| offsets.get(p).map(|o| o.abs()).unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            r = r.max(upstream + reach);
        }
        max_radius = max_radius.max(r);
        radius.insert(name, r);
    }
    Ok(max_radius as usize)
}

/// Shard-run parameters the link-sizing pass needs, mirroring the knobs of
/// the runtime's `ShardConfig`. `window` is the *requested* steps per
/// temporal window (the runtime's `with_window`); the pass applies the
/// same feasibility shrinking the runtime planner does, so the resolved
/// geometry matches it exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLinkSpec {
    /// Requested shard count.
    pub shards: usize,
    /// Requested steps per temporal window.
    pub window: usize,
    /// Total time steps of the run.
    pub steps: usize,
    /// Explicit per-link capacity in words; `None` uses the runtime's
    /// default sizing (which is never undersized by construction).
    pub link_capacity_words: Option<usize>,
    /// Number of feedback pairs of the run (`run_steps` mode); sizes the
    /// default capacity.
    pub feedback_pairs: usize,
}

impl ShardLinkSpec {
    /// Spec for `shards` shards stepping `steps` times with `window` steps
    /// per window and default capacity.
    pub fn new(shards: usize, window: usize, steps: usize) -> Self {
        ShardLinkSpec {
            shards,
            window,
            steps,
            link_capacity_words: None,
            feedback_pairs: 0,
        }
    }

    /// Override the per-link capacity (the runtime's
    /// `with_link_capacity_words`).
    pub fn with_link_capacity_words(mut self, words: usize) -> Self {
        self.link_capacity_words = Some(words);
        self
    }

    /// Set the feedback-pair count (one per output field fed back into an
    /// input between steps).
    pub fn with_feedback_pairs(mut self, pairs: usize) -> Self {
        self.feedback_pairs = pairs;
        self
    }
}

/// What the static link-sizing pass proved about one shard configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLinkRequirement {
    /// Shard count after feasibility shrinking.
    pub shards: usize,
    /// Window after feasibility shrinking.
    pub window: usize,
    /// Cumulative per-step halo radius of the DAG.
    pub radius: usize,
    /// Halo rows exchanged per window (`radius × window`).
    pub halo_rows: usize,
    /// Words per row of the iteration space.
    pub row_words: usize,
    /// Payload words of one halo frame.
    pub payload_words: usize,
    /// Minimum link capacity that can drain one frame
    /// ([`minimum_link_depth_words`]).
    pub required_frame_words: usize,
    /// Capacity the runtime would actually configure.
    pub configured_capacity_words: usize,
    /// The fig04 verdict: with more than one shard, a configured capacity
    /// below the one-frame minimum deadlocks the exchange (the runtime's
    /// watchdog will trip and degrade). Single-shard runs exchange no
    /// halos and cannot deadlock regardless of capacity.
    pub deadlock_predicted: bool,
}

/// Statically size the halo links of a sharded run and decide whether the
/// configuration deadlocks, using the same arithmetic the runtime plans
/// with (see the module docs).
///
/// # Errors
///
/// Returns [`CoreError::Program`] when the program's DAG is invalid and
/// [`CoreError::Partition`] when no feasible slab split exists at all.
pub fn analyze_shard_links(
    program: &StencilProgram,
    spec: &ShardLinkSpec,
) -> Result<ShardLinkRequirement> {
    let space = program.space();
    let extent = space.shape[0];
    let row_words: usize = space.shape[1..].iter().product::<usize>().max(1);
    let radius = halo_radius(program).map_err(CoreError::Program)?;

    // Mirror the runtime planner's feasibility shrinking: the window, then
    // the shard count, shrink until every shard can own at least its
    // dilation depth.
    let mut shards = spec.shards.min(extent).max(1);
    let mut window = spec.window.clamp(1, spec.steps.max(1));
    loop {
        let min_rows = (radius * window).max(1);
        match SlabPartition::split(extent, shards, min_rows) {
            Ok(_) => break,
            Err(_) if window > 1 => window -= 1,
            Err(_) if shards > 1 => shards -= 1,
            Err(e) => {
                return Err(CoreError::Partition {
                    message: format!("cannot shard `{}`: {e}", program.name()),
                })
            }
        }
    }

    let halo_rows = radius * window;
    let payload_words = halo_rows * row_words;
    let required_frame_words = minimum_link_depth_words(payload_words);
    // The runtime's default: room for every feedback field's frame in both
    // the original and a duplicated transmission.
    let configured_capacity_words = spec
        .link_capacity_words
        .unwrap_or_else(|| 4 * spec.feedback_pairs.max(1) * required_frame_words);
    Ok(ShardLinkRequirement {
        shards,
        window,
        radius,
        halo_rows,
        row_words,
        payload_words,
        required_frame_words,
        configured_capacity_words,
        deadlock_predicted: shards > 1 && configured_capacity_words < required_frame_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn chain(extent: usize) -> StencilProgram {
        StencilProgramBuilder::new("chain", &[extent, 4])
            .dims(&["i", "j"])
            .input("a", DataType::Float64, &["i", "j"])
            .stencil("b", "0.5 * (a[i-1,j] + a[i+1,j])")
            .stencil("c", "0.5 * (b[i-1,j] + b[i+1,j])")
            .output("c")
            .build()
            .unwrap()
    }

    #[test]
    fn radius_accumulates_along_the_chain() {
        assert_eq!(halo_radius(&chain(32)).unwrap(), 2);
    }

    #[test]
    fn default_capacity_is_never_undersized() {
        let program = chain(32);
        for shards in [1, 2, 4] {
            for window in [1, 2] {
                let req =
                    analyze_shard_links(&program, &ShardLinkSpec::new(shards, window, 4)).unwrap();
                assert!(
                    !req.deadlock_predicted,
                    "{shards} shards window {window}: default capacity predicted to deadlock"
                );
                assert!(req.configured_capacity_words >= req.required_frame_words);
            }
        }
    }

    #[test]
    fn undersized_override_is_predicted_to_deadlock() {
        let program = chain(32);
        let spec = ShardLinkSpec::new(4, 1, 4).with_link_capacity_words(4);
        let req = analyze_shard_links(&program, &spec).unwrap();
        assert!(req.deadlock_predicted);
        assert_eq!(req.configured_capacity_words, 4);
        assert_eq!(
            req.required_frame_words,
            FRAME_HEADER_WORDS + req.payload_words
        );
    }

    #[test]
    fn single_shard_cannot_deadlock() {
        let program = chain(32);
        let spec = ShardLinkSpec::new(1, 1, 4).with_link_capacity_words(1);
        let req = analyze_shard_links(&program, &spec).unwrap();
        assert!(!req.deadlock_predicted);
    }

    #[test]
    fn infeasible_geometry_shrinks_before_failing() {
        // 8 rows cannot hold 4 shards × window-4 dilation; the pass must
        // shrink (window first) rather than error, like the runtime.
        let program = chain(8);
        let req = analyze_shard_links(&program, &ShardLinkSpec::new(4, 4, 8)).unwrap();
        assert!(req.window < 4 || req.shards < 4);
    }
}
