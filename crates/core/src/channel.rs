//! Bounded FIFO channels connecting simulated units and shard workers.
//!
//! This module lives in `stencilflow-core` (rather than the simulator) so
//! that both consumers of the channel abstraction can share one type: the
//! cycle-level simulator (`stencilflow-sim`, which re-exports it under its
//! historical `sim::channel` path) wires [`Fifo`]s between stencil units,
//! and the sharded halo-exchange runtime
//! (`stencilflow_reference::shard`) carries framed halo slabs over the
//! same FIFOs — the simulator depends on the reference executor, so the
//! channel layer has to sit below both.

use std::collections::VecDeque;
use std::fmt;

/// Typed misuse error returned by [`Fifo::push`] and [`Fifo::pop`].
///
/// Every variant names the channel so a stalled or misbehaving design can
/// report exactly which edge failed — the sharded halo-exchange runtime and
/// its progress watchdog rely on this to attribute starvation to an edge
/// instead of dying in an assertion.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A push was attempted while the queue already held `capacity` words.
    Full {
        /// Channel name.
        channel: String,
        /// Configured capacity in words.
        capacity: usize,
    },
    /// A push was attempted without a full bandwidth credit available.
    OutOfCredits {
        /// Channel name.
        channel: String,
    },
    /// A pop was attempted on a channel holding no words at all.
    Empty {
        /// Channel name.
        channel: String,
    },
    /// A pop was attempted before the head word's latency elapsed.
    NotReady {
        /// Channel name.
        channel: String,
        /// The cycle of the attempted pop.
        now: u64,
        /// The cycle at which the head word becomes visible.
        ready_at: u64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Full { channel, capacity } => {
                write!(f, "push into full channel `{channel}` (capacity {capacity})")
            }
            ChannelError::OutOfCredits { channel } => {
                write!(f, "push into channel `{channel}` without bandwidth credits")
            }
            ChannelError::Empty { channel } => write!(f, "pop from empty channel `{channel}`"),
            ChannelError::NotReady {
                channel,
                now,
                ready_at,
            } => write!(
                f,
                "pop from channel `{channel}` at cycle {now} before its head word is ready (cycle {ready_at})"
            ),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A bounded FIFO carrying scalar elements between two units.
///
/// Channels model the Intel OpenCL `channel` / hardware FIFO used by the
/// generated designs: a producer can push only while the FIFO has space, a
/// consumer can pop only while it is non-empty. An optional fixed latency
/// models network links (SMI remote streams), and an optional bandwidth
/// budget throttles how many words may enter the channel per cycle.
///
/// # Credit / bandwidth contract
///
/// * An **unthrottled** channel ([`Fifo::new`]) holds unlimited credits:
///   pushes succeed whenever capacity allows, with or without
///   [`Fifo::begin_cycle`] ever being called.
/// * Attaching a budget via [`Fifo::with_bandwidth`] **resets the credit
///   pool to zero**; thereafter [`Fifo::begin_cycle`] must be called once
///   per simulated cycle to grant `words_per_cycle` new credits.
///   Fractional budgets accumulate across cycles, capped at
///   `max(words_per_cycle, 1.0)` so an idle link cannot bank an unbounded
///   burst.
/// * Each successful push consumes exactly one credit; a push without a
///   full credit fails with [`ChannelError::OutOfCredits`], never silently.
/// * Misuse is **not** a panic: [`Fifo::push`] and [`Fifo::pop`] return a
///   typed [`ChannelError`] and leave the channel state untouched, so
///   callers can treat a failed transfer as back-pressure (the simulator's
///   units check [`Fifo::can_push`] / [`Fifo::can_pop`] first and treat an
///   error as a stall).
#[derive(Debug, Clone)]
pub struct Fifo {
    name: String,
    capacity: usize,
    latency: u64,
    words_per_cycle: f64,
    queue: VecDeque<(u64, f64)>,
    credits: f64,
    pushed_total: u64,
    popped_total: u64,
    high_watermark: usize,
}

impl Fifo {
    /// Create a FIFO with the given capacity (in words).
    ///
    /// Unthrottled channels start with unlimited bandwidth credits, so a
    /// push is possible immediately — [`Fifo::begin_cycle`] only matters
    /// once a bandwidth budget is attached via [`Fifo::with_bandwidth`].
    pub fn new(name: &str, capacity: usize) -> Self {
        Fifo {
            name: name.to_string(),
            capacity: capacity.max(1),
            latency: 0,
            words_per_cycle: f64::INFINITY,
            queue: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            credits: f64::INFINITY,
            pushed_total: 0,
            popped_total: 0,
            high_watermark: 0,
        }
    }

    /// Add a fixed latency (cycles) before pushed words become visible —
    /// used for inter-device network channels.
    pub fn with_latency(mut self, latency: u64) -> Self {
        self.latency = latency;
        self
    }

    /// Limit how many words can enter the channel per cycle (may be
    /// fractional; credits accumulate) — used for bandwidth-limited links.
    /// Credits start at zero and are granted by [`Fifo::begin_cycle`].
    pub fn with_bandwidth(mut self, words_per_cycle: f64) -> Self {
        self.words_per_cycle = words_per_cycle;
        self.credits = if words_per_cycle.is_finite() {
            0.0
        } else {
            f64::INFINITY
        };
        self
    }

    /// Channel name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of words currently buffered (visible or not).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the channel currently holds no words.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a push would currently succeed.
    pub fn can_push(&self) -> bool {
        self.queue.len() < self.capacity && self.credits >= 1.0
    }

    /// Whether `n` consecutive pushes would currently succeed (capacity and
    /// bandwidth credits for the whole batch). Used by lane-batched units to
    /// reserve space for a full batch before producing it.
    pub fn can_push_n(&self, n: usize) -> bool {
        self.queue.len() + n <= self.capacity && self.credits >= n as f64
    }

    /// Whether a pop at the given cycle would succeed (a word is present and
    /// its latency has elapsed).
    pub fn can_pop(&self, now: u64) -> bool {
        self.queue
            .front()
            .map(|&(ready, _)| ready <= now)
            .unwrap_or(false)
    }

    /// Grant this cycle's bandwidth credits; called once per simulation
    /// cycle.
    pub fn begin_cycle(&mut self) {
        if self.words_per_cycle.is_finite() {
            self.credits = (self.credits + self.words_per_cycle).min(self.words_per_cycle.max(1.0));
        } else {
            self.credits = f64::INFINITY;
        }
    }

    /// Push a word at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Full`] when the queue is at capacity and
    /// [`ChannelError::OutOfCredits`] when the bandwidth budget is
    /// exhausted for this cycle; the channel state is unchanged in both
    /// cases. Check [`Fifo::can_push`] to avoid the error path entirely.
    pub fn push(&mut self, now: u64, value: f64) -> Result<(), ChannelError> {
        if self.queue.len() >= self.capacity {
            return Err(ChannelError::Full {
                channel: self.name.clone(),
                capacity: self.capacity,
            });
        }
        if self.credits < 1.0 {
            return Err(ChannelError::OutOfCredits {
                channel: self.name.clone(),
            });
        }
        self.queue.push_back((now + self.latency, value));
        self.credits -= 1.0;
        self.pushed_total += 1;
        self.high_watermark = self.high_watermark.max(self.queue.len());
        Ok(())
    }

    /// Pop the oldest visible word at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Empty`] when no word is buffered at all and
    /// [`ChannelError::NotReady`] when the head word's latency has not
    /// elapsed yet; the channel state is unchanged in both cases. Check
    /// [`Fifo::can_pop`] to avoid the error path entirely.
    pub fn pop(&mut self, now: u64) -> Result<f64, ChannelError> {
        match self.queue.front() {
            None => Err(ChannelError::Empty {
                channel: self.name.clone(),
            }),
            Some(&(ready_at, _)) if ready_at > now => Err(ChannelError::NotReady {
                channel: self.name.clone(),
                now,
                ready_at,
            }),
            Some(_) => {
                self.popped_total += 1;
                Ok(self.queue.pop_front().expect("checked above").1)
            }
        }
    }

    /// Total words pushed over the run.
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// Total words popped over the run.
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Highest occupancy observed (words).
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut fifo = Fifo::new("c", 4);
        fifo.begin_cycle();
        fifo.push(0, 1.0).unwrap();
        fifo.push(0, 2.0).unwrap();
        assert_eq!(fifo.len(), 2);
        assert_eq!(fifo.pop(0).unwrap(), 1.0);
        assert_eq!(fifo.pop(0).unwrap(), 2.0);
        assert!(fifo.is_empty());
        assert_eq!(fifo.pushed_total(), 2);
        assert_eq!(fifo.popped_total(), 2);
    }

    #[test]
    fn capacity_limits_pushes() {
        let mut fifo = Fifo::new("c", 2);
        fifo.begin_cycle();
        fifo.push(0, 1.0).unwrap();
        fifo.push(0, 2.0).unwrap();
        assert!(!fifo.can_push());
        assert_eq!(fifo.high_watermark(), 2);
    }

    #[test]
    fn latency_delays_visibility() {
        let mut fifo = Fifo::new("net", 8).with_latency(5);
        fifo.begin_cycle();
        fifo.push(0, 1.0).unwrap();
        assert!(!fifo.can_pop(0));
        assert!(!fifo.can_pop(4));
        assert!(fifo.can_pop(5));
        assert_eq!(fifo.pop(5).unwrap(), 1.0);
    }

    #[test]
    fn unthrottled_channels_accept_pushes_before_any_cycle() {
        // Regression: freshly constructed unthrottled channels used to start
        // with zero bandwidth credits, rejecting pushes until the first
        // `begin_cycle` even though no bandwidth budget was configured.
        let mut fifo = Fifo::new("c", 4);
        assert!(fifo.can_push());
        fifo.push(0, 1.0).unwrap();
        assert_eq!(fifo.pop(0).unwrap(), 1.0);
        // Latency does not interact with credits either.
        let mut delayed = Fifo::new("net", 4).with_latency(2);
        assert!(delayed.can_push());
        delayed.push(0, 2.0).unwrap();
        assert_eq!(delayed.pop(2).unwrap(), 2.0);
    }

    #[test]
    fn bandwidth_limited_channels_still_wait_for_credits() {
        // Attaching a bandwidth budget resets the credit pool: no push until
        // `begin_cycle` grants the first credit.
        let mut fifo = Fifo::new("link", 4).with_bandwidth(1.0);
        assert!(!fifo.can_push());
        fifo.begin_cycle();
        assert!(fifo.can_push());
    }

    #[test]
    fn bandwidth_credits_throttle_pushes() {
        let mut fifo = Fifo::new("link", 64).with_bandwidth(0.5);
        fifo.begin_cycle(); // credits = 0.5
        assert!(!fifo.can_push());
        fifo.begin_cycle(); // credits = 1.0
        assert!(fifo.can_push());
        fifo.push(1, 3.0).unwrap();
        assert!(!fifo.can_push());
    }

    #[test]
    fn misuse_returns_typed_errors_and_leaves_state_untouched() {
        // Pop from a channel that never held a word.
        let mut fifo = Fifo::new("c", 2);
        assert_eq!(
            fifo.pop(0),
            Err(ChannelError::Empty {
                channel: "c".to_string()
            })
        );
        // Pop before the head word's latency elapsed.
        let mut net = Fifo::new("net", 2).with_latency(3);
        net.push(0, 1.0).unwrap();
        assert_eq!(
            net.pop(1),
            Err(ChannelError::NotReady {
                channel: "net".to_string(),
                now: 1,
                ready_at: 3,
            })
        );
        assert_eq!(net.len(), 1, "failed pop must not consume the word");
        assert_eq!(net.pop(3).unwrap(), 1.0);
        // Push into a full channel.
        let mut full = Fifo::new("f", 1);
        full.push(0, 1.0).unwrap();
        assert_eq!(
            full.push(0, 2.0),
            Err(ChannelError::Full {
                channel: "f".to_string(),
                capacity: 1,
            })
        );
        assert_eq!(full.pushed_total(), 1, "failed push must not count");
        // Push without a bandwidth credit.
        let mut link = Fifo::new("link", 4).with_bandwidth(1.0);
        assert_eq!(
            link.push(0, 1.0),
            Err(ChannelError::OutOfCredits {
                channel: "link".to_string()
            })
        );
        assert!(link.is_empty());
        // The errors render the channel name for diagnostics.
        let message = ChannelError::Full {
            channel: "b0->b1".to_string(),
            capacity: 8,
        }
        .to_string();
        assert!(message.contains("b0->b1"));
    }
}
