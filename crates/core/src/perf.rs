//! Expected-runtime model (Eq. 1, §VIII-A).
//!
//! All architectures emitted by StencilFlow are fully pipelined with
//! initiation interval I = 1, so the cycle count to process N inputs is
//!
//! ```text
//! C = L + I · N
//! ```
//!
//! where L is the pipeline latency (initialization phases plus compute
//! critical path accumulated along the deepest path of the DAG) and N is the
//! number of iterations (domain cells divided by the vectorization width).
//! N covers the streaming phase where all stencils operate in a pipeline
//! parallel fashion; L covers initialization, during which stencil units are
//! not yet feeding downstream consumers. L is proportional to (D−1)-
//! dimensional slices only, so it becomes negligible for large domains.

use crate::buffers::InternalBufferAnalysis;
use crate::config::AnalysisConfig;
use crate::delay::DelayBufferAnalysis;
use crate::error::Result;
use stencilflow_program::StencilProgram;

/// Expected performance of a mapped stencil program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceEstimate {
    /// Number of pipeline iterations N (cells / W).
    pub iterations: u64,
    /// Pipeline latency L in cycles.
    pub pipeline_latency: u64,
    /// Total expected cycles C = L + N.
    pub expected_cycles: u64,
    /// Floating-point operations evaluated over the whole program run.
    pub total_ops: u64,
    /// Clock frequency (Hz) assumed for time-based figures.
    pub frequency_hz: f64,
}

impl PerformanceEstimate {
    /// Compute the estimate from the buffering analyses.
    ///
    /// # Errors
    ///
    /// Propagates DAG errors from the underlying analyses (none are raised
    /// for validated programs).
    pub fn compute(
        program: &StencilProgram,
        _internal: &InternalBufferAnalysis,
        delay: &DelayBufferAnalysis,
        config: &AnalysisConfig,
    ) -> Result<Self> {
        let width = config.effective_vectorization(program.vectorization()) as u64;
        let iterations = (program.space().num_cells() as u64).div_ceil(width);
        let pipeline_latency = delay.pipeline_latency();
        Ok(PerformanceEstimate {
            iterations,
            pipeline_latency,
            expected_cycles: pipeline_latency + iterations,
            total_ops: program.total_flops(),
            frequency_hz: config.default_frequency_hz,
        })
    }

    /// Expected runtime in seconds at the configured frequency.
    pub fn runtime_seconds(&self) -> f64 {
        self.expected_cycles as f64 / self.frequency_hz
    }

    /// Expected runtime in microseconds.
    pub fn runtime_microseconds(&self) -> f64 {
        self.runtime_seconds() * 1e6
    }

    /// Expected sustained throughput in Op/s.
    pub fn ops_per_second(&self) -> f64 {
        self.total_ops as f64 / self.runtime_seconds()
    }

    /// Expected sustained throughput in GOp/s.
    pub fn gops(&self) -> f64 {
        self.ops_per_second() / 1e9
    }

    /// Fraction of the total cycle count spent in initialization (the
    /// quantity reported as "~0.7 %" for the fused horizontal-diffusion
    /// program in §IX-B).
    pub fn init_fraction(&self) -> f64 {
        self.pipeline_latency as f64 / self.expected_cycles as f64
    }

    /// Re-evaluate the estimate at a different clock frequency.
    pub fn at_frequency(mut self, frequency_hz: f64) -> Self {
        self.frequency_hz = frequency_hz;
        self
    }
}

/// Compute expected cycles for a program directly (Eq. 1 convenience
/// wrapper).
///
/// # Errors
///
/// Returns an error if the program DAG is invalid.
pub fn expected_cycles(program: &StencilProgram, config: &AnalysisConfig) -> Result<u64> {
    let internal = InternalBufferAnalysis::compute(program, config)?;
    let delay = DelayBufferAnalysis::compute(program, &internal, config)?;
    Ok(PerformanceEstimate::compute(program, &internal, &delay, config)?.expected_cycles)
}

/// Compute the expected runtime of a program in seconds at the configured
/// frequency.
///
/// # Errors
///
/// Returns an error if the program DAG is invalid.
pub fn expected_runtime_seconds(program: &StencilProgram, config: &AnalysisConfig) -> Result<f64> {
    let internal = InternalBufferAnalysis::compute(program, config)?;
    let delay = DelayBufferAnalysis::compute(program, &internal, config)?;
    Ok(PerformanceEstimate::compute(program, &internal, &delay, config)?.runtime_seconds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::{StencilProgram, StencilProgramBuilder};

    fn chain(length: usize, shape: &[usize], width: usize) -> StencilProgram {
        let mut builder = StencilProgramBuilder::new("chain", shape)
            .input("f0", DataType::Float32, &["i", "j"])
            .vectorization(width);
        for stage in 1..=length {
            let prev = if stage == 1 {
                "f0".to_string()
            } else {
                format!("f{}", stage - 1)
            };
            builder = builder.stencil(
                &format!("f{stage}"),
                &format!("0.25 * ({prev}[i,j-1] + 2.0*{prev}[i,j] + {prev}[i,j+1])"),
            );
        }
        builder.output(&format!("f{length}")).build().unwrap()
    }

    #[test]
    fn cycles_equal_latency_plus_iterations() {
        let program = chain(4, &[64, 64], 1);
        let config = AnalysisConfig::unit_latencies();
        let internal = InternalBufferAnalysis::compute(&program, &config).unwrap();
        let delay = DelayBufferAnalysis::compute(&program, &internal, &config).unwrap();
        let perf = PerformanceEstimate::compute(&program, &internal, &delay, &config).unwrap();
        assert_eq!(perf.iterations, 64 * 64);
        assert_eq!(
            perf.expected_cycles,
            perf.pipeline_latency + perf.iterations
        );
        assert_eq!(
            perf.expected_cycles,
            expected_cycles(&program, &config).unwrap()
        );
    }

    #[test]
    fn latency_grows_with_chain_depth_but_stays_small() {
        let config = AnalysisConfig::paper_defaults();
        let shallow = expected_cycles(&chain(2, &[128, 128], 1), &config).unwrap();
        let deep = expected_cycles(&chain(8, &[128, 128], 1), &config).unwrap();
        assert!(deep > shallow);
        // §VIII-A: latency is proportional to (D-1)-dimensional slices, so it
        // is small relative to the domain for realistic sizes.
        let perf_deep = {
            let program = chain(8, &[128, 128], 1);
            let internal = InternalBufferAnalysis::compute(&program, &config).unwrap();
            let delay = DelayBufferAnalysis::compute(&program, &internal, &config).unwrap();
            PerformanceEstimate::compute(&program, &internal, &delay, &config).unwrap()
        };
        assert!(perf_deep.init_fraction() < 0.1);
    }

    #[test]
    fn vectorization_divides_iterations_and_runtime() {
        let config = AnalysisConfig::paper_defaults();
        let scalar = expected_runtime_seconds(&chain(4, &[64, 64], 1), &config).unwrap();
        let vectorized = expected_runtime_seconds(&chain(4, &[64, 64], 4), &config).unwrap();
        assert!(vectorized < scalar);
        assert!(vectorized > scalar / 5.0);
    }

    #[test]
    fn throughput_metrics_are_consistent() {
        let program = chain(4, &[64, 64], 1);
        let config = AnalysisConfig::paper_defaults();
        let internal = InternalBufferAnalysis::compute(&program, &config).unwrap();
        let delay = DelayBufferAnalysis::compute(&program, &internal, &config).unwrap();
        let perf = PerformanceEstimate::compute(&program, &internal, &delay, &config).unwrap();
        assert!((perf.gops() - perf.ops_per_second() / 1e9).abs() < 1e-9);
        assert!((perf.runtime_microseconds() - perf.runtime_seconds() * 1e6).abs() < 1e-9);
        let faster = perf.at_frequency(600e6);
        assert!(faster.runtime_seconds() < perf.runtime_seconds());
    }
}
