//! Vectorization analysis (§IV-C).
//!
//! Vectorizing by a factor W processes W contiguous elements of the innermost
//! dimension per cycle. This reduces the number of iterations in the inner
//! loop of all stencils by W (shrinking initialization phases and delay
//! buffers in *words*, while buffer sizes in *elements* grow by W−1), and
//! multiplies both the compute parallelism and the memory bandwidth demand
//! per cycle by W.

use crate::config::AnalysisConfig;
use stencilflow_program::StencilProgram;

/// Derived per-cycle quantities for a (possibly vectorized) program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorizationInfo {
    /// Vectorization width W.
    pub width: usize,
    /// Iterations of the global pipeline: number of cells divided by W.
    pub iterations: u64,
    /// Floating-point operations executed per cycle when the pipeline is
    /// streaming (all stencils active).
    pub ops_per_cycle: u64,
    /// Operands requested from off-chip memory per cycle: one per
    /// full-domain input field and one per program output, times W.
    /// Lower-dimensional inputs are amortized over the inner loop and do not
    /// contribute meaningfully (they are counted as zero, matching the
    /// paper's "9 operands/cycle" figure for horizontal diffusion).
    pub memory_operands_per_cycle: u64,
    /// Off-chip bytes moved per cycle (reads + writes).
    pub memory_bytes_per_cycle: u64,
}

impl VectorizationInfo {
    /// Compute the vectorization-derived quantities of a program.
    pub fn of(program: &StencilProgram, config: &AnalysisConfig) -> Self {
        let width = config.effective_vectorization(program.vectorization());
        let cells = program.space().num_cells() as u64;
        let iterations = cells.div_ceil(width as u64);
        let ops_per_cycle = program.ops_per_cell().flops() * width as u64;

        let full_rank = program.space().rank();
        let mut operand_count = 0u64;
        let mut bytes = 0u64;
        for (_, decl) in program.inputs() {
            if decl.rank() == full_rank {
                operand_count += 1;
                bytes += decl.data_type().size_bytes() as u64;
            }
        }
        for output in program.outputs() {
            operand_count += 1;
            bytes += program
                .field_type(output)
                .map(|t| t.size_bytes() as u64)
                .unwrap_or(4);
        }
        VectorizationInfo {
            width,
            iterations,
            ops_per_cycle,
            memory_operands_per_cycle: operand_count * width as u64,
            memory_bytes_per_cycle: bytes * width as u64,
        }
    }

    /// Off-chip bandwidth (bytes/s) required to stream at the given clock
    /// frequency without stalling.
    pub fn required_bandwidth(&self, frequency_hz: f64) -> f64 {
        self.memory_bytes_per_cycle as f64 * frequency_hz
    }

    /// Compute throughput (Op/s) at the given clock frequency, ignoring
    /// initialization latency.
    pub fn peak_ops_per_second(&self, frequency_hz: f64) -> f64 {
        self.ops_per_cycle as f64 * frequency_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn program(width: usize) -> StencilProgram {
        StencilProgramBuilder::new("p", &[32, 32, 32])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .input("b", DataType::Float32, &["i", "j", "k"])
            .input("surf", DataType::Float32, &["i", "k"])
            .stencil("c", "a[i,j,k] + b[i,j,k] * surf[i,k]")
            .output("c")
            .vectorization(width)
            .build()
            .unwrap()
    }

    #[test]
    fn iterations_shrink_with_width() {
        let info1 = VectorizationInfo::of(&program(1), &AnalysisConfig::default());
        let info4 = VectorizationInfo::of(&program(4), &AnalysisConfig::default());
        assert_eq!(info1.iterations, 32 * 32 * 32);
        assert_eq!(info4.iterations, 32 * 32 * 32 / 4);
        assert_eq!(info4.width, 4);
    }

    #[test]
    fn per_cycle_quantities_scale_with_width() {
        let info1 = VectorizationInfo::of(&program(1), &AnalysisConfig::default());
        let info4 = VectorizationInfo::of(&program(4), &AnalysisConfig::default());
        assert_eq!(info1.ops_per_cycle * 4, info4.ops_per_cycle);
        // 2 full-rank inputs + 1 output = 3 operands/cycle at W=1.
        assert_eq!(info1.memory_operands_per_cycle, 3);
        assert_eq!(info4.memory_operands_per_cycle, 12);
        assert_eq!(info1.memory_bytes_per_cycle, 12);
    }

    #[test]
    fn config_override_takes_precedence() {
        let info = VectorizationInfo::of(
            &program(1),
            &AnalysisConfig::default().with_vectorization(8),
        );
        assert_eq!(info.width, 8);
    }

    #[test]
    fn bandwidth_and_peak_ops() {
        let info = VectorizationInfo::of(&program(1), &AnalysisConfig::default());
        let f = 300e6;
        assert_eq!(info.required_bandwidth(f), 12.0 * f);
        assert_eq!(info.peak_ops_per_second(f), info.ops_per_cycle as f64 * f);
    }
}
