//! Single-device hardware mapping (§III-A).
//!
//! Every stencil operation of the DAG is mapped to simultaneous dedicated
//! logic (a *stencil unit*), all scheduled at once and operating in a fully
//! pipeline-parallel manner. Inputs are provided through on-chip channels
//! with compile-time fixed depths (the delay buffers of §IV-B); off-chip
//! memory is accessed by dedicated reader units (prefetchers) at source nodes
//! and writer units at sink nodes.

use crate::buffers::InternalBufferAnalysis;
use crate::config::AnalysisConfig;
use crate::delay::DelayBufferAnalysis;
use crate::error::Result;
use crate::perf::PerformanceEstimate;
use std::collections::BTreeMap;
use stencilflow_expr::OpCount;
use stencilflow_program::{NodeKind, StencilDag, StencilProgram};

/// One stencil unit of the mapped design.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilUnit {
    /// Stencil (and produced field) name.
    pub name: String,
    /// Operations evaluated per cycle per vector lane.
    pub ops: OpCount,
    /// Initialization phase in iterations (internal-buffer fill).
    pub init_iterations: u64,
    /// Compute critical-path latency in cycles.
    pub compute_latency: u64,
    /// Total internal-buffer elements held by this unit.
    pub internal_buffer_elements: u64,
    /// Number of input channels feeding this unit.
    pub fan_in: usize,
    /// Number of output channels this unit feeds.
    pub fan_out: usize,
}

/// What a channel endpoint is attached to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChannelEndpoint {
    /// A DRAM reader unit for the named input field.
    MemoryRead(String),
    /// A DRAM writer unit for the named output field.
    MemoryWrite(String),
    /// A stencil unit.
    Stencil(String),
}

impl ChannelEndpoint {
    /// The underlying node name.
    pub fn name(&self) -> &str {
        match self {
            ChannelEndpoint::MemoryRead(n)
            | ChannelEndpoint::MemoryWrite(n)
            | ChannelEndpoint::Stencil(n) => n,
        }
    }

    /// Whether the endpoint touches off-chip memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            ChannelEndpoint::MemoryRead(_) | ChannelEndpoint::MemoryWrite(_)
        )
    }
}

/// Kind of off-chip memory access performed by a memory unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryAccessKind {
    /// Reading an input field.
    Read,
    /// Writing a program output.
    Write,
}

/// A FIFO channel of the mapped design.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Producer endpoint.
    pub from: ChannelEndpoint,
    /// Consumer endpoint.
    pub to: ChannelEndpoint,
    /// Field carried by the channel.
    pub field: String,
    /// FIFO depth in vector words (delay buffer + minimum slack).
    pub depth_words: u64,
    /// FIFO capacity in elements (`depth_words × W`).
    pub depth_elements: u64,
}

/// A dedicated off-chip memory access unit (prefetcher or writer).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryUnit {
    /// Field read or written.
    pub field: String,
    /// Access direction.
    pub kind: MemoryAccessKind,
    /// Number of stencil units fed by (or feeding) this unit.
    pub connections: usize,
    /// Operands transferred per cycle (vector width for full-domain fields,
    /// 0 for lower-dimensional fields that are amortized).
    pub operands_per_cycle: u64,
}

/// The complete single-device hardware mapping of a stencil program.
#[derive(Debug, Clone)]
pub struct HardwareMapping {
    /// Program name.
    pub program_name: String,
    /// All stencil units.
    pub units: Vec<StencilUnit>,
    /// All channels (memory→stencil, stencil→stencil, stencil→memory).
    pub channels: Vec<Channel>,
    /// All off-chip memory access units.
    pub memory_units: Vec<MemoryUnit>,
    /// Vectorization width of the design.
    pub vector_width: usize,
    /// Expected performance (Eq. 1).
    pub performance: PerformanceEstimate,
}

impl HardwareMapping {
    /// Build the mapping of a program from its buffering analysis.
    ///
    /// # Errors
    ///
    /// Returns an error if the program DAG is invalid.
    pub fn build(program: &StencilProgram, config: &AnalysisConfig) -> Result<Self> {
        let internal = InternalBufferAnalysis::compute(program, config)?;
        let delay = DelayBufferAnalysis::compute(program, &internal, config)?;
        let performance = PerformanceEstimate::compute(program, &internal, &delay, config)?;
        Self::from_analysis(program, &internal, &delay, performance, config)
    }

    /// Build the mapping from precomputed analyses (used by the end-to-end
    /// pipeline to avoid repeating the analysis).
    ///
    /// # Errors
    ///
    /// Returns an error if the program DAG is invalid.
    pub fn from_analysis(
        program: &StencilProgram,
        internal: &InternalBufferAnalysis,
        delay: &DelayBufferAnalysis,
        performance: PerformanceEstimate,
        config: &AnalysisConfig,
    ) -> Result<Self> {
        let dag = program.dag()?;
        let width = config.effective_vectorization(program.vectorization());
        let full_rank = program.space().rank();

        let mut units = Vec::new();
        for stencil in program.stencils() {
            let buffers = internal.stencil(&stencil.name).cloned().unwrap_or_default();
            units.push(StencilUnit {
                name: stencil.name.clone(),
                ops: stencil.op_count(),
                init_iterations: buffers.init_iterations(),
                compute_latency: stencil.compute_latency(&config.latencies),
                internal_buffer_elements: buffers.total_elements(),
                fan_in: dag.in_degree(&stencil.name),
                fan_out: dag.out_degree(&stencil.name),
            });
        }

        let endpoint = |name: &str, dag: &StencilDag| -> ChannelEndpoint {
            match dag.node_kind(name) {
                Some(NodeKind::Input) => ChannelEndpoint::MemoryRead(name.to_string()),
                Some(NodeKind::Output) => ChannelEndpoint::MemoryWrite(
                    name.strip_suffix("__out").unwrap_or(name).to_string(),
                ),
                _ => ChannelEndpoint::Stencil(name.to_string()),
            }
        };

        let mut channels = Vec::new();
        for depth in delay.channels() {
            channels.push(Channel {
                from: endpoint(&depth.from, &dag),
                to: endpoint(&depth.to, &dag),
                field: depth.field.clone(),
                depth_words: depth.depth_words,
                depth_elements: depth.depth_words * width as u64,
            });
        }

        let mut memory_units = Vec::new();
        for (name, decl) in program.inputs() {
            let connections = dag.out_degree(name);
            memory_units.push(MemoryUnit {
                field: name.to_string(),
                kind: MemoryAccessKind::Read,
                connections,
                operands_per_cycle: if decl.rank() == full_rank {
                    width as u64
                } else {
                    0
                },
            });
        }
        let mut write_counts: BTreeMap<&str, usize> = BTreeMap::new();
        for output in program.outputs() {
            *write_counts.entry(output.as_str()).or_default() += 1;
        }
        for (output, count) in write_counts {
            memory_units.push(MemoryUnit {
                field: output.to_string(),
                kind: MemoryAccessKind::Write,
                connections: count,
                operands_per_cycle: width as u64,
            });
        }

        Ok(HardwareMapping {
            program_name: program.name().to_string(),
            units,
            channels,
            memory_units,
            vector_width: width,
            performance,
        })
    }

    /// Look up a stencil unit by name.
    pub fn unit(&self, name: &str) -> Option<&StencilUnit> {
        self.units.iter().find(|u| u.name == name)
    }

    /// Number of stencil units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Channels whose consumer is the given stencil.
    pub fn input_channels(&self, stencil: &str) -> Vec<&Channel> {
        self.channels
            .iter()
            .filter(|c| c.to == ChannelEndpoint::Stencil(stencil.to_string()))
            .collect()
    }

    /// Channels whose producer is the given stencil.
    pub fn output_channels(&self, stencil: &str) -> Vec<&Channel> {
        self.channels
            .iter()
            .filter(|c| c.from == ChannelEndpoint::Stencil(stencil.to_string()))
            .collect()
    }

    /// Total on-chip buffer capacity of the design in elements (internal
    /// buffers plus channel capacities).
    pub fn total_buffer_elements(&self) -> u64 {
        let internal: u64 = self.units.iter().map(|u| u.internal_buffer_elements).sum();
        let channels: u64 = self.channels.iter().map(|c| c.depth_elements).sum();
        internal + channels
    }

    /// Floating-point operations instantiated per cycle across the whole
    /// design (the x-axis of the paper's Fig. 14/15).
    pub fn ops_per_cycle(&self) -> u64 {
        self.units.iter().map(|u| u.ops.flops()).sum::<u64>() * self.vector_width as u64
    }

    /// Number of parallel off-chip access points (the x-axis of Fig. 16):
    /// memory units that move data every cycle.
    pub fn memory_access_points(&self) -> usize {
        self.memory_units
            .iter()
            .filter(|m| m.operands_per_cycle > 0)
            .count()
    }

    /// Operands requested from off-chip memory per cycle.
    pub fn memory_operands_per_cycle(&self) -> u64 {
        self.memory_units.iter().map(|m| m.operands_per_cycle).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::listing1;

    #[test]
    fn listing1_mapping_structure() {
        let program = listing1();
        let mapping = HardwareMapping::build(&program, &AnalysisConfig::paper_defaults()).unwrap();
        assert_eq!(mapping.unit_count(), 5);
        // Channels: a0->b0, a1->b0, b0->b1, a2->b1, b0->b2, a2->b2, b1->b3,
        // b2->b4, b3->b4, b4->out = 10.
        assert_eq!(mapping.channels.len(), 10);
        // Memory units: 3 readers + 1 writer.
        assert_eq!(mapping.memory_units.len(), 4);
        assert_eq!(mapping.input_channels("b4").len(), 2);
        assert_eq!(mapping.output_channels("b0").len(), 2);
        let b0 = mapping.unit("b0").unwrap();
        assert_eq!(b0.fan_in, 2);
        assert_eq!(b0.fan_out, 2);
    }

    #[test]
    fn memory_access_points_exclude_lower_dimensional_inputs() {
        let program = listing1();
        let mapping = HardwareMapping::build(&program, &AnalysisConfig::paper_defaults()).unwrap();
        // a0, a1 are 3D reads; a2 is 2D (amortized); b4 is written.
        assert_eq!(mapping.memory_access_points(), 3);
        assert_eq!(mapping.memory_operands_per_cycle(), 3);
    }

    #[test]
    fn buffer_totals_are_consistent_with_analysis() {
        let program = listing1();
        let config = AnalysisConfig::paper_defaults();
        let mapping = HardwareMapping::build(&program, &config).unwrap();
        let analysis = crate::analyze(&program, &config).unwrap();
        assert_eq!(
            mapping.total_buffer_elements(),
            analysis.total_buffer_elements()
        );
    }

    #[test]
    fn ops_per_cycle_scales_with_vectorization() {
        let program = listing1();
        let w1 = HardwareMapping::build(&program, &AnalysisConfig::paper_defaults()).unwrap();
        let w4 = HardwareMapping::build(
            &program,
            &AnalysisConfig::paper_defaults().with_vectorization(4),
        )
        .unwrap();
        assert_eq!(w1.ops_per_cycle() * 4, w4.ops_per_cycle());
        assert_eq!(w4.vector_width, 4);
    }

    #[test]
    fn channel_endpoints_classify_memory_and_stencils() {
        let program = listing1();
        let mapping = HardwareMapping::build(&program, &AnalysisConfig::paper_defaults()).unwrap();
        let from_memory = mapping
            .channels
            .iter()
            .filter(|c| c.from.is_memory())
            .count();
        // a0->b0, a1->b0, a2->b1, a2->b2 come from memory readers.
        assert_eq!(from_memory, 4);
        let to_memory = mapping.channels.iter().filter(|c| c.to.is_memory()).count();
        assert_eq!(to_memory, 1);
        assert_eq!(
            mapping
                .channels
                .iter()
                .find(|c| c.to.is_memory())
                .unwrap()
                .to
                .name(),
            "b4"
        );
    }
}
