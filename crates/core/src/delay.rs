//! Delay buffers for inter-stencil reuse and deadlock freedom (§IV-B).
//!
//! Every edge of the stencil DAG becomes an on-chip FIFO channel. When the
//! DAG is not a multi-tree, paths of different latency reconverge at some
//! node, and the data arriving along the "fast" path must be buffered until
//! the "slow" path produces its first values — otherwise the producer blocks
//! on a full channel while the consumer waits on an empty one: a deadlock
//! (Fig. 4).
//!
//! Two effects delay data along a path:
//!
//! * the *initialization phase* of each stencil (filling its internal
//!   buffers, §IV-A) — the dominant term, proportional to (D−1)-dimensional
//!   slices of the iteration space;
//! * the *compute critical path* of each stencil's expression DAG — small
//!   (<100 cycles) but included for completeness.
//!
//! The analysis traverses the DAG in topological order, computes for every
//! node the largest delay accumulated along any path from any source
//! (including the node's own contribution), and sizes the FIFO on each edge
//! `(u, v)` as `max_{(u',v)} delay(u') − delay(u)`: the edge on the slowest
//! path gets depth zero (plus a minimum pipelining slack), every other edge
//! gets exactly the credits needed to keep streaming until the slowest path
//! catches up. This reproduces Fig. 8, where the edge bypassing two kernels
//! of latency 64 and 16 receives a `64 + 16` deep buffer.

use crate::buffers::InternalBufferAnalysis;
use crate::config::AnalysisConfig;
use crate::error::{CoreError, Result};
use std::collections::BTreeMap;
use stencilflow_program::{NodeKind, StencilDag, StencilProgram};

/// Computed FIFO depth of one DAG edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDepth {
    /// Producer node.
    pub from: String,
    /// Consumer node.
    pub to: String,
    /// Field carried by the edge.
    pub field: String,
    /// Accumulated delay (cycles) of data arriving over this edge, i.e. the
    /// longest-path delay up to and including the producer.
    pub edge_delay: u64,
    /// Required FIFO depth in vector words (transactions), excluding the
    /// configured minimum depth.
    pub delay_words: u64,
    /// Total FIFO depth in vector words, including the minimum depth.
    pub depth_words: u64,
}

/// Result of the delay-buffer analysis for a whole program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayBufferAnalysis {
    channels: Vec<ChannelDepth>,
    arrival: BTreeMap<String, u64>,
    node_delay: BTreeMap<String, u64>,
    vector_width: u64,
    min_depth: u64,
}

impl DelayBufferAnalysis {
    /// Compute delay buffers for every edge of the program's DAG.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Program`] if the DAG is cyclic.
    pub fn compute(
        program: &StencilProgram,
        internal: &InternalBufferAnalysis,
        config: &AnalysisConfig,
    ) -> Result<Self> {
        let dag = program.dag()?;
        let width = config.effective_vectorization(program.vectorization()) as u64;

        // Per-node delay contribution: init phase + compute critical path for
        // stencils, zero for memory nodes. (Reported per node; the edge-level
        // analysis below uses the per-field initialization terms.)
        let mut node_delay: BTreeMap<String, u64> = BTreeMap::new();
        for node in dag.nodes() {
            let delay = match node.kind {
                NodeKind::Stencil => {
                    let init = internal.init_iterations(&node.name);
                    let compute = program
                        .stencil(&node.name)
                        .map(|s| s.compute_latency(&config.latencies))
                        .unwrap_or(0);
                    init + compute
                }
                NodeKind::Input | NodeKind::Output => 0,
            };
            node_delay.insert(node.name.clone(), delay);
        }

        // Per-edge initialization contribution: the delay the *consumer*
        // imposes on data arriving over this particular edge (the fill of the
        // internal buffer for that field, §IV-B: "including the contribution
        // of the initialization phase of the node itself").
        let edge_init = |to: &str, field: &str, kind: Option<NodeKind>| -> u64 {
            match kind {
                Some(NodeKind::Stencil) => internal
                    .stencil(to)
                    .map(|b| b.field_delay_words(field))
                    .unwrap_or(0),
                _ => 0,
            }
        };

        // Longest accumulated delay along any path, per node, in topological
        // order: arrival(v) = max over in-edges (arrival(u) + edge_init) plus
        // the node's compute critical path.
        let order = dag.topological_order().map_err(CoreError::from)?;
        let mut arrival: BTreeMap<String, u64> = BTreeMap::new();
        let mut channels = Vec::new();
        for node in &order {
            let kind = dag.node_kind(node);
            let in_edges = dag.in_edges(node);
            let mut need = 0u64;
            let mut edge_delays: Vec<(String, String, u64)> = Vec::new();
            for edge in &in_edges {
                let init = edge_init(node, &edge.field, kind);
                let delay = arrival.get(&edge.from).copied().unwrap_or(0) + init;
                need = need.max(delay);
                edge_delays.push((edge.from.clone(), edge.field.clone(), delay));
            }
            for (from, field, delay) in edge_delays {
                let delay_words = need - delay;
                channels.push(ChannelDepth {
                    from,
                    to: node.clone(),
                    field,
                    edge_delay: delay,
                    delay_words,
                    depth_words: delay_words + config.min_channel_depth,
                });
            }
            let compute = match kind {
                Some(NodeKind::Stencil) => program
                    .stencil(node)
                    .map(|s| s.compute_latency(&config.latencies))
                    .unwrap_or(0),
                _ => 0,
            };
            arrival.insert(node.clone(), need + compute);
        }

        Ok(DelayBufferAnalysis {
            channels,
            arrival,
            node_delay,
            vector_width: width,
            min_depth: config.min_channel_depth,
        })
    }

    /// All channels with their computed depths.
    pub fn channels(&self) -> &[ChannelDepth] {
        &self.channels
    }

    /// The channel between two nodes, if it exists.
    pub fn channel(&self, from: &str, to: &str) -> Option<&ChannelDepth> {
        self.channels.iter().find(|c| c.from == from && c.to == to)
    }

    /// Required depth (words, including minimum slack) of one channel; the
    /// configured minimum for channels that do not exist in the DAG.
    pub fn depth_words(&self, from: &str, to: &str) -> u64 {
        self.channel(from, to)
            .map(|c| c.depth_words)
            .unwrap_or(self.min_depth)
    }

    /// Largest delay component across all channels (words, excluding the
    /// minimum slack).
    pub fn max_channel_depth(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.delay_words)
            .max()
            .unwrap_or(0)
    }

    /// Total channel capacity in elements (words × vector width), the
    /// delay-buffer contribution to on-chip memory usage.
    pub fn total_elements(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.depth_words * self.vector_width)
            .sum()
    }

    /// Longest accumulated delay from any source up to and including `node`:
    /// the initialization latency visible at that point of the pipeline.
    pub fn arrival_delay(&self, node: &str) -> u64 {
        self.arrival.get(node).copied().unwrap_or(0)
    }

    /// Per-node delay contribution (init phase + compute critical path).
    pub fn node_delay(&self, node: &str) -> u64 {
        self.node_delay.get(node).copied().unwrap_or(0)
    }

    /// The total pipeline latency `L` of Eq. 1: the largest accumulated delay
    /// over all nodes (reached at some program output).
    pub fn pipeline_latency(&self) -> u64 {
        self.arrival.values().copied().max().unwrap_or(0)
    }

    /// The vectorization width the analysis was performed with.
    pub fn vector_width(&self) -> u64 {
        self.vector_width
    }

    /// Verify the structural invariants of the analysis (used by tests and
    /// property checks): every consumer has at least one zero-delay incoming
    /// edge, and no channel has a negative depth (guaranteed by construction
    /// with unsigned arithmetic, but the zero-edge invariant is real).
    pub fn check_invariants(&self, dag: &StencilDag) -> std::result::Result<(), String> {
        for node in dag.nodes() {
            let incoming: Vec<&ChannelDepth> =
                self.channels.iter().filter(|c| c.to == node.name).collect();
            if incoming.is_empty() {
                continue;
            }
            if !incoming.iter().any(|c| c.delay_words == 0) {
                return Err(format!(
                    "node `{}` has no zero-delay incoming edge",
                    node.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::InternalBufferAnalysis;
    use stencilflow_expr::DataType;
    use stencilflow_program::{StencilProgram, StencilProgramBuilder};

    fn analyze(program: &StencilProgram, config: &AnalysisConfig) -> DelayBufferAnalysis {
        let internal = InternalBufferAnalysis::compute(program, config).unwrap();
        DelayBufferAnalysis::compute(program, &internal, config).unwrap()
    }

    /// Fig. 4: A feeds B and C, B feeds C. The direct A->C edge must buffer
    /// B's delay.
    #[test]
    fn fork_join_buffer_covers_slow_path() {
        let program = StencilProgramBuilder::new("p", &[16, 16])
            .input("in", DataType::Float32, &["i", "j"])
            .stencil("a", "in[i,j] * 2.0")
            // b has a j-offset access pattern so it has a real init phase.
            .stencil("b", "a[i,j-1] + a[i,j+1]")
            .stencil("c", "a[i,j] + b[i,j]")
            .output("c")
            .build()
            .unwrap();
        let config = AnalysisConfig::unit_latencies();
        let analysis = analyze(&program, &config);
        // b's delay = init (2*1+1 = 3 elements over the j stride of 16?) ...
        // j stride is 16 (k-less 2D program: dims i,j with j fastest), so
        // accesses at j-1/j+1 buffer 3 elements; init = 3; compute = 1 add.
        let delay_b = analysis.node_delay("b");
        assert_eq!(delay_b, 3 + 1);
        // The a->c channel must absorb exactly b's delay.
        let direct = analysis.channel("a", "c").unwrap();
        let through = analysis.channel("b", "c").unwrap();
        assert_eq!(through.delay_words, 0);
        assert_eq!(direct.delay_words, delay_b);
    }

    /// Fig. 8: an input edge bypassing two kernels of latency 64 and 16 gets
    /// a 64+16 deep buffer.
    #[test]
    fn bypass_edge_gets_sum_of_latencies() {
        // Construct kernels whose delays we control through their access
        // patterns: radius-r accesses along the fastest dimension give an
        // init phase of 2r+1 with unit latency adding the compute ops.
        let program = StencilProgramBuilder::new("p", &[128])
            .input("src", DataType::Float32, &["i"])
            .stencil("ka", "src[i-4] + src[i+4]")
            .stencil("kb", "ka[i-2] + ka[i+2]")
            .stencil("kc", "src[i] + kb[i]")
            .output("kc")
            .build()
            .unwrap();
        let config = AnalysisConfig::unit_latencies();
        let analysis = analyze(&program, &config);
        let delay_ka = analysis.node_delay("ka"); // 9 + 1
        let delay_kb = analysis.node_delay("kb"); // 5 + 1
        assert_eq!(delay_ka, 10);
        assert_eq!(delay_kb, 6);
        // The src->kc edge bypasses both kernels.
        let bypass = analysis.channel("src", "kc").unwrap();
        assert_eq!(bypass.delay_words, delay_ka + delay_kb);
        let through = analysis.channel("kb", "kc").unwrap();
        assert_eq!(through.delay_words, 0);
    }

    #[test]
    fn linear_chain_needs_only_minimum_depth() {
        let program = StencilProgramBuilder::new("p", &[64])
            .input("a", DataType::Float32, &["i"])
            .stencil("b", "a[i-1] + a[i+1]")
            .stencil("c", "b[i-1] + b[i+1]")
            .output("c")
            .build()
            .unwrap();
        let config = AnalysisConfig::paper_defaults();
        let analysis = analyze(&program, &config);
        for channel in analysis.channels() {
            assert_eq!(channel.delay_words, 0, "chain edges need no delay buffer");
            assert_eq!(channel.depth_words, config.min_channel_depth);
        }
        assert_eq!(analysis.max_channel_depth(), 0);
    }

    #[test]
    fn every_node_has_a_zero_delay_edge() {
        let program = crate::tests_support::listing1();
        let config = AnalysisConfig::paper_defaults();
        let analysis = analyze(&program, &config);
        let dag = program.dag().unwrap();
        analysis.check_invariants(&dag).unwrap();
    }

    #[test]
    fn pipeline_latency_accumulates_along_longest_path() {
        let program = StencilProgramBuilder::new("p", &[64])
            .input("a", DataType::Float32, &["i"])
            .stencil("b", "a[i-1] + a[i+1]")
            .stencil("c", "b[i-1] + b[i+1]")
            .output("c")
            .build()
            .unwrap();
        let config = AnalysisConfig::unit_latencies();
        let analysis = analyze(&program, &config);
        // Each stencil: init 3 + one add = 4; two stencils chained = 8.
        assert_eq!(analysis.pipeline_latency(), 8);
        assert_eq!(analysis.arrival_delay("b"), 4);
        assert_eq!(analysis.arrival_delay("c"), 8);
        assert_eq!(analysis.arrival_delay("c__out"), 8);
    }

    #[test]
    fn vectorization_shrinks_delays() {
        let build = |w: usize| {
            StencilProgramBuilder::new("p", &[64, 64])
                .input("a", DataType::Float32, &["i", "j"])
                .stencil("b", "a[i-1,j] + a[i+1,j]")
                .stencil("c", "a[i,j] + b[i,j]")
                .output("c")
                .vectorization(w)
                .build()
                .unwrap()
        };
        let config = AnalysisConfig::unit_latencies();
        let narrow = analyze(&build(1), &config);
        let wide = analyze(&build(4), &config);
        let narrow_depth = narrow.channel("a", "c").unwrap().delay_words;
        let wide_depth = wide.channel("a", "c").unwrap().delay_words;
        assert!(wide_depth < narrow_depth);
    }

    #[test]
    fn total_elements_scale_with_width_and_min_depth() {
        let program = crate::tests_support::listing1();
        let base = analyze(&program, &AnalysisConfig::unit_latencies());
        let slack = analyze(
            &program,
            &AnalysisConfig::unit_latencies().with_min_channel_depth(8),
        );
        assert!(slack.total_elements() > base.total_elements());
        assert_eq!(base.vector_width(), 1);
    }
}
