//! Internal buffers for intra-stencil reuse (§IV-A).
//!
//! A stencil that reads the same field at several offsets keeps the data
//! streamed in since the "lowest" offset in memory order, so every access is
//! served from on-chip memory and each input element is read from the
//! producer exactly once. The buffer is implemented as a shift register in
//! hardware; its size is:
//!
//! > "the largest distance between any two offsets in memory order, plus one
//! > (or plus the vector width, in the case of vectorized kernels) in the
//! > stencil iteration space"
//!
//! e.g. in a 3D iteration space of shape `{K, J, I}`, accesses `a[0,1,0]` and
//! `a[0,-1,0]` buffer two rows (`2I + W` elements) while `b[0,0,0]` and
//! `b[1,0,0]` buffer a 2D slice (`2IJ + W`), Fig. 7.
//!
//! Filling the buffers delays the first output of the stencil: the
//! *initialization phase* is `max{B_1, …, B_F}` elements, the quantity the
//! delay-buffer analysis (§IV-B) builds on. Buffers smaller than the largest
//! one only start filling after `B_max − B_i` elements, so that all fields
//! stay synchronized.

use crate::config::AnalysisConfig;
use crate::error::Result;
use std::collections::BTreeMap;
use stencilflow_program::{StencilNode, StencilProgram};

/// Internal-buffer information for one field read by one stencil.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldBuffer {
    /// Field being buffered.
    pub field: String,
    /// Number of distinct accesses (tap points) into the buffer.
    pub accesses: usize,
    /// Buffer size in elements (0 when only one access exists: the value is
    /// consumed directly from the channel).
    pub size_elements: u64,
    /// Largest *positive* memory-order offset accessed (elements). A stencil
    /// cannot emit cell `c` before the producer has emitted element
    /// `c + lookahead`, even when no buffer is required (single access at a
    /// positive offset), so this term participates in the per-edge delay.
    pub lookahead_elements: u64,
    /// Offset (in elements, relative to the stencil's first iteration) at
    /// which this buffer starts filling, so it stays synchronized with the
    /// largest buffer of the stencil: `B_max − B_i`.
    pub fill_start: u64,
    /// Flattened (memory-order) tap offsets relative to the oldest buffered
    /// element, one per access, in ascending order. Tap `size_elements - 1`
    /// (or 0 for unbuffered fields) is the newest element.
    pub tap_offsets: Vec<u64>,
}

impl FieldBuffer {
    /// Whether this field needs a buffer at all (more than one access).
    pub fn is_buffered(&self) -> bool {
        self.size_elements > 0
    }

    /// The delay (in elements) this field imposes between the producer's
    /// stream and the consumer's first output: the buffer-fill distance, or
    /// the forward lookahead plus one vector word for fields read ahead of
    /// the center without a buffer.
    pub fn required_delay_elements(&self, vector_width: u64) -> u64 {
        let lookahead = if self.lookahead_elements > 0 {
            self.lookahead_elements + vector_width.max(1)
        } else {
            0
        };
        self.size_elements.max(lookahead)
    }

    /// [`FieldBuffer::required_delay_elements`] expressed in vector words
    /// (pipeline iterations).
    pub fn required_delay_words(&self, vector_width: u64) -> u64 {
        self.required_delay_elements(vector_width)
            .div_ceil(vector_width.max(1))
    }
}

/// Internal-buffer information for one stencil node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StencilBuffers {
    /// Per-field buffers (keyed by field name).
    pub fields: BTreeMap<String, FieldBuffer>,
    /// Vectorization width the sizes were computed with.
    pub vector_width: u64,
}

impl StencilBuffers {
    /// Buffer info for one field.
    pub fn field(&self, name: &str) -> Option<&FieldBuffer> {
        self.fields.get(name)
    }

    /// Largest buffer size of this stencil, in elements: the length of the
    /// initialization phase (§IV-A).
    pub fn max_buffer_size(&self) -> u64 {
        self.fields
            .values()
            .map(|b| b.size_elements)
            .max()
            .unwrap_or(0)
    }

    /// Initialization phase in *iterations* (cycles at initiation interval
    /// 1): the largest per-field delay divided by the vectorization width.
    pub fn init_iterations(&self) -> u64 {
        self.fields
            .values()
            .map(|b| b.required_delay_words(self.vector_width))
            .max()
            .unwrap_or(0)
    }

    /// Per-field delay contribution in vector words, used as the per-edge
    /// initialization term of the delay-buffer analysis (§IV-B).
    pub fn field_delay_words(&self, field: &str) -> u64 {
        self.fields
            .get(field)
            .map(|b| b.required_delay_words(self.vector_width))
            .unwrap_or(0)
    }

    /// Total buffered elements across all fields of this stencil.
    pub fn total_elements(&self) -> u64 {
        self.fields.values().map(|b| b.size_elements).sum()
    }

    /// Number of fields that actually get a buffer.
    pub fn buffered_field_count(&self) -> usize {
        self.fields.values().filter(|b| b.is_buffered()).count()
    }
}

/// Internal-buffer analysis of a whole program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InternalBufferAnalysis {
    stencils: BTreeMap<String, StencilBuffers>,
}

impl InternalBufferAnalysis {
    /// Compute internal buffers for every stencil of `program`.
    ///
    /// # Errors
    ///
    /// Currently infallible for validated programs; the `Result` return type
    /// keeps the signature stable if richer diagnostics are added.
    pub fn compute(program: &StencilProgram, config: &AnalysisConfig) -> Result<Self> {
        let width = config.effective_vectorization(program.vectorization()) as u64;
        let mut stencils = BTreeMap::new();
        for stencil in program.stencils() {
            stencils.insert(
                stencil.name.clone(),
                Self::compute_stencil(program, stencil, width),
            );
        }
        Ok(InternalBufferAnalysis { stencils })
    }

    fn compute_stencil(
        program: &StencilProgram,
        stencil: &StencilNode,
        width: u64,
    ) -> StencilBuffers {
        let space = program.space();
        let mut fields = BTreeMap::new();
        for (field, info) in stencil.accesses.iter() {
            // Embed each (possibly lower-dimensional) access offset into the
            // full iteration space: unnamed dimensions contribute offset 0.
            let mut linearized: Vec<i64> = info
                .offsets
                .iter()
                .map(|offsets| {
                    let mut full = vec![0i64; space.rank()];
                    for (var, &off) in info.index_vars.iter().zip(offsets.iter()) {
                        if let Some(dim) = space.dim_index(var) {
                            full[dim] = off;
                        }
                    }
                    space.linearize_offset(&full)
                })
                .collect();
            linearized.sort_unstable();
            let accesses = linearized.len();
            let highest = linearized.last().copied().unwrap_or(0);
            let (size, taps): (u64, Vec<u64>) = if accesses >= 2 {
                let lowest = linearized[0];
                let size = (highest - lowest) as u64 + width;
                let taps = linearized.iter().map(|&l| (l - lowest) as u64).collect();
                (size, taps)
            } else {
                (0, vec![0])
            };
            fields.insert(
                field.to_string(),
                FieldBuffer {
                    field: field.to_string(),
                    accesses,
                    size_elements: size,
                    lookahead_elements: highest.max(0) as u64,
                    fill_start: 0, // fixed up below once B_max is known
                    tap_offsets: taps,
                },
            );
        }
        let mut buffers = StencilBuffers {
            fields,
            vector_width: width,
        };
        // Synchronize fill starts: the largest buffer starts filling
        // immediately; smaller buffers wait for B_max - B_i elements.
        let max = buffers.max_buffer_size();
        for buffer in buffers.fields.values_mut() {
            buffer.fill_start = max - buffer.size_elements;
        }
        buffers
    }

    /// Buffer information of one stencil.
    pub fn stencil(&self, name: &str) -> Option<&StencilBuffers> {
        self.stencils.get(name)
    }

    /// Iterate over `(stencil, buffers)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StencilBuffers)> {
        self.stencils.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Initialization phase of one stencil in iterations (0 for unknown
    /// names, which only happens for memory nodes).
    pub fn init_iterations(&self, stencil: &str) -> u64 {
        self.stencils
            .get(stencil)
            .map(|b| b.init_iterations())
            .unwrap_or(0)
    }

    /// Total on-chip elements consumed by internal buffers across the whole
    /// program.
    pub fn total_elements(&self) -> u64 {
        self.stencils.values().map(|b| b.total_elements()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn analysis_for(code: &str, shape: &[usize], width: usize) -> StencilBuffers {
        let program = StencilProgramBuilder::new("p", shape)
            .input("a", DataType::Float32, &["i", "j", "k"])
            .input("b", DataType::Float32, &["i", "j", "k"])
            .stencil("s", code)
            .output("s")
            .vectorization(width)
            .build()
            .unwrap();
        let analysis =
            InternalBufferAnalysis::compute(&program, &AnalysisConfig::default()).unwrap();
        analysis.stencil("s").unwrap().clone()
    }

    #[test]
    fn paper_row_buffer_example() {
        // §IV-A: accesses a[0,1,0] and a[0,-1,0] in a {K,J,I} space buffer
        // two rows: 2I + W elements. Our dims are (i,j,k) with k fastest, so
        // the analogous accesses are a[i, j-1, k] and a[i, j+1, k] buffering
        // 2*K + W.
        let shape = [32, 16, 8]; // i=32, j=16, k=8 (k fastest)
        let buffers = analysis_for("a[i,j-1,k] + a[i,j+1,k]", &shape, 1);
        assert_eq!(buffers.field("a").unwrap().size_elements, 2 * 8 + 1);
        assert_eq!(buffers.max_buffer_size(), 17);
        assert_eq!(buffers.init_iterations(), 17);
    }

    #[test]
    fn paper_slice_buffer_example() {
        // Accesses b[0,0,0] and b[1,0,0] buffer a 2D slice: 2*J*I + W in the
        // paper's naming; with k fastest that is 2*(16*8) + W here... the
        // offset is along the slowest dimension i, so the distance is
        // 1 * (16*8) elements -> size J*K + W.
        let shape = [32, 16, 8];
        let buffers = analysis_for("a[i,j,k] + a[i+1,j,k]", &shape, 1);
        assert_eq!(buffers.field("a").unwrap().size_elements, 16 * 8 + 1);
    }

    #[test]
    fn single_access_needs_no_buffer() {
        let buffers = analysis_for("a[i,j,k] * 2.0", &[8, 8, 8], 1);
        let field = buffers.field("a").unwrap();
        assert!(!field.is_buffered());
        assert_eq!(field.size_elements, 0);
        assert_eq!(buffers.init_iterations(), 0);
    }

    #[test]
    fn intermediate_accesses_do_not_change_size() {
        // §IV-A: "Additional accesses in between the highest and lowest
        // offset in memory order do not affect the total buffer size."
        let two = analysis_for("a[i,j,k-1] + a[i,j,k+1]", &[8, 8, 8], 1);
        let three = analysis_for("a[i,j,k-1] + a[i,j,k] + a[i,j,k+1]", &[8, 8, 8], 1);
        assert_eq!(
            two.field("a").unwrap().size_elements,
            three.field("a").unwrap().size_elements
        );
        // But the tap count differs.
        assert_eq!(two.field("a").unwrap().accesses, 2);
        assert_eq!(three.field("a").unwrap().accesses, 3);
    }

    #[test]
    fn vector_width_adds_to_buffer_size() {
        let w1 = analysis_for("a[i,j,k-1] + a[i,j,k+1]", &[8, 8, 8], 1);
        let w4 = analysis_for("a[i,j,k-1] + a[i,j,k+1]", &[8, 8, 8], 4);
        assert_eq!(w1.field("a").unwrap().size_elements, 3);
        assert_eq!(w4.field("a").unwrap().size_elements, 6);
        // Init iterations are divided by the width.
        assert_eq!(w1.init_iterations(), 3);
        assert_eq!(w4.init_iterations(), 2); // ceil(6/4)
    }

    #[test]
    fn fill_start_synchronizes_multiple_fields() {
        // Field a needs a 2-row buffer, field b only a 3-element row buffer.
        let buffers = analysis_for(
            "a[i,j-1,k] + a[i,j+1,k] + b[i,j,k-1] + b[i,j,k+1]",
            &[8, 8, 8],
            1,
        );
        let a = buffers.field("a").unwrap();
        let b = buffers.field("b").unwrap();
        assert!(a.size_elements > b.size_elements);
        assert_eq!(a.fill_start, 0);
        assert_eq!(b.fill_start, a.size_elements - b.size_elements);
    }

    #[test]
    fn tap_offsets_are_relative_to_oldest() {
        let buffers = analysis_for("a[i,j,k-1] + a[i,j,k] + a[i,j,k+1]", &[8, 8, 8], 1);
        assert_eq!(buffers.field("a").unwrap().tap_offsets, vec![0, 1, 2]);
    }

    #[test]
    fn lower_dimensional_field_buffers_use_embedded_offsets() {
        let program = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .input("surf", DataType::Float32, &["i", "k"])
            .stencil("s", "a[i,j,k] + surf[i,k-1] + surf[i,k+1]")
            .output("s")
            .build()
            .unwrap();
        let analysis =
            InternalBufferAnalysis::compute(&program, &AnalysisConfig::default()).unwrap();
        let buffers = analysis.stencil("s").unwrap();
        assert_eq!(buffers.field("surf").unwrap().size_elements, 3);
        assert_eq!(buffers.field("a").unwrap().size_elements, 0);
    }

    #[test]
    fn program_totals_sum_over_stencils() {
        let program = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("s1", "a[i,j,k-1] + a[i,j,k+1]")
            .stencil("s2", "s1[i,j,k-1] + s1[i,j,k+1]")
            .output("s2")
            .build()
            .unwrap();
        let analysis =
            InternalBufferAnalysis::compute(&program, &AnalysisConfig::default()).unwrap();
        assert_eq!(analysis.total_elements(), 3 + 3);
        assert_eq!(analysis.init_iterations("s1"), 3);
        assert_eq!(analysis.init_iterations("nonexistent"), 0);
    }
}
