//! StencilFlow core: buffering analysis and deadlock-free hardware mapping.
//!
//! This crate implements the paper's primary contribution (§III–IV): given a
//! stencil program (a DAG of heterogeneous stencil operations), compute the
//! buffering required to execute *all* stencils simultaneously as one deep,
//! fully pipelined spatial design — with perfect data reuse and guaranteed
//! deadlock freedom — and map the result onto one or more devices.
//!
//! The analysis has three parts:
//!
//! 1. **Internal buffers** ([`buffers`]) — intra-stencil reuse. A stencil
//!    that accesses the same field at several offsets keeps a shift-register
//!    buffer spanning the memory-order distance between the lowest and
//!    highest offset (§IV-A, Fig. 6/7). Filling that buffer delays the
//!    stencil's first output: the *initialization phase*.
//! 2. **Delay buffers** ([`delay`]) — inter-stencil synchronization. Edges of
//!    the DAG are FIFO channels; when paths of different latency reconverge,
//!    the shorter path must be buffered so the producer is never blocked
//!    (§IV-B, Fig. 4/8). Channel depths are computed from a longest-path
//!    analysis over node delays (initialization phases plus compute
//!    critical-path latencies).
//! 3. **Mapping** ([`mapping`], [`partition`]) — the buffered dataflow graph
//!    is laid out as stencil units, memory readers/writers, and channels on a
//!    single device, or partitioned across multiple devices with replicated
//!    inputs and network channels (§III-B, Fig. 5).
//!
//! The [`perf`] module implements the pipeline performance model
//! `C = L + I·N` (Eq. 1) used to annotate every benchmark with its expected
//! runtime, and [`vectorization`] the effect of the vectorization width W on
//! iteration counts and buffer sizes (§IV-C).
//!
//! # Example
//!
//! ```
//! use stencilflow_core::{analyze, AnalysisConfig};
//! use stencilflow_program::StencilProgramBuilder;
//! use stencilflow_expr::DataType;
//!
//! let program = StencilProgramBuilder::new("jacobi1d", &[1024])
//!     .input("a", DataType::Float32, &["i"])
//!     .stencil("b", "0.33 * (a[i-1] + a[i] + a[i+1])")
//!     .stencil("c", "0.33 * (b[i-1] + b[i] + b[i+1])")
//!     .output("c")
//!     .build()
//!     .unwrap();
//! let analysis = analyze(&program, &AnalysisConfig::default()).unwrap();
//! // Each stencil buffers 2 elements + vector width for its 3-point access.
//! assert_eq!(analysis.internal.stencil("b").unwrap().max_buffer_size(), 3);
//! // The mapped design is deadlock free by construction.
//! assert!(analysis.delay.max_channel_depth() >= 0);
//! ```

#![forbid(unsafe_code)]

pub mod buffers;
pub mod channel;
pub mod config;
pub mod delay;
pub mod error;
pub mod mapping;
pub mod partition;
pub mod perf;
pub mod shardlink;
pub mod vectorization;

pub use buffers::{InternalBufferAnalysis, StencilBuffers};
pub use channel::{ChannelError, Fifo};
pub use config::AnalysisConfig;
pub use delay::{ChannelDepth, DelayBufferAnalysis};
pub use error::{CoreError, Result};
pub use mapping::{Channel, ChannelEndpoint, HardwareMapping, MemoryAccessKind, StencilUnit};
pub use partition::{DevicePartition, MultiDevicePlan, PartitionConfig, SlabPartition, SlabRange};
pub use perf::{expected_cycles, expected_runtime_seconds, PerformanceEstimate};
pub use shardlink::{
    analyze_shard_links, halo_radius, minimum_link_depth_words, ShardLinkRequirement,
    ShardLinkSpec, FRAME_HEADER_WORDS,
};
pub use vectorization::VectorizationInfo;

use stencilflow_program::StencilProgram;

/// Combined result of the full buffering analysis of one program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Internal (intra-stencil) buffer analysis.
    pub internal: InternalBufferAnalysis,
    /// Delay (inter-stencil) buffer analysis.
    pub delay: DelayBufferAnalysis,
    /// Vectorization information.
    pub vectorization: VectorizationInfo,
    /// Expected-performance estimate (Eq. 1).
    pub performance: PerformanceEstimate,
}

impl ProgramAnalysis {
    /// Total fast-memory (on-chip) elements required: internal buffers plus
    /// delay-buffer channel capacities.
    pub fn total_buffer_elements(&self) -> u64 {
        self.internal.total_elements() + self.delay.total_elements()
    }

    /// Total fast-memory bytes assuming the program's widest data type.
    pub fn total_buffer_bytes(&self, element_bytes: u64) -> u64 {
        self.total_buffer_elements() * element_bytes
    }
}

/// Run the complete buffering analysis on a program.
///
/// This is the main entry point of the crate: it computes internal buffers,
/// delay buffers, vectorization effects, and the expected-runtime model, and
/// is used by the hardware mapping ([`HardwareMapping::build`]) and by all
/// downstream crates (simulator, code generator, benchmarks).
///
/// # Errors
///
/// Returns an error if the program's DAG is cyclic or otherwise invalid.
pub fn analyze(program: &StencilProgram, config: &AnalysisConfig) -> Result<ProgramAnalysis> {
    let vectorization = VectorizationInfo::of(program, config);
    let internal = InternalBufferAnalysis::compute(program, config)?;
    let delay = DelayBufferAnalysis::compute(program, &internal, config)?;
    let performance = PerformanceEstimate::compute(program, &internal, &delay, config)?;
    Ok(ProgramAnalysis {
        internal,
        delay,
        vectorization,
        performance,
    })
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared fixtures for the crate's unit tests.
    use stencilflow_expr::DataType;
    use stencilflow_program::{BoundaryCondition, StencilProgram, StencilProgramBuilder};

    /// The program of the paper's Lst. 1 / Fig. 2.
    pub(crate) fn listing1() -> StencilProgram {
        StencilProgramBuilder::new("listing1", &[32, 32, 32])
            .input("a0", DataType::Float32, &["i", "j", "k"])
            .input("a1", DataType::Float32, &["i", "j", "k"])
            .input("a2", DataType::Float32, &["i", "k"])
            .stencil("b0", "a0[i,j,k] + a1[i,j,k]")
            .boundary("b0", "a0", BoundaryCondition::Constant(1.0))
            .boundary("b0", "a1", BoundaryCondition::Copy)
            .stencil("b1", "0.5*(b0[i,j,k] + a2[i,k])")
            .shrink("b1")
            .stencil("b2", "0.5*(b0[i,j,k] - a2[i,k])")
            .shrink("b2")
            .stencil("b3", "b1[i-1,j,k] + b1[i+1,j,k]")
            .shrink("b3")
            .stencil("b4", "b2[i,j,k] + b3[i,j,k]")
            .shrink("b4")
            .output("b4")
            .build()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    #[test]
    fn analyze_produces_consistent_summary() {
        let program = StencilProgramBuilder::new("p", &[16, 16, 16])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i,j,k-1] + a[i,j,k+1]")
            .stencil("c", "b[i,j-1,k] + b[i,j+1,k]")
            .output("c")
            .build()
            .unwrap();
        let analysis = analyze(&program, &AnalysisConfig::default()).unwrap();
        assert!(analysis.total_buffer_elements() > 0);
        assert!(analysis.performance.expected_cycles > program.space().num_cells() as u64);
        assert_eq!(
            analysis.total_buffer_bytes(4),
            analysis.total_buffer_elements() * 4
        );
    }
}
