//! Multi-device partitioning (§III-B, Fig. 5).
//!
//! To scale beyond the off-chip bandwidth, on-chip memory, and logic of a
//! single chip, the stencil DAG is split across multiple devices. Stencil
//! units keep their single-device semantics; edges that cross the cut become
//! network channels (SMI remote streams), and any input field read by
//! stencils on several devices must be present in each of those devices'
//! DRAM (replication).

use crate::config::AnalysisConfig;
use crate::error::{CoreError, Result};
use crate::mapping::HardwareMapping;
use std::collections::{BTreeMap, BTreeSet};
use stencilflow_program::StencilProgram;

/// Parameters of the partitioning step.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Number of devices to partition onto.
    pub num_devices: usize,
    /// Maximum floating-point operations per cycle a single device can host
    /// (a proxy for its logic/DSP capacity). `None` disables the check.
    pub max_ops_per_device: Option<u64>,
    /// Bandwidth of one inter-device link in words per cycle (a 40 Gbit/s
    /// QSFP link at 300 MHz moves ~4 32-bit words per cycle; the testbed has
    /// two links between consecutive devices).
    pub link_words_per_cycle: f64,
    /// Number of parallel links between consecutive devices.
    pub links_between_devices: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_devices: 2,
            max_ops_per_device: None,
            link_words_per_cycle: 4.0,
            links_between_devices: 2,
        }
    }
}

impl PartitionConfig {
    /// Partitioning onto `n` devices with default link parameters.
    pub fn devices(n: usize) -> Self {
        PartitionConfig {
            num_devices: n,
            ..Default::default()
        }
    }
}

/// A stream crossing a device boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteChannel {
    /// Producing stencil.
    pub from_stencil: String,
    /// Device hosting the producer.
    pub from_device: usize,
    /// Consuming stencil.
    pub to_stencil: String,
    /// Device hosting the consumer.
    pub to_device: usize,
    /// Field carried across the network.
    pub field: String,
}

/// The part of a program mapped to one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevicePartition {
    /// Device index in the chain (0-based).
    pub index: usize,
    /// Stencils hosted on this device, in topological order.
    pub stencils: Vec<String>,
    /// Input fields this device must read from its own DRAM.
    pub local_inputs: BTreeSet<String>,
    /// Program outputs written from this device.
    pub outputs: Vec<String>,
    /// Remote streams arriving at this device.
    pub remote_inputs: Vec<RemoteChannel>,
    /// Remote streams leaving this device.
    pub remote_outputs: Vec<RemoteChannel>,
}

/// A program partitioned across multiple devices.
#[derive(Debug, Clone)]
pub struct MultiDevicePlan {
    /// Per-device partitions, in chain order.
    pub devices: Vec<DevicePartition>,
    /// Input fields present in more than one device's DRAM (replicated, as
    /// `a2` in Fig. 5).
    pub replicated_inputs: BTreeSet<String>,
    /// All inter-device streams.
    pub remote_channels: Vec<RemoteChannel>,
    /// Words per cycle required on the busiest device-to-device boundary.
    pub peak_link_words_per_cycle: f64,
    /// The partitioning configuration used.
    pub config: PartitionConfig,
}

impl MultiDevicePlan {
    /// Partition a program onto `config.num_devices` devices.
    ///
    /// The partition is contiguous in topological order and balanced by
    /// per-stencil operation counts, which keeps all inter-device streams
    /// flowing "forward" along the chain — the physical topology of the
    /// paper's testbed (FPGAs chained through an optical switch).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Partition`] if there are fewer stencils than
    /// devices, or if a device's share exceeds `max_ops_per_device`.
    pub fn partition(program: &StencilProgram, config: &PartitionConfig) -> Result<Self> {
        if config.num_devices == 0 {
            return Err(CoreError::Partition {
                message: "cannot partition onto zero devices".into(),
            });
        }
        let order = program.topological_stencils()?;
        if order.len() < config.num_devices {
            return Err(CoreError::Partition {
                message: format!(
                    "{} stencils cannot be spread over {} devices",
                    order.len(),
                    config.num_devices
                ),
            });
        }

        // Balanced contiguous split by per-stencil flops.
        let weights: Vec<u64> = order
            .iter()
            .map(|name| {
                program
                    .stencil(name)
                    .map(|s| s.op_count().flops().max(1))
                    .unwrap_or(1)
            })
            .collect();
        let total: u64 = weights.iter().sum();
        let target = total as f64 / config.num_devices as f64;

        let mut assignment: Vec<usize> = Vec::with_capacity(order.len());
        let mut device = 0usize;
        let mut ops_on_device = 0u64;
        for (position, &weight) in weights.iter().enumerate() {
            let stencils_left = order.len() - position; // including this one
            let devices_after_current = config.num_devices - device - 1;
            // Every later device still needs at least one stencil: if only
            // exactly that many stencils remain, the current one must open
            // the next device.
            let must_advance = device + 1 < config.num_devices
                && ops_on_device > 0
                && stencils_left <= devices_after_current;
            // Otherwise advance once the current device holds its balanced
            // share, as long as later devices can still be filled.
            let want_advance = device + 1 < config.num_devices
                && ops_on_device as f64 >= target
                && stencils_left > devices_after_current;
            if must_advance || want_advance {
                device += 1;
                ops_on_device = 0;
            }
            assignment.push(device);
            ops_on_device += weight;
        }

        let device_of: BTreeMap<&str, usize> = order
            .iter()
            .zip(assignment.iter())
            .map(|(name, &d)| (name.as_str(), d))
            .collect();

        // Per-device ops check.
        if let Some(max_ops) = config.max_ops_per_device {
            let mut per_device = vec![0u64; config.num_devices];
            for (name, &d) in &device_of {
                per_device[d] += program
                    .stencil(name)
                    .map(|s| s.op_count().flops())
                    .unwrap_or(0);
            }
            if let Some((d, &ops)) = per_device.iter().enumerate().find(|(_, &o)| o > max_ops) {
                return Err(CoreError::Partition {
                    message: format!(
                        "device {d} would host {ops} Op/cycle, exceeding the limit of {max_ops}"
                    ),
                });
            }
        }

        // Build partitions.
        let mut devices: Vec<DevicePartition> = (0..config.num_devices)
            .map(|index| DevicePartition {
                index,
                stencils: Vec::new(),
                local_inputs: BTreeSet::new(),
                outputs: Vec::new(),
                remote_inputs: Vec::new(),
                remote_outputs: Vec::new(),
            })
            .collect();
        for (name, &d) in order.iter().zip(assignment.iter()) {
            devices[d].stencils.push(name.clone());
        }

        let mut input_readers: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
        let mut remote_channels = Vec::new();
        for stencil_name in &order {
            let stencil = program.stencil(stencil_name).expect("stencil exists");
            let consumer_device = device_of[stencil_name.as_str()];
            for (field, _) in stencil.accesses.iter() {
                if program.is_input(field) {
                    devices[consumer_device]
                        .local_inputs
                        .insert(field.to_string());
                    input_readers
                        .entry(field.to_string())
                        .or_default()
                        .insert(consumer_device);
                } else if let Some(&producer_device) = device_of.get(field) {
                    if producer_device != consumer_device {
                        let channel = RemoteChannel {
                            from_stencil: field.to_string(),
                            from_device: producer_device,
                            to_stencil: stencil_name.clone(),
                            to_device: consumer_device,
                            field: field.to_string(),
                        };
                        devices[producer_device]
                            .remote_outputs
                            .push(channel.clone());
                        devices[consumer_device].remote_inputs.push(channel.clone());
                        remote_channels.push(channel);
                    }
                }
            }
        }
        for output in program.outputs() {
            if let Some(&d) = device_of.get(output.as_str()) {
                devices[d].outputs.push(output.clone());
            }
        }

        let replicated_inputs: BTreeSet<String> = input_readers
            .iter()
            .filter(|(_, readers)| readers.len() > 1)
            .map(|(field, _)| field.clone())
            .collect();

        // Peak boundary traffic: streams crossing each consecutive boundary.
        let width = program.vectorization().max(1) as f64;
        let mut peak = 0.0f64;
        for boundary in 0..config.num_devices.saturating_sub(1) {
            let crossing = remote_channels
                .iter()
                .filter(|c| c.from_device <= boundary && c.to_device > boundary)
                .count();
            peak = peak.max(crossing as f64 * width);
        }

        Ok(MultiDevicePlan {
            devices,
            replicated_inputs,
            remote_channels,
            peak_link_words_per_cycle: peak,
            config: config.clone(),
        })
    }

    /// Number of devices in the plan.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Whether the network links can sustain the required boundary traffic
    /// without throttling the pipeline.
    pub fn network_feasible(&self) -> bool {
        let capacity = self.config.link_words_per_cycle * self.config.links_between_devices as f64;
        self.peak_link_words_per_cycle <= capacity
    }

    /// The fraction of full pipeline rate the network can sustain (1.0 when
    /// not network bound).
    pub fn network_efficiency(&self) -> f64 {
        if self.peak_link_words_per_cycle == 0.0 {
            return 1.0;
        }
        let capacity = self.config.link_words_per_cycle * self.config.links_between_devices as f64;
        (capacity / self.peak_link_words_per_cycle).min(1.0)
    }

    /// Build the single-device hardware mappings of each partition's induced
    /// sub-program is out of scope here; instead this helper reports the
    /// aggregate ops per cycle hosted by each device, used by the multi-node
    /// scaling benchmarks.
    pub fn ops_per_device(&self, program: &StencilProgram) -> Vec<u64> {
        self.devices
            .iter()
            .map(|d| {
                d.stencils
                    .iter()
                    .filter_map(|s| program.stencil(s))
                    .map(|s| s.op_count().flops())
                    .sum::<u64>()
                    * program.vectorization().max(1) as u64
            })
            .collect()
    }
}

/// One shard's contiguous slab of the outermost iteration-space dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabRange {
    /// Shard index (0-based, in chain order).
    pub shard: usize,
    /// First owned row (inclusive).
    pub start: usize,
    /// One past the last owned row (exclusive).
    pub end: usize,
}

impl SlabRange {
    /// Number of rows owned by this shard.
    pub fn rows(&self) -> usize {
        self.end - self.start
    }
}

/// A contiguous, balanced split of the outermost iteration-space dimension
/// across worker shards.
///
/// This is the data-parallel counterpart of [`MultiDevicePlan`]: where the
/// device chain splits the stencil *DAG* (§III-B) and streams whole fields
/// across the cut, a slab partition splits the *iteration space* and only
/// exchanges halo rows between neighboring shards. Both are contiguous in
/// their respective order, so all communication stays between neighbors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlabPartition {
    /// Extent of the partitioned (outermost) dimension.
    pub extent: usize,
    /// Per-shard row ranges, in order; they tile `0..extent` exactly.
    pub ranges: Vec<SlabRange>,
}

impl SlabPartition {
    /// Split `extent` rows into `shards` contiguous ranges, each at least
    /// `min_rows` rows, balanced to within one row.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Partition`] when `shards` is zero or the extent
    /// cannot give every shard its `min_rows` floor (callers reduce the
    /// shard count and retry).
    pub fn split(extent: usize, shards: usize, min_rows: usize) -> Result<Self> {
        if shards == 0 {
            return Err(CoreError::Partition {
                message: "cannot shard onto zero workers".into(),
            });
        }
        let floor = min_rows.max(1);
        if extent < shards.saturating_mul(floor) {
            return Err(CoreError::Partition {
                message: format!(
                    "{extent} rows cannot give {shards} shards at least \
                     {floor} rows each"
                ),
            });
        }
        let base = extent / shards;
        let remainder = extent % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for shard in 0..shards {
            let rows = base + usize::from(shard < remainder);
            ranges.push(SlabRange {
                shard,
                start,
                end: start + rows,
            });
            start += rows;
        }
        Ok(SlabPartition { extent, ranges })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// Rows owned by shard `shard`.
    pub fn range(&self, shard: usize) -> SlabRange {
        self.ranges[shard]
    }
}

/// Convenience: partition a program and return the plan alongside the
/// single-device mapping (useful for reporting).
///
/// # Errors
///
/// Propagates analysis and partitioning errors.
pub fn partition_with_mapping(
    program: &StencilProgram,
    analysis_config: &AnalysisConfig,
    partition_config: &PartitionConfig,
) -> Result<(HardwareMapping, MultiDevicePlan)> {
    let mapping = HardwareMapping::build(program, analysis_config)?;
    let plan = MultiDevicePlan::partition(program, partition_config)?;
    Ok((mapping, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::listing1;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    #[test]
    fn partitions_are_contiguous_and_cover_all_stencils() {
        let program = listing1();
        let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(2)).unwrap();
        assert_eq!(plan.device_count(), 2);
        let all: Vec<String> = plan
            .devices
            .iter()
            .flat_map(|d| d.stencils.clone())
            .collect();
        assert_eq!(all.len(), 5);
        // Contiguity in topological order: the concatenation equals a
        // topological order of the program.
        let order = program.topological_stencils().unwrap();
        assert_eq!(all, order);
        assert!(!plan.devices[0].stencils.is_empty());
        assert!(!plan.devices[1].stencils.is_empty());
    }

    #[test]
    fn replicated_inputs_are_detected() {
        // Fig. 5: a field read by stencils on both devices must exist in both
        // DRAMs. Build a program where `shared` is read by the first and the
        // last stencil of a chain, then split in the middle.
        let program = StencilProgramBuilder::new("p", &[32, 32])
            .input("src", DataType::Float32, &["i", "j"])
            .input("shared", DataType::Float32, &["i", "j"])
            .stencil("s0", "src[i,j] + shared[i,j]")
            .stencil("s1", "s0[i,j-1] + s0[i,j+1]")
            .stencil("s2", "s1[i,j-1] + s1[i,j+1]")
            .stencil("s3", "s2[i,j] + shared[i,j]")
            .output("s3")
            .build()
            .unwrap();
        let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(2)).unwrap();
        assert!(plan.replicated_inputs.contains("shared"));
        assert!(!plan.replicated_inputs.contains("src"));
        // Both devices list `shared` among their local inputs.
        let readers: Vec<bool> = plan
            .devices
            .iter()
            .map(|d| d.local_inputs.contains("shared"))
            .collect();
        assert_eq!(readers.iter().filter(|&&r| r).count(), 2);
    }

    #[test]
    fn remote_channels_cross_the_cut_forward() {
        let program = listing1();
        let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(2)).unwrap();
        assert!(!plan.remote_channels.is_empty());
        for channel in &plan.remote_channels {
            assert!(channel.from_device < channel.to_device);
        }
        // Remote inputs/outputs listed on the right devices.
        for channel in &plan.remote_channels {
            assert!(plan.devices[channel.from_device]
                .remote_outputs
                .contains(channel));
            assert!(plan.devices[channel.to_device]
                .remote_inputs
                .contains(channel));
        }
    }

    #[test]
    fn too_many_devices_is_an_error() {
        let program = listing1();
        assert!(matches!(
            MultiDevicePlan::partition(&program, &PartitionConfig::devices(9)),
            Err(CoreError::Partition { .. })
        ));
        assert!(matches!(
            MultiDevicePlan::partition(&program, &PartitionConfig::devices(0)),
            Err(CoreError::Partition { .. })
        ));
    }

    #[test]
    fn ops_limit_is_enforced() {
        let program = listing1();
        let config = PartitionConfig {
            num_devices: 2,
            max_ops_per_device: Some(1),
            ..Default::default()
        };
        assert!(matches!(
            MultiDevicePlan::partition(&program, &config),
            Err(CoreError::Partition { .. })
        ));
    }

    #[test]
    fn network_feasibility_reflects_link_capacity() {
        let program = listing1();
        let generous = PartitionConfig {
            num_devices: 2,
            link_words_per_cycle: 100.0,
            ..Default::default()
        };
        let plan = MultiDevicePlan::partition(&program, &generous).unwrap();
        assert!(plan.network_feasible());
        assert_eq!(plan.network_efficiency(), 1.0);

        let tight = PartitionConfig {
            num_devices: 2,
            link_words_per_cycle: 0.25,
            links_between_devices: 1,
            ..Default::default()
        };
        let plan = MultiDevicePlan::partition(&program, &tight).unwrap();
        if plan.peak_link_words_per_cycle > 0.25 {
            assert!(!plan.network_feasible());
            assert!(plan.network_efficiency() < 1.0);
        }
    }

    #[test]
    fn single_device_partition_has_no_remote_channels() {
        let program = listing1();
        let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(1)).unwrap();
        assert_eq!(plan.device_count(), 1);
        assert!(plan.remote_channels.is_empty());
        assert!(plan.replicated_inputs.is_empty());
        assert_eq!(plan.network_efficiency(), 1.0);
    }

    #[test]
    fn slab_partition_tiles_the_extent_balanced() {
        let slabs = SlabPartition::split(67, 4, 1).unwrap();
        assert_eq!(slabs.shard_count(), 4);
        assert_eq!(slabs.ranges[0].start, 0);
        assert_eq!(slabs.ranges[3].end, 67);
        for pair in slabs.ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let rows: Vec<usize> = slabs.ranges.iter().map(SlabRange::rows).collect();
        assert_eq!(rows.iter().sum::<usize>(), 67);
        assert!(rows.iter().max().unwrap() - rows.iter().min().unwrap() <= 1);
    }

    #[test]
    fn slab_partition_enforces_min_rows() {
        assert!(SlabPartition::split(64, 0, 1).is_err());
        assert!(SlabPartition::split(7, 8, 1).is_err());
        assert!(matches!(
            SlabPartition::split(64, 8, 9),
            Err(CoreError::Partition { .. })
        ));
        assert!(SlabPartition::split(64, 8, 8).is_ok());
    }

    #[test]
    fn ops_per_device_sums_to_program_total() {
        let program = listing1();
        let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(2)).unwrap();
        let per_device = plan.ops_per_device(&program);
        let total: u64 = per_device.iter().sum();
        assert_eq!(total, program.ops_per_cell().flops());
    }
}
