//! Configuration of the buffering analysis.

use stencilflow_expr::LatencyTable;

/// Tunable parameters of the buffering analysis.
///
/// The defaults correspond to the configuration used throughout the paper's
/// evaluation: conservative Stratix-10 operation latencies and a small
/// minimum channel depth to decouple adjacent pipeline stages.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// Per-operation latencies used for compute critical paths (§IV-B:
    /// "these latencies can be provided as configuration to the framework,
    /// and default to conservative values").
    pub latencies: LatencyTable,
    /// Minimum depth of every inter-stencil channel, in elements. Even edges
    /// with zero computed delay need a small FIFO so producer and consumer
    /// are not rigidly lock-stepped; HLS tools round small depths up to a
    /// hardware-friendly minimum anyway.
    pub min_channel_depth: u64,
    /// Override the program's vectorization width (`None` keeps the
    /// program's own setting). Used by parameter sweeps.
    pub vectorization_override: Option<usize>,
    /// Default clock frequency (Hz) used to convert cycle counts into
    /// runtimes when no device model is involved. The paper's designs close
    /// timing between 292 and 317 MHz; 300 MHz is the representative value.
    pub default_frequency_hz: f64,
}

impl AnalysisConfig {
    /// The configuration used by the paper's experiments.
    pub fn paper_defaults() -> Self {
        AnalysisConfig {
            latencies: LatencyTable::stratix10_defaults(),
            min_channel_depth: 16,
            vectorization_override: None,
            default_frequency_hz: 300e6,
        }
    }

    /// A configuration with unit operation latencies and no minimum channel
    /// depth, isolating initialization-phase effects in tests and ablations.
    pub fn unit_latencies() -> Self {
        AnalysisConfig {
            latencies: LatencyTable::unit(),
            min_channel_depth: 0,
            vectorization_override: None,
            default_frequency_hz: 300e6,
        }
    }

    /// Set the vectorization override (builder style).
    pub fn with_vectorization(mut self, width: usize) -> Self {
        self.vectorization_override = Some(width);
        self
    }

    /// Set the minimum channel depth (builder style).
    pub fn with_min_channel_depth(mut self, depth: u64) -> Self {
        self.min_channel_depth = depth;
        self
    }

    /// The effective vectorization width for a program-declared width.
    pub fn effective_vectorization(&self, program_width: usize) -> usize {
        self.vectorization_override.unwrap_or(program_width).max(1)
    }
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let config = AnalysisConfig::default();
        assert_eq!(config.default_frequency_hz, 300e6);
        assert!(config.min_channel_depth > 0);
        assert!(config.vectorization_override.is_none());
    }

    #[test]
    fn builders_and_effective_vectorization() {
        let config = AnalysisConfig::default()
            .with_vectorization(8)
            .with_min_channel_depth(4);
        assert_eq!(config.effective_vectorization(1), 8);
        assert_eq!(config.min_channel_depth, 4);
        let config = AnalysisConfig::default();
        assert_eq!(config.effective_vectorization(4), 4);
        assert_eq!(config.effective_vectorization(0), 1);
    }
}
