//! Error type for the buffering analysis and hardware mapping.

use std::fmt;
use stencilflow_program::ProgramError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the buffering analysis, mapping, or partitioning.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying program is invalid (cycle, unknown field, ...).
    Program(ProgramError),
    /// A partitioning request could not be satisfied.
    Partition {
        /// Description of the problem.
        message: String,
    },
    /// An internal consistency error (indicates a bug in the analysis).
    Internal {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Program(e) => write!(f, "invalid stencil program: {e}"),
            CoreError::Partition { message } => write!(f, "partitioning failed: {message}"),
            CoreError::Internal { message } => write!(f, "internal analysis error: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for CoreError {
    fn from(e: ProgramError) -> Self {
        CoreError::Program(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::Program(ProgramError::Invalid {
            message: "nope".into(),
        });
        assert!(e.to_string().contains("nope"));
        assert!(e.source().is_some());
        let e = CoreError::Partition {
            message: "too many stencils".into(),
        };
        assert!(e.to_string().contains("too many stencils"));
        assert!(e.source().is_none());
    }
}
