//! StencilFlow: mapping large stencil programs to distributed spatial
//! computing systems — Rust reproduction.
//!
//! This umbrella crate re-exports the whole stack and provides the
//! [`Pipeline`] convenience API that mirrors the paper's end-to-end workflow
//! (Fig. 13): *program description → dependency & buffering analysis →
//! domain-specific optimization (stencil fusion) → hardware mapping →
//! code generation / simulated execution → validation against the reference
//! executor*.
//!
//! ```
//! use stencilflow::Pipeline;
//!
//! let json = r#"{
//!   "inputs": { "a": {"dtype": "float32", "dims": ["i", "j"]} },
//!   "outputs": ["b"],
//!   "shape": [16, 16],
//!   "program": { "b": "0.25 * (a[i-1,j] + a[i+1,j] + a[i,j-1] + a[i,j+1])" }
//! }"#;
//! let pipeline = Pipeline::from_json(json).unwrap();
//! let result = pipeline.execute(42).unwrap();
//! assert!(result.simulation.completed());
//! assert!(result.max_error_vs_reference < 1e-5);
//! ```

#![forbid(unsafe_code)]

pub mod daemon;
pub mod ingest;

pub use stencilflow_analysis as analysis;
pub use stencilflow_codegen as codegen;
pub use stencilflow_core as core;
pub use stencilflow_dataflow as dataflow;
pub use stencilflow_expr as expr;
pub use stencilflow_hwmodel as hwmodel;
pub use stencilflow_program as program;
pub use stencilflow_reference as reference;
pub use stencilflow_sim as sim;
pub use stencilflow_workloads as workloads;

pub use stencilflow_core::{
    analyze, AnalysisConfig, HardwareMapping, MultiDevicePlan, PartitionConfig, ProgramAnalysis,
};
pub use stencilflow_program::{from_json, StencilProgram, StencilProgramBuilder};
pub use stencilflow_sim::{SimConfig, SimOutcome, SimReport, Simulator};

use std::collections::BTreeMap;
use stencilflow_reference::{Grid, InputGenerator, ReferenceExecutor};

/// Errors produced by the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Program construction or validation failed.
    Program(stencilflow_program::ProgramError),
    /// Analysis, mapping, or simulation failed.
    Core(stencilflow_core::CoreError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Program(e) => write!(f, "program error: {e}"),
            PipelineError::Core(e) => write!(f, "mapping error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<stencilflow_program::ProgramError> for PipelineError {
    fn from(e: stencilflow_program::ProgramError) -> Self {
        PipelineError::Program(e)
    }
}

impl From<stencilflow_core::CoreError> for PipelineError {
    fn from(e: stencilflow_core::CoreError) -> Self {
        PipelineError::Core(e)
    }
}

/// Result of running the full pipeline on one program.
#[derive(Debug)]
pub struct PipelineResult {
    /// The (possibly fused) program that was mapped.
    pub program: StencilProgram,
    /// The buffering analysis.
    pub analysis: ProgramAnalysis,
    /// The single-device hardware mapping.
    pub mapping: HardwareMapping,
    /// Generated OpenCL-style kernel code.
    pub kernel_code: String,
    /// Simulation report (cycle count, outputs, stall statistics).
    pub simulation: SimReport,
    /// Maximum relative error of the simulated outputs against the reference
    /// executor, over all program outputs and valid cells.
    pub max_error_vs_reference: f64,
}

/// The end-to-end StencilFlow pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    program: StencilProgram,
    analysis_config: AnalysisConfig,
    sim_config: SimConfig,
    fuse: bool,
}

impl Pipeline {
    /// Build a pipeline from a JSON program description (the paper's Lst. 1
    /// format).
    ///
    /// # Errors
    ///
    /// Returns an error if the description does not parse or validate.
    pub fn from_json(text: &str) -> Result<Self, PipelineError> {
        Ok(Self::new(stencilflow_program::from_json(text)?))
    }

    /// Build a pipeline from an already-constructed program.
    pub fn new(program: StencilProgram) -> Self {
        Pipeline {
            program,
            analysis_config: AnalysisConfig::paper_defaults(),
            sim_config: SimConfig::default(),
            fuse: true,
        }
    }

    /// Disable the aggressive stencil-fusion pass (enabled by default, as in
    /// the paper's experiments).
    pub fn without_fusion(mut self) -> Self {
        self.fuse = false;
        self
    }

    /// Override the analysis configuration.
    pub fn with_analysis_config(mut self, config: AnalysisConfig) -> Self {
        self.analysis_config = config;
        self
    }

    /// Override the simulation configuration.
    pub fn with_sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// The program this pipeline will map (before fusion).
    pub fn program(&self) -> &StencilProgram {
        &self.program
    }

    /// Run the complete flow: fuse, analyze, map, generate code, simulate on
    /// pseudo-random inputs (seeded by `seed`), and validate against the
    /// sequential reference executor.
    ///
    /// # Errors
    ///
    /// Returns an error if any stage fails.
    pub fn execute(&self, seed: u64) -> Result<PipelineResult, PipelineError> {
        let inputs = InputGenerator::new(seed).generate(&self.program);
        self.execute_with_inputs(&inputs)
    }

    /// Run the complete flow on caller-provided input grids.
    ///
    /// # Errors
    ///
    /// Returns an error if any stage fails.
    pub fn execute_with_inputs(
        &self,
        inputs: &BTreeMap<String, Grid>,
    ) -> Result<PipelineResult, PipelineError> {
        let program = if self.fuse {
            stencilflow_dataflow::fuse_all(&self.program)?
        } else {
            self.program.clone()
        };
        let analysis = stencilflow_core::analyze(&program, &self.analysis_config)?;
        let mapping = HardwareMapping::build(&program, &self.analysis_config)?;
        let kernel_code = stencilflow_codegen::generate_kernels(&program, &mapping);
        let simulator = Simulator::build(&program, &self.analysis_config, &self.sim_config)?;
        let simulation = simulator.run(inputs)?;

        // Validate against the reference executor (on the original,
        // unfused program — fusion must not change results).
        let mut max_error: f64 = 0.0;
        if simulation.completed() {
            let reference = ReferenceExecutor::new().run(&self.program, inputs)?;
            for output in self.program.outputs() {
                if let Some(grid) = simulation.output(output) {
                    if let Some(err) = reference.compare_field(output, grid) {
                        max_error = max_error.max(err);
                    }
                }
            }
        } else {
            max_error = f64::INFINITY;
        }

        Ok(PipelineResult {
            program,
            analysis,
            mapping,
            kernel_code,
            simulation,
            max_error_vs_reference: max_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_workloads::{listing1, ChainSpec};

    #[test]
    fn pipeline_runs_listing1_end_to_end() {
        let program = stencilflow_workloads::listing1::listing1_with_shape(&[6, 6, 6]);
        let result = Pipeline::new(program).execute(7).unwrap();
        assert!(result.simulation.completed());
        assert!(result.max_error_vs_reference < 1e-5);
        assert!(result.kernel_code.contains("channel float"));
        assert!(result.analysis.total_buffer_elements() > 0);
    }

    #[test]
    fn fusion_reduces_stencil_count_without_changing_results() {
        let spec = ChainSpec::new(4, 8).with_shape(&[32, 8, 8]);
        let program = stencilflow_workloads::chain_program(&spec);
        // Chains of center-only padded stages are not fusable (offset
        // accesses), so use a fusable program instead: listing1 has none
        // either; build a simple chain of pointwise stages.
        let pointwise = StencilProgramBuilder::new("pointwise", &[16, 16])
            .input("a", stencilflow_expr::DataType::Float32, &["i", "j"])
            .stencil("s1", "a[i,j] * 2.0")
            .stencil("s2", "s1[i,j] + 1.0")
            .stencil("s3", "s2[i,j] * 0.5")
            .output("s3")
            .build()
            .unwrap();
        let fused = Pipeline::new(pointwise.clone()).execute(3).unwrap();
        let unfused = Pipeline::new(pointwise)
            .without_fusion()
            .execute(3)
            .unwrap();
        assert!(fused.program.stencil_count() < unfused.program.stencil_count());
        assert!(fused.max_error_vs_reference < 1e-5);
        assert!(unfused.max_error_vs_reference < 1e-5);
        let _ = program;
        let _ = listing1();
    }
}
