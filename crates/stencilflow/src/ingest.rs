//! File ingestion for the command-line driver: program descriptions
//! (text JSON) and grid sets (compact `SFGS` binary framing or the text
//! escape hatch, auto-detected) are loaded from disk and converted into
//! the executor's in-memory types.
//!
//! The module deliberately owns every disk-facing conversion so the CLI
//! binary stays a thin argument parser: program JSON goes through
//! [`stencilflow_program::from_json`], grid bytes through
//! [`stencilflow_json::decode_grid_set_auto`], and results come back out
//! through [`stencilflow_json::encode_grid_set`].

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use stencilflow_expr::DataType;
use stencilflow_json::{decode_grid_set_auto, encode_grid_set, FrameError, GridFrame, Json};
use stencilflow_program::{from_json, ProgramError, StencilProgram};
use stencilflow_reference::Grid;

/// Errors produced while loading jobs from disk.
#[derive(Debug)]
pub enum IngestError {
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The program description failed to parse or validate.
    Program(ProgramError),
    /// A grid set or frame failed to decode.
    Frame(FrameError),
    /// Structurally valid input that the executor cannot use
    /// (unsupported dtype, duplicate grid name, ...).
    Schema(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io { path, error } => write!(f, "{path}: {error}"),
            IngestError::Program(e) => write!(f, "program error: {e}"),
            IngestError::Frame(e) => write!(f, "grid set error: {e}"),
            IngestError::Schema(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<ProgramError> for IngestError {
    fn from(e: ProgramError) -> Self {
        IngestError::Program(e)
    }
}

impl From<FrameError> for IngestError {
    fn from(e: FrameError) -> Self {
        IngestError::Frame(e)
    }
}

fn read_file(path: &Path) -> Result<Vec<u8>, IngestError> {
    std::fs::read(path).map_err(|error| IngestError::Io {
        path: path.display().to_string(),
        error,
    })
}

/// Load and validate a program description from a text-JSON file.
pub fn load_program(path: &Path) -> Result<Arc<StencilProgram>, IngestError> {
    let bytes = read_file(path)?;
    let text = String::from_utf8(bytes).map_err(|_| {
        IngestError::Schema(format!(
            "{}: program description is not valid UTF-8",
            path.display()
        ))
    })?;
    Ok(Arc::new(from_json(&text)?))
}

/// Convert a decoded frame into an executor grid.
///
/// The frame's dtype string must name a floating-point element type
/// (the only payloads the framing defines); values are rounded through
/// that type exactly as [`Grid::from_values_typed`] does, so a
/// `float32` frame loads bit-identically to a grid built in process.
pub fn frame_to_grid(name: &str, frame: &GridFrame) -> Result<Grid, IngestError> {
    let dtype: DataType = frame.dtype.parse().map_err(|_| {
        IngestError::Schema(format!(
            "grid `{name}`: unsupported dtype `{}`",
            frame.dtype
        ))
    })?;
    let dims: Vec<&str> = frame.dims.iter().map(String::as_str).collect();
    Ok(Grid::from_values_typed(
        &dims,
        &frame.shape,
        dtype,
        &frame.values,
    ))
}

/// Convert an executor grid into a frame ready for encoding.
pub fn grid_to_frame(name: &str, grid: &Grid) -> Result<GridFrame, IngestError> {
    let dtype = match grid.data_type() {
        DataType::Float32 => "float32",
        DataType::Float64 => "float64",
        other => {
            return Err(IngestError::Schema(format!(
                "grid `{name}`: element type {other} has no frame encoding"
            )))
        }
    };
    GridFrame::new(
        dtype,
        grid.dims().to_vec(),
        grid.shape().to_vec(),
        grid.as_slice().to_vec(),
    )
    .map_err(IngestError::Frame)
}

/// Load a named grid set (binary `SFGS` or the text escape hatch,
/// auto-detected) into the executor's input map. Duplicate grid names
/// are rejected rather than last-wins.
pub fn load_grid_set(path: &Path) -> Result<BTreeMap<String, Grid>, IngestError> {
    let bytes = read_file(path)?;
    let entries = decode_grid_set_auto(&bytes)?;
    let mut grids = BTreeMap::new();
    for (name, frame) in &entries {
        let grid = frame_to_grid(name, frame)?;
        if grids.insert(name.clone(), grid).is_some() {
            return Err(IngestError::Schema(format!(
                "{}: duplicate grid `{name}`",
                path.display()
            )));
        }
    }
    Ok(grids)
}

/// Encode named grids as a binary `SFGS` grid set and write it.
pub fn write_grid_set(
    path: &Path,
    grids: impl Iterator<Item = (String, Grid)>,
) -> Result<(), IngestError> {
    let mut entries = Vec::new();
    for (name, grid) in grids {
        let frame = grid_to_frame(&name, &grid)?;
        entries.push((name, frame));
    }
    let bytes = encode_grid_set(&entries)?;
    std::fs::write(path, bytes).map_err(|error| IngestError::Io {
        path: path.display().to_string(),
        error,
    })
}

/// One entry of a serve manifest: a program, its inputs, and how the
/// job repeats.
#[derive(Debug, Clone)]
pub struct ManifestJob {
    /// Path-relative label used in reports (defaults to the program path).
    pub label: String,
    /// The validated program.
    pub program: Arc<StencilProgram>,
    /// The decoded inputs, shared across repeats.
    pub inputs: Arc<BTreeMap<String, Grid>>,
    /// Number of update sweeps per job (defaults to 1).
    pub steps: usize,
    /// Optional fixed tier name (validated by the CLI against the
    /// executor's tier table).
    pub tier: Option<String>,
    /// How many identical jobs this entry expands into (defaults to 1).
    pub count: usize,
}

/// Parse a serve manifest: a text-JSON array of
/// `{"program": PATH, "grids": PATH, "steps": N, "tier": NAME,
/// "count": N}` objects. Relative paths resolve against the manifest's
/// own directory, so a manifest can move with its data.
pub fn load_manifest(path: &Path) -> Result<Vec<ManifestJob>, IngestError> {
    let bytes = read_file(path)?;
    let text = String::from_utf8(bytes).map_err(|_| {
        IngestError::Schema(format!("{}: manifest is not valid UTF-8", path.display()))
    })?;
    let json = stencilflow_json::parse(&text)
        .map_err(|e| IngestError::Schema(format!("{}: {e}", path.display())))?;
    let entries = json.as_array().ok_or_else(|| {
        IngestError::Schema(format!(
            "{}: manifest must be a JSON array of job objects",
            path.display()
        ))
    })?;
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    let mut jobs = Vec::with_capacity(entries.len());
    for (ix, entry) in entries.iter().enumerate() {
        jobs.push(parse_manifest_entry(base, ix, entry)?);
    }
    Ok(jobs)
}

fn parse_manifest_entry(base: &Path, ix: usize, entry: &Json) -> Result<ManifestJob, IngestError> {
    let fail = |msg: String| IngestError::Schema(format!("manifest job {ix}: {msg}"));
    let object = entry
        .as_object()
        .ok_or_else(|| fail(format!("expected an object, found {}", entry.type_name())))?;
    for (key, _) in object {
        if !matches!(
            key.as_str(),
            "program" | "grids" | "steps" | "tier" | "count"
        ) {
            return Err(fail(format!("unknown key `{key}`")));
        }
    }
    let path_field = |key: &str| -> Result<std::path::PathBuf, IngestError> {
        let value = entry
            .get(key)
            .ok_or_else(|| fail(format!("missing required key `{key}`")))?;
        let s = value
            .as_str()
            .ok_or_else(|| fail(format!("`{key}` must be a path string")))?;
        Ok(base.join(s))
    };
    let program_path = path_field("program")?;
    let grids_path = path_field("grids")?;
    let steps = match entry.get("steps") {
        None => 1,
        Some(v) => v
            .as_usize()
            .filter(|&s| s >= 1)
            .ok_or_else(|| fail("`steps` must be a positive integer".to_string()))?,
    };
    let count = match entry.get("count") {
        None => 1,
        Some(v) => v
            .as_usize()
            .filter(|&c| c >= 1)
            .ok_or_else(|| fail("`count` must be a positive integer".to_string()))?,
    };
    let tier = match entry.get("tier") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| fail("`tier` must be a string".to_string()))?
                .to_string(),
        ),
    };
    let program = load_program(&program_path)?;
    let inputs = Arc::new(load_grid_set(&grids_path)?);
    Ok(ManifestJob {
        label: program_path.display().to_string(),
        program,
        inputs,
        steps,
        tier,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_round_trip_through_frames_bitwise() {
        let grid = Grid::from_values_typed(
            &["i", "j"],
            &[2, 3],
            DataType::Float64,
            &[1.0, -0.0, f64::NAN, 0.5, 2.5e-300, -7.25],
        );
        let frame = grid_to_frame("a", &grid).unwrap();
        let back = frame_to_grid("a", &frame).unwrap();
        assert_eq!(back.dims(), grid.dims());
        assert_eq!(back.shape(), grid.shape());
        assert_eq!(back.data_type(), grid.data_type());
        for (x, y) in back.as_slice().iter().zip(grid.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn int_grids_are_rejected_with_a_clear_error() {
        let grid = Grid::zeros(&["i"], &[4], DataType::Int32);
        let err = grid_to_frame("counts", &grid).unwrap_err();
        assert!(matches!(err, IngestError::Schema(_)));
        assert!(err.to_string().contains("no frame encoding"));
    }
}
