//! JSON-lines wire protocol for the resilient serving daemon.
//!
//! `stencilflow daemon` is a long-lived ingest loop: it reads one request
//! object per line from its input and writes one response object per line
//! to its output. The daemon core ([`stencilflow_reference::Daemon`])
//! stays free of I/O; this module owns every disk- and stream-facing
//! concern — request parsing, program/grid ingestion (the same
//! [`crate::ingest`] paths and `SFGS` framing the batch CLI uses), and
//! tier-decision persistence across restarts.
//!
//! Requests (`op` selects the verb; unknown keys are rejected):
//!
//! * `{"op":"submit","id":ID,"tenant":T,"program":PATH,"grids":PATH,
//!   "steps":N,"tier":NAME,"soft_deadline_ms":N,"hard_timeout_ms":N,
//!   "fault":"poison"|{"stall_ms":N},"out":PATH}` — admit one job. The
//!   response echoes the id with `"ok":true`, or `"ok":false` plus the
//!   structured reject code (`SF0401`..`SF0406`).
//! * `{"op":"manifest","path":PATH,"tenant":T}` — admit a whole serve
//!   manifest (the `stencilflow serve` format); jobs get ids derived
//!   from the entry label and index.
//! * `{"op":"dispatch"}` — run one earliest-deadline micro-batch and
//!   emit an `outcome` line per settled job.
//! * `{"op":"stats"}` — emit admission and executor counters.
//! * `{"op":"drain"}` — graceful shutdown: close admission, finish the
//!   queue, emit the remaining outcomes and a `drain` report. Later
//!   submits are rejected with `SF0406`.
//!
//! End of input always drains (idempotently), so piping a finite script
//! into the daemon leaves no job unsettled. A malformed line produces an
//! `{"op":"error",...}` response and the loop keeps reading — the daemon
//! never aborts on bad input.
//!
//! Outcome lines are sorted by job id within each dispatch/drain round,
//! so output is deterministic under concurrent workers.
//!
//! When a tier-cache path is configured, persisted tier decisions are
//! imported before the first request (decisions from a different build
//! salt are discarded as stale) and the live decisions are exported back
//! on exit — a restarted daemon re-measures nothing it already knows.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::ingest;
use stencilflow_json::Json;
use stencilflow_reference::{
    Daemon, DaemonConfig, DaemonOutcome, DaemonRequest, DaemonStats, DrainReport, JobFault,
    JobSpec, JobStatus, Tier, TierCacheLoad,
};

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Admit one job.
    Submit(SubmitRequest),
    /// Admit a whole serve manifest.
    Manifest {
        /// Manifest path (entries resolve relative to it).
        path: PathBuf,
        /// Tenant the manifest's jobs bill against (default `manifest`).
        tenant: Option<String>,
    },
    /// Run one earliest-deadline micro-batch.
    Dispatch,
    /// Emit admission and executor counters.
    Stats,
    /// Graceful shutdown: close admission and work the queue down.
    Drain,
}

/// The fields of a `submit` request.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Caller-chosen id, unique among live jobs.
    pub id: String,
    /// Tenant the job bills against.
    pub tenant: String,
    /// Program description path (text JSON).
    pub program: PathBuf,
    /// Grid-set path (`SFGS` binary or the text escape hatch).
    pub grids: PathBuf,
    /// Time steps (default 1).
    pub steps: usize,
    /// Fixed tier override; `None` defers to the service policy.
    pub tier: Option<Tier>,
    /// Soft deadline from submission (EDF priority).
    pub soft_deadline: Option<Duration>,
    /// Hard timeout from submission.
    pub hard_timeout: Option<Duration>,
    /// Deterministic fault injection (resilience gates).
    pub fault: Option<JobFault>,
    /// Where to write the outputs as a binary grid set.
    pub out: Option<PathBuf>,
}

/// Parse one request line. Total over arbitrary input: every failure is
/// a structured message, never a panic — the fuzz suite holds this to
/// malformed JSON, wrong shapes, unknown ops/keys, and hostile numbers.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = stencilflow_json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let object = json
        .as_object()
        .ok_or_else(|| format!("request must be an object, found {}", json.type_name()))?;
    let op = json
        .get("op")
        .ok_or("missing `op`")?
        .as_str()
        .ok_or("`op` must be a string")?;
    match op {
        "submit" => parse_submit(&json),
        "manifest" => {
            check_keys(object, &["op", "path", "tenant"])?;
            let path = PathBuf::from(required_str(&json, "path")?);
            let tenant = optional_str(&json, "tenant")?;
            Ok(Request::Manifest { path, tenant })
        }
        "dispatch" => {
            check_keys(object, &["op"])?;
            Ok(Request::Dispatch)
        }
        "stats" => {
            check_keys(object, &["op"])?;
            Ok(Request::Stats)
        }
        "drain" => {
            check_keys(object, &["op"])?;
            Ok(Request::Drain)
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

fn parse_submit(json: &Json) -> Result<Request, String> {
    let object = json.as_object().expect("caller checked the shape");
    check_keys(
        object,
        &[
            "op",
            "id",
            "tenant",
            "program",
            "grids",
            "steps",
            "tier",
            "soft_deadline_ms",
            "hard_timeout_ms",
            "fault",
            "out",
        ],
    )?;
    let id = required_str(json, "id")?;
    if id.is_empty() {
        return Err("`id` must be non-empty".to_string());
    }
    let tenant = required_str(json, "tenant")?;
    if tenant.is_empty() {
        return Err("`tenant` must be non-empty".to_string());
    }
    let program = PathBuf::from(required_str(json, "program")?);
    let grids = PathBuf::from(required_str(json, "grids")?);
    let steps = match json.get("steps") {
        None => 1,
        Some(v) => v
            .as_usize()
            .filter(|&s| s >= 1)
            .ok_or("`steps` must be a positive integer")?,
    };
    let tier = match optional_str(json, "tier")? {
        None => None,
        Some(name) => Some(name.parse::<Tier>().map_err(|e| format!("`tier`: {e}"))?),
    };
    let soft_deadline = duration_ms(json, "soft_deadline_ms")?;
    let hard_timeout = duration_ms(json, "hard_timeout_ms")?;
    let fault = match json.get("fault") {
        None => None,
        Some(Json::String(name)) if name == "poison" => Some(JobFault::Poison),
        Some(Json::String(name)) => return Err(format!("unknown fault `{name}`")),
        Some(value) => {
            let fields = value
                .as_object()
                .ok_or(r#"`fault` must be "poison" or {"stall_ms": N}"#)?;
            check_keys(fields, &["stall_ms"])?;
            let stall = duration_ms(value, "stall_ms")?
                .ok_or("`fault` object needs a `stall_ms` number")?;
            Some(JobFault::Stall(stall))
        }
    };
    let out = optional_str(json, "out")?.map(PathBuf::from);
    Ok(Request::Submit(SubmitRequest {
        id,
        tenant,
        program,
        grids,
        steps,
        tier,
        soft_deadline,
        hard_timeout,
        fault,
        out,
    }))
}

/// Reject unknown and duplicate keys — the same hardening the manifest
/// parser applies, so a typo fails loudly instead of being ignored.
fn check_keys(object: &[(String, Json)], allowed: &[&str]) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    for (key, _) in object {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key `{key}`"));
        }
        if !seen.insert(key.as_str()) {
            return Err(format!("duplicate key `{key}`"));
        }
    }
    Ok(())
}

fn required_str(json: &Json, key: &str) -> Result<String, String> {
    optional_str(json, key)?.ok_or_else(|| format!("missing required key `{key}`"))
}

fn optional_str(json: &Json, key: &str) -> Result<Option<String>, String> {
    match json.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

/// Millisecond durations arrive as JSON numbers; negatives, NaN, and
/// values outside `Duration`'s range are rejected before any conversion.
fn duration_ms(json: &Json, key: &str) -> Result<Option<Duration>, String> {
    match json.get(key) {
        None => Ok(None),
        Some(v) => {
            let ms = v
                .as_f64()
                .filter(|ms| ms.is_finite() && *ms >= 0.0)
                .ok_or_else(|| format!("`{key}` must be a non-negative number"))?;
            Duration::try_from_secs_f64(ms / 1e3)
                .map(Some)
                .map_err(|_| format!("`{key}` is out of range"))
        }
    }
}

/// Silence the default panic hook for *injected* poison faults only, so
/// resilience gates don't spray backtraces into logs; every real panic
/// still reports through the previous hook. (The panic itself is always
/// caught and isolated by the serving layer either way.)
pub fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected poison-job fault"));
        if !injected {
            previous(info);
        }
    }));
}

/// Transport configuration for [`run_loop`].
#[derive(Debug, Clone, Default)]
pub struct DaemonLoopOptions {
    /// The daemon configuration (queue, quotas, deadlines).
    pub config: DaemonConfig,
    /// Tier-decision persistence: imported before the first request,
    /// exported on exit. `None` disables persistence.
    pub tier_cache: Option<PathBuf>,
}

impl DaemonLoopOptions {
    /// Default daemon configuration, no persistence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the daemon configuration.
    pub fn with_config(mut self, config: DaemonConfig) -> Self {
        self.config = config;
        self
    }

    /// Persist tier decisions at this path across restarts.
    pub fn with_tier_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.tier_cache = Some(path.into());
        self
    }
}

/// What one [`run_loop`] session did, for the caller's exit code and
/// reporting.
#[derive(Debug)]
pub struct LoopSummary {
    /// Final admission/completion counters.
    pub stats: DaemonStats,
    /// The combined drain report (explicit `drain` ops plus the end-of-
    /// input drain).
    pub drain: DrainReport,
    /// What importing the persisted tier cache did, when configured and
    /// present.
    pub cache: Option<TierCacheLoad>,
}

/// Run the daemon ingest loop until end of input. See the module docs
/// for the protocol. Errors are I/O failures on `output` only — bad
/// requests, rejections, and job failures are all in-band responses.
pub fn run_loop<R: BufRead, W: Write>(
    input: R,
    output: &mut W,
    options: DaemonLoopOptions,
) -> std::io::Result<LoopSummary> {
    let daemon = Daemon::new(options.config);
    let cache = import_cache(&daemon, options.tier_cache.as_deref(), output)?;
    let outs: Mutex<BTreeMap<String, PathBuf>> = Mutex::new(BTreeMap::new());
    let mut drain = DrainReport {
        clean: true,
        cancelled: 0,
    };
    for line in input.lines() {
        let Ok(line) = line else {
            // A broken input stream still gets the graceful path below.
            break;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_request(line) {
            Err(message) => respond(output, error_json(&message))?,
            Ok(Request::Submit(submit)) => handle_submit(&daemon, &outs, submit, output)?,
            Ok(Request::Manifest { path, tenant }) => {
                handle_manifest(&daemon, &path, tenant.as_deref(), output)?
            }
            Ok(Request::Dispatch) => {
                let (_, outcomes) = dispatch_round(&daemon, &outs);
                for (_, json) in outcomes {
                    respond(output, json)?;
                }
            }
            Ok(Request::Stats) => respond(output, stats_json(&daemon))?,
            Ok(Request::Drain) => {
                let report = drain_now(&daemon, &outs, output)?;
                drain.clean &= report.clean;
                drain.cancelled += report.cancelled;
            }
        }
    }
    // End of input always drains; a no-op when a `drain` op already ran
    // and nothing was submitted after it.
    let report = drain_now(&daemon, &outs, output)?;
    drain.clean &= report.clean;
    drain.cancelled += report.cancelled;
    if let Some(path) = &options.tier_cache {
        if let Err(e) = std::fs::write(path, daemon.serve().export_tier_decisions()) {
            respond(
                output,
                error_json(&format!("writing tier cache {}: {e}", path.display())),
            )?;
        }
    }
    Ok(LoopSummary {
        stats: daemon.stats(),
        drain,
        cache,
    })
}

/// Import persisted tier decisions, reporting what happened in-band. A
/// missing file is a cold start; a malformed or stale file degrades to a
/// cold start rather than refusing to boot.
fn import_cache<W: Write>(
    daemon: &Daemon,
    path: Option<&Path>,
    output: &mut W,
) -> std::io::Result<Option<TierCacheLoad>> {
    let Some(path) = path else {
        return Ok(None);
    };
    if !path.exists() {
        return Ok(None);
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            respond(
                output,
                error_json(&format!("reading tier cache {}: {e}", path.display())),
            )?;
            return Ok(None);
        }
    };
    match daemon.serve().import_tier_decisions(&text) {
        Ok(load) => {
            respond(
                output,
                obj(vec![
                    ("op", s("tier-cache")),
                    ("loaded", num(load.loaded as f64)),
                    ("stale", Json::Bool(load.stale)),
                ]),
            )?;
            Ok(Some(load))
        }
        Err(e) => {
            respond(
                output,
                error_json(&format!(
                    "tier cache {}: {e}; starting cold",
                    path.display()
                )),
            )?;
            Ok(None)
        }
    }
}

fn handle_submit<W: Write>(
    daemon: &Daemon,
    outs: &Mutex<BTreeMap<String, PathBuf>>,
    submit: SubmitRequest,
    output: &mut W,
) -> std::io::Result<()> {
    let loaded = ingest::load_program(&submit.program)
        .and_then(|program| ingest::load_grid_set(&submit.grids).map(|grids| (program, grids)));
    let (program, grids) = match loaded {
        Ok(pair) => pair,
        Err(e) => {
            return respond(
                output,
                obj(vec![
                    ("op", s("submit")),
                    ("id", s(&submit.id)),
                    ("ok", Json::Bool(false)),
                    ("error", s(e.to_string())),
                ]),
            )
        }
    };
    let mut job = JobSpec::new(program, Arc::new(grids))
        .with_steps(submit.steps)
        .with_tenant(&submit.tenant);
    if let Some(tier) = submit.tier {
        job = job.with_tier(tier);
    }
    if let Some(fault) = submit.fault {
        job = job.with_fault(fault);
    }
    let mut request = DaemonRequest::new(&submit.id, &submit.tenant, job);
    if let Some(deadline) = submit.soft_deadline {
        request = request.with_soft_deadline(deadline);
    }
    if let Some(timeout) = submit.hard_timeout {
        request = request.with_hard_timeout(timeout);
    }
    match daemon.submit(request) {
        Ok(()) => {
            if let Some(path) = submit.out {
                outs.lock()
                    .expect("output registry poisoned")
                    .insert(submit.id.clone(), path);
            }
            respond(
                output,
                obj(vec![
                    ("op", s("submit")),
                    ("id", s(&submit.id)),
                    ("ok", Json::Bool(true)),
                ]),
            )
        }
        Err(reason) => respond(
            output,
            obj(vec![
                ("op", s("submit")),
                ("id", s(&submit.id)),
                ("ok", Json::Bool(false)),
                ("code", s(reason.code())),
                ("error", s(reason.to_string())),
            ]),
        ),
    }
}

fn handle_manifest<W: Write>(
    daemon: &Daemon,
    path: &Path,
    tenant: Option<&str>,
    output: &mut W,
) -> std::io::Result<()> {
    let manifest = match ingest::load_manifest(path) {
        Ok(manifest) => manifest,
        Err(e) => return respond(output, error_json(&e.to_string())),
    };
    let tenant = tenant.unwrap_or("manifest");
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    for (ix, entry) in manifest.iter().enumerate() {
        let tier = match &entry.tier {
            None => None,
            Some(name) => match name.parse::<Tier>() {
                Ok(tier) => Some(tier),
                Err(e) => {
                    return respond(
                        output,
                        error_json(&format!("manifest job {ix}: `tier` {name}: {e}")),
                    )
                }
            },
        };
        for k in 0..entry.count {
            let mut job = JobSpec::new(entry.program.clone(), entry.inputs.clone())
                .with_steps(entry.steps)
                .with_tenant(tenant);
            if let Some(tier) = tier {
                job = job.with_tier(tier);
            }
            let id = format!("{}#{ix}.{k}", entry.label);
            match daemon.submit(DaemonRequest::new(id, tenant, job)) {
                Ok(()) => admitted += 1,
                Err(_) => rejected += 1,
            }
        }
    }
    respond(
        output,
        obj(vec![
            ("op", s("manifest")),
            ("ok", Json::Bool(true)),
            ("admitted", num(admitted as f64)),
            ("rejected", num(rejected as f64)),
        ]),
    )
}

/// Run one dispatch round, collecting the (id, response) pairs the
/// worker threads produce and sorting them by id for deterministic
/// output.
fn dispatch_round(
    daemon: &Daemon,
    outs: &Mutex<BTreeMap<String, PathBuf>>,
) -> (usize, Vec<(String, Json)>) {
    let collected: Mutex<Vec<(String, Json)>> = Mutex::new(Vec::new());
    let settled = daemon.dispatch(|outcome| {
        let line = outcome_json(daemon, outs, outcome);
        collected.lock().expect("outcome sink poisoned").push(line);
    });
    let mut lines = collected.into_inner().expect("outcome sink poisoned");
    lines.sort_by(|a, b| a.0.cmp(&b.0));
    (settled, lines)
}

/// Drain the daemon, then write every settled outcome (sorted by id)
/// and the drain report.
fn drain_now<W: Write>(
    daemon: &Daemon,
    outs: &Mutex<BTreeMap<String, PathBuf>>,
    output: &mut W,
) -> std::io::Result<DrainReport> {
    let collected: Mutex<Vec<(String, Json)>> = Mutex::new(Vec::new());
    let report = daemon.drain(|outcome| {
        let line = outcome_json(daemon, outs, outcome);
        collected.lock().expect("outcome sink poisoned").push(line);
    });
    let mut lines = collected.into_inner().expect("outcome sink poisoned");
    lines.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, json) in lines {
        respond(output, json)?;
    }
    respond(
        output,
        obj(vec![
            ("op", s("drain")),
            ("clean", Json::Bool(report.clean)),
            ("cancelled", num(report.cancelled as f64)),
        ]),
    )?;
    Ok(report)
}

/// Render one settled job as its `outcome` response, writing the
/// outputs to the registered path (if any) and recycling the result
/// buffers back into the executor pool.
fn outcome_json(
    daemon: &Daemon,
    outs: &Mutex<BTreeMap<String, PathBuf>>,
    outcome: DaemonOutcome,
) -> (String, Json) {
    let out_path = outs
        .lock()
        .expect("output registry poisoned")
        .remove(&outcome.id);
    let mut fields = vec![
        ("op", s("outcome")),
        ("id", s(&outcome.id)),
        ("tenant", s(&outcome.tenant)),
        ("status", s(outcome.status.label())),
        ("wait_ms", num(outcome.wait.as_secs_f64() * 1e3)),
        ("latency_ms", num(outcome.latency.as_secs_f64() * 1e3)),
    ];
    match outcome.status {
        JobStatus::Done { tier, result } => {
            fields.push(("tier", s(tier.to_string())));
            fields.push(("cells", num(result.cells_evaluated() as f64)));
            if let Some(path) = out_path {
                let grids: Vec<(String, stencilflow_reference::Grid)> = result
                    .fields()
                    .map(|(name, grid)| (name.to_string(), grid.clone()))
                    .collect();
                match ingest::write_grid_set(&path, grids.into_iter()) {
                    Ok(()) => fields.push(("out", s(path.display().to_string()))),
                    Err(e) => fields.push(("error", s(format!("writing outputs: {e}")))),
                }
            }
            daemon.serve().recycle(result);
        }
        JobStatus::Failed(e) => fields.push(("error", s(e.to_string()))),
        JobStatus::Panicked(message) => {
            fields.push(("code", s("SF0409")));
            fields.push(("error", s(message)));
        }
        JobStatus::Cancelled(reason) => {
            fields.push(("code", s(reason.code())));
            fields.push(("error", s(reason.to_string())));
        }
    }
    (outcome.id, obj(fields))
}

fn stats_json(daemon: &Daemon) -> Json {
    let stats = daemon.stats();
    let serve = daemon.serve_stats();
    let rejects = stats
        .rejects_by_code
        .iter()
        .map(|(code, count)| (code.to_string(), num(*count as f64)))
        .collect();
    obj(vec![
        ("op", s("stats")),
        ("submitted", num(stats.submitted as f64)),
        ("admitted", num(stats.admitted as f64)),
        ("rejected", num(stats.rejected as f64)),
        ("rejects", Json::Object(rejects)),
        ("completed", num(stats.completed as f64)),
        ("failed", num(stats.failed as f64)),
        ("panicked", num(stats.panicked as f64)),
        ("cancelled", num(stats.cancelled as f64)),
        ("max_queue_depth", num(stats.max_queue_depth as f64)),
        ("queue_depth", num(daemon.queue_depth() as f64)),
        (
            "serve",
            obj(vec![
                ("jobs", num(serve.jobs as f64)),
                ("compiles", num(serve.compiles as f64)),
                ("tier_measurements", num(serve.tier_measurements as f64)),
                ("steals", num(serve.steals as f64)),
                ("pool_misses", num(serve.pool_misses as f64)),
                ("mask_misses", num(serve.mask_misses as f64)),
            ]),
        ),
    ])
}

fn respond<W: Write>(output: &mut W, json: Json) -> std::io::Result<()> {
    writeln!(output, "{}", json.to_string_compact())
}

fn error_json(message: &str) -> Json {
    obj(vec![("op", s("error")), ("error", s(message))])
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(key, value)| (key.to_string(), value))
            .collect(),
    )
}

fn s(value: impl Into<String>) -> Json {
    Json::String(value.into())
}

fn num(value: f64) -> Json {
    Json::Number(value)
}
