//! Seeded mixed-traffic smoke gate for the resilient serving daemon.
//!
//! Pass 1 pipes one chaos script through the JSON-lines loop: normal
//! single and stepped jobs, a poison job (injected panic), an over-quota
//! tenant, a past-deadline job, a duplicate id, and a submit after the
//! mid-stream `drain`. The gate asserts every admitted job reaches a
//! structured outcome, the daemon never aborts, the drain is clean, and
//! every completed output is **bitwise identical** to the reference
//! executor recomputed in-process.
//!
//! Pass 2 restarts the loop against the persisted tier cache and proves
//! the restart contract: the cache loads non-stale, zero tier
//! measurements happen, and the outputs are byte-identical to pass 1's.
//!
//! A stats JSON artifact is written to `--out PATH` (or `$DAEMON_JSON`,
//! default `daemon_gate_ci.json`). Exit 0 on pass, 1 on the first
//! failed check.

use std::collections::BTreeMap;
use std::io::Cursor;
use std::path::Path;
use std::time::Duration;

use stencilflow::daemon::{run_loop, DaemonLoopOptions};
use stencilflow::ingest;
use stencilflow::reference::{
    generate_inputs, DaemonConfig, Grid, ReferenceExecutor, ServeConfig, TenantQuota,
};
use stencilflow_json::Json;

fn check(cond: bool, message: &str) {
    if !cond {
        eprintln!("daemon gate: FAIL: {message}");
        std::process::exit(1);
    }
}

fn s(value: impl Into<String>) -> Json {
    Json::String(value.into())
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(key, value)| (key.to_string(), value))
            .collect(),
    )
}

/// Render one request line (paths go through the JSON encoder so the
/// script survives any temp-dir spelling).
fn line(fields: Vec<(&str, Json)>) -> String {
    let mut text = obj(fields).to_string_compact();
    text.push('\n');
    text
}

fn path_json(path: &Path) -> Json {
    s(path.display().to_string())
}

/// Parse the response stream into one Json per line.
fn parse_responses(bytes: &[u8]) -> Vec<Json> {
    let text = String::from_utf8(bytes.to_vec()).expect("responses are UTF-8");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| stencilflow_json::parse(l).expect("responses are valid JSON"))
        .collect()
}

fn op_is(json: &Json, op: &str) -> bool {
    json.get("op").and_then(Json::as_str) == Some(op)
}

fn field_str<'j>(json: &'j Json, key: &str) -> &'j str {
    json.get(key).and_then(Json::as_str).unwrap_or("")
}

/// The outcome line for one job id, which must exist exactly once.
fn outcome_for<'j>(responses: &'j [Json], id: &str) -> &'j Json {
    let mut found = None;
    for response in responses.iter().filter(|r| op_is(r, "outcome")) {
        if field_str(response, "id") == id {
            check(
                found.is_none(),
                &format!("job `{id}` settled more than once"),
            );
            found = Some(response);
        }
    }
    found.unwrap_or_else(|| {
        eprintln!("daemon gate: FAIL: admitted job `{id}` never reached an outcome");
        std::process::exit(1);
    })
}

/// Bitwise comparison of a written grid set against in-process grids.
fn check_bitwise(label: &str, written: &Path, expected: &[(String, Grid)]) {
    let loaded = ingest::load_grid_set(written).unwrap_or_else(|e| -> BTreeMap<String, Grid> {
        eprintln!("daemon gate: FAIL: loading {label}: {e}");
        std::process::exit(1);
    });
    check(
        loaded.len() == expected.len(),
        &format!(
            "{label}: wrote {} grids, expected {}",
            loaded.len(),
            expected.len()
        ),
    );
    for (name, grid) in expected {
        let Some(back) = loaded.get(name) else {
            check(false, &format!("{label}: output `{name}` missing"));
            return;
        };
        check(
            back.shape() == grid.shape(),
            &format!("{label}: output `{name}` shape mismatch"),
        );
        for (ix, (a, b)) in back.as_slice().iter().zip(grid.as_slice()).enumerate() {
            if a.to_bits() != b.to_bits() {
                check(
                    false,
                    &format!("{label}: output `{name}` differs from the reference at cell {ix}"),
                );
            }
        }
    }
}

const JACOBI_JSON: &str = r#"{
  "inputs": { "a": {"dtype": "float32", "dims": ["i", "j"]} },
  "outputs": ["b"],
  "shape": [24, 20],
  "program": { "b": "0.25 * (a[i-1,j] + a[i+1,j] + a[i,j-1] + a[i,j+1])" }
}"#;

const STEPPED_JSON: &str = r#"{
  "inputs": { "u": {"dtype": "float32", "dims": ["i", "j"]} },
  "outputs": ["u_next"],
  "shape": [16, 12],
  "program": { "u_next": "0.25 * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1])" }
}"#;

fn main() {
    stencilflow::daemon::quiet_injected_panics();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact =
        std::env::var("DAEMON_JSON").unwrap_or_else(|_| "daemon_gate_ci.json".into());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(path) => artifact = path.clone(),
                None => {
                    eprintln!("daemon gate: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("daemon gate: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let workdir =
        std::env::temp_dir().join(format!("stencilflow-daemon-gate-{}", std::process::id()));
    std::fs::create_dir_all(&workdir).expect("create gate workdir");
    let file = |name: &str| workdir.join(name);

    // Fixture programs and deterministic inputs, staged on disk the same
    // way real traffic arrives.
    let jac_path = file("jacobi.json");
    let step_path = file("stepped.json");
    std::fs::write(&jac_path, JACOBI_JSON).expect("write program");
    std::fs::write(&step_path, STEPPED_JSON).expect("write program");
    let jac_program = ingest::load_program(&jac_path).expect("jacobi parses");
    let step_program = ingest::load_program(&step_path).expect("stepped program parses");
    let jac_inputs = generate_inputs(&jac_program, 42);
    let step_inputs = generate_inputs(&step_program, 7);
    let jac_grids = file("jacobi.sfgs");
    let step_grids = file("stepped.sfgs");
    ingest::write_grid_set(&jac_grids, jac_inputs.clone().into_iter()).expect("write grids");
    ingest::write_grid_set(&step_grids, step_inputs.clone().into_iter()).expect("write grids");

    let tier_cache = file("tier_cache.json");
    let _ = std::fs::remove_file(&tier_cache);
    let config = || {
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(2))
            .with_queue_capacity(32)
            .with_batch_size(2)
            .with_max_job_cells(1_000_000)
            .with_default_soft_deadline(Duration::from_secs(1))
            .with_tenant_quota("greedy", TenantQuota::new().with_cell_budget(10))
    };
    let options = || {
        DaemonLoopOptions::new()
            .with_config(config())
            .with_tier_cache(&tier_cache)
    };

    // ---- Pass 1: seeded chaos traffic with a mid-stream shutdown. ----
    let out1 = file("out1.sfgs");
    let out2 = file("out2.sfgs");
    let submit = |id: &str, tenant: &str, program: &Path, grids: &Path| {
        vec![
            ("op", s("submit")),
            ("id", s(id)),
            ("tenant", s(tenant)),
            ("program", path_json(program)),
            ("grids", path_json(grids)),
        ]
    };
    let mut script = String::new();
    let mut fields = submit("norm-1", "acme", &jac_path, &jac_grids);
    fields.push(("out", path_json(&out1)));
    script.push_str(&line(fields));
    let mut fields = submit("step-1", "acme", &step_path, &step_grids);
    fields.push(("steps", Json::Number(3.0)));
    fields.push(("out", path_json(&out2)));
    script.push_str(&line(fields));
    let mut fields = submit("poison-1", "chaos", &jac_path, &jac_grids);
    fields.push(("fault", s("poison")));
    script.push_str(&line(fields));
    script.push_str(&line(submit("greedy-1", "greedy", &jac_path, &jac_grids)));
    let mut fields = submit("late-1", "acme", &jac_path, &jac_grids);
    fields.push(("hard_timeout_ms", Json::Number(0.0)));
    script.push_str(&line(fields));
    // Duplicate id while norm-1 is still queued.
    script.push_str(&line(submit("norm-1", "acme", &jac_path, &jac_grids)));
    script.push_str(&line(vec![("op", s("stats"))]));
    // Mid-stream shutdown: drain now, then keep talking.
    script.push_str(&line(vec![("op", s("drain"))]));
    script.push_str(&line(submit("tail-1", "acme", &jac_path, &jac_grids)));
    script.push_str("this line is not JSON\n");

    let mut output = Vec::new();
    let summary1 = run_loop(Cursor::new(script), &mut output, options())
        .expect("the daemon loop never aborts on in-band traffic");
    let responses = parse_responses(&output);

    // Admission decisions, in submission order.
    let submits: Vec<&Json> = responses.iter().filter(|r| op_is(r, "submit")).collect();
    check(submits.len() == 7, "expected 7 submit responses");
    let ok = |r: &Json| r.get("ok").and_then(Json::as_bool).unwrap_or(false);
    check(ok(submits[0]), "norm-1 admitted");
    check(ok(submits[1]), "step-1 admitted");
    check(ok(submits[2]), "poison-1 admitted");
    check(
        !ok(submits[3]) && field_str(submits[3], "code") == "SF0403",
        "greedy-1 rejected over budget (SF0403)",
    );
    check(ok(submits[4]), "late-1 admitted");
    check(
        !ok(submits[5]) && field_str(submits[5], "code") == "SF0405",
        "duplicate norm-1 rejected (SF0405)",
    );
    check(
        !ok(submits[6]) && field_str(submits[6], "code") == "SF0406",
        "post-drain tail-1 rejected (SF0406)",
    );
    check(
        responses.iter().any(|r| op_is(r, "error")),
        "the malformed line produced an error response",
    );

    // Every admitted job settled, with the right structured outcome.
    let norm = outcome_for(&responses, "norm-1");
    check(field_str(norm, "status") == "done", "norm-1 completed");
    let step = outcome_for(&responses, "step-1");
    check(field_str(step, "status") == "done", "step-1 completed");
    let poison = outcome_for(&responses, "poison-1");
    check(
        field_str(poison, "status") == "panicked" && field_str(poison, "code") == "SF0409",
        "poison-1 isolated as panicked (SF0409)",
    );
    let late = outcome_for(&responses, "late-1");
    check(
        field_str(late, "status") == "cancelled" && field_str(late, "code") == "SF0407",
        "late-1 cancelled by hard timeout (SF0407)",
    );
    for drain in responses.iter().filter(|r| op_is(r, "drain")) {
        check(
            drain.get("clean").and_then(Json::as_bool) == Some(true),
            "every drain was clean",
        );
    }
    check(summary1.drain.clean, "pass 1 drain clean");
    check(
        summary1.stats.admitted == 4 && summary1.stats.rejected == 3,
        "pass 1 admission counts (4 admitted, 3 rejected)",
    );
    check(
        summary1.stats.completed == 2
            && summary1.stats.panicked == 1
            && summary1.stats.cancelled == 1,
        "pass 1 outcome counts (2 done, 1 panicked, 1 cancelled)",
    );

    // Bitwise recheck against the reference executor, recomputed here.
    let plain = ReferenceExecutor::new();
    let interpreted = plain
        .run_interpreted(&jac_program, &jac_inputs)
        .expect("interpreter baseline");
    let expected: Vec<(String, Grid)> = jac_program
        .outputs()
        .iter()
        .map(|name| (name.clone(), interpreted.field(name).unwrap().clone()))
        .collect();
    check_bitwise("out1 (vs interpreter)", &out1, &expected);
    let stepped_baseline = plain
        .run_steps(&step_program, &step_inputs, 3)
        .expect("stepped baseline");
    let expected: Vec<(String, Grid)> = step_program
        .outputs()
        .iter()
        .map(|name| (name.clone(), stepped_baseline.field(name).unwrap().clone()))
        .collect();
    check_bitwise("out2 (vs reference stepper)", &out2, &expected);
    check(tier_cache.exists(), "tier decisions persisted on exit");

    // ---- Pass 2: restart against the persisted tier cache. ----
    let out1b = file("out1b.sfgs");
    let out2b = file("out2b.sfgs");
    let mut script = String::new();
    let mut fields = submit("norm-1", "acme", &jac_path, &jac_grids);
    fields.push(("out", path_json(&out1b)));
    script.push_str(&line(fields));
    let mut fields = submit("step-1", "acme", &step_path, &step_grids);
    fields.push(("steps", Json::Number(3.0)));
    fields.push(("out", path_json(&out2b)));
    script.push_str(&line(fields));
    script.push_str(&line(vec![("op", s("drain"))]));
    script.push_str(&line(vec![("op", s("stats"))]));

    let mut output = Vec::new();
    let summary2 = run_loop(Cursor::new(script), &mut output, options())
        .expect("the restarted daemon loop runs");
    let responses = parse_responses(&output);
    let cache = summary2.cache.unwrap_or_else(|| {
        eprintln!("daemon gate: FAIL: restart did not load the tier cache");
        std::process::exit(1);
    });
    check(
        !cache.stale,
        "persisted tier decisions match this build's salt",
    );
    check(
        cache.loaded >= 2,
        "restart reloaded the single and stepped tier decisions",
    );
    let stats = responses
        .iter()
        .find(|r| op_is(r, "stats"))
        .expect("stats response present");
    let measurements = stats
        .get("serve")
        .and_then(|s| s.get("tier_measurements"))
        .and_then(Json::as_usize);
    check(
        measurements == Some(0),
        "restart re-measured nothing (0 tier measurements)",
    );
    check(
        field_str(outcome_for(&responses, "norm-1"), "status") == "done"
            && field_str(outcome_for(&responses, "step-1"), "status") == "done",
        "pass 2 jobs completed",
    );
    let same = |a: &Path, b: &Path| std::fs::read(a).ok() == std::fs::read(b).ok();
    check(
        same(&out1, &out1b) && same(&out2, &out2b),
        "restart outputs byte-identical to pass 1",
    );

    // ---- Stats artifact next to the bench CI JSON. ----
    let rejects: Vec<(String, Json)> = summary1
        .stats
        .rejects_by_code
        .iter()
        .map(|(code, count)| (code.to_string(), Json::Number(*count as f64)))
        .collect();
    let report = obj(vec![
        ("gate", s("daemon")),
        (
            "pass1",
            obj(vec![
                ("submitted", Json::Number(summary1.stats.submitted as f64)),
                ("admitted", Json::Number(summary1.stats.admitted as f64)),
                ("rejected", Json::Number(summary1.stats.rejected as f64)),
                ("rejects", Json::Object(rejects)),
                ("completed", Json::Number(summary1.stats.completed as f64)),
                ("panicked", Json::Number(summary1.stats.panicked as f64)),
                ("cancelled", Json::Number(summary1.stats.cancelled as f64)),
                ("drain_clean", Json::Bool(summary1.drain.clean)),
            ]),
        ),
        (
            "pass2",
            obj(vec![
                ("tier_cache_loaded", Json::Number(cache.loaded as f64)),
                ("tier_cache_stale", Json::Bool(cache.stale)),
                ("tier_measurements", Json::Number(0.0)),
                ("restart_bitwise_identical", Json::Bool(true)),
            ]),
        ),
    ]);
    let mut text = report.to_string_pretty();
    text.push('\n');
    std::fs::write(&artifact, text).unwrap_or_else(|e| {
        eprintln!("daemon gate: FAIL: writing {artifact}: {e}");
        std::process::exit(1);
    });
    println!(
        "daemon gate: PASS (4 admitted: 2 done, 1 panicked, 1 cancelled; \
         3 rejected: SF0403/SF0405/SF0406; restart reused {} tier decisions, 0 re-measurements; \
         stats -> {artifact})",
        cache.loaded
    );
}
