//! Command-line driver for the service layer.
//!
//! * `stencilflow run PROGRAM.json GRIDS [--steps N] [--tier TIER]
//!   [--out OUT.sfgs]` — execute one job. The grid file may be the
//!   compact `SFGS` binary framing or the text escape hatch
//!   (auto-detected); outputs are written as a binary grid set when
//!   `--out` is given, otherwise a per-output summary is printed.
//! * `stencilflow serve MANIFEST.json [--workers N] [--tier TIER]
//!   [--repeat N]` — submit a whole manifest of jobs to the batch
//!   executor and print aggregate throughput, latency, tier, and
//!   allocation statistics. The manifest is a JSON array of
//!   `{"program": ..., "grids": ..., "steps": ..., "tier": ...,
//!   "count": ...}` objects with paths relative to the manifest.
//! * `stencilflow daemon [--workers N] [--queue N] [--batch N]
//!   [--max-job-cells N] [--hard-timeout-ms N] [--drain-timeout-ms N]
//!   [--tier-cache PATH]` — the long-lived resilient serving loop:
//!   JSON-lines requests on stdin, responses on stdout (see the
//!   `stencilflow::daemon` module docs for the protocol). End of input
//!   drains gracefully; `--tier-cache` persists measured tier decisions
//!   across restarts.
//!
//! Exit codes: 0 on success, 1 when any job fails (for `daemon`: when
//! the drain was not clean), 2 on usage errors.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use stencilflow::daemon::{self, DaemonLoopOptions};
use stencilflow::ingest::{self, ManifestJob};
use stencilflow::reference::{
    DaemonConfig, JobOutcome, JobSpec, ServeConfig, ServeExecutor, Tier, TierPolicy,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  stencilflow run PROGRAM.json GRIDS [--steps N] [--tier TIER] [--out OUT.sfgs]\n  \
         stencilflow serve MANIFEST.json [--workers N] [--tier TIER] [--repeat N]\n  \
         stencilflow daemon [--workers N] [--queue N] [--batch N] [--max-job-cells N]\n                     \
         [--hard-timeout-ms N] [--drain-timeout-ms N] [--tier-cache PATH]\n\
         tiers: simd, fused, jit (default: automatic selection)"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn parse_tier(name: &str) -> Tier {
    name.parse()
        .unwrap_or_else(|e| -> Tier { fail(format_args!("--tier {name}: {e}")) })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_command(&args[1..]),
        Some("serve") => serve_command(&args[1..]),
        Some("daemon") => daemon_command(&args[1..]),
        _ => usage(),
    }
}

fn daemon_command(args: &[String]) {
    daemon::quiet_injected_panics();
    let mut workers: Option<usize> = None;
    let mut queue: Option<usize> = None;
    let mut batch: Option<usize> = None;
    let mut max_job_cells: Option<u64> = None;
    let mut hard_timeout_ms: Option<u64> = None;
    let mut drain_timeout_ms: Option<u64> = None;
    let mut tier_cache: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match it.next().and_then(|v| v.parse().ok()).filter(|&w| w >= 1) {
                Some(w) => workers = Some(w),
                None => fail("--workers needs a positive integer"),
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()).filter(|&q| q >= 1) {
                Some(q) => queue = Some(q),
                None => fail("--queue needs a positive integer"),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(b) => batch = Some(b),
                None => fail("--batch needs an integer (0 = per-worker default)"),
            },
            "--max-job-cells" => match it.next().and_then(|v| v.parse().ok()) {
                Some(c) => max_job_cells = Some(c),
                None => fail("--max-job-cells needs an integer"),
            },
            "--hard-timeout-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => hard_timeout_ms = Some(t),
                None => fail("--hard-timeout-ms needs an integer"),
            },
            "--drain-timeout-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => drain_timeout_ms = Some(t),
                None => fail("--drain-timeout-ms needs an integer"),
            },
            "--tier-cache" => match it.next() {
                Some(path) => tier_cache = Some(PathBuf::from(path)),
                None => fail("--tier-cache needs a path"),
            },
            _ => usage(),
        }
    }
    let mut serve = ServeConfig::new();
    if let Some(workers) = workers {
        serve = serve.with_workers(workers);
    }
    let mut config = DaemonConfig::new().with_serve(serve);
    if let Some(queue) = queue {
        config = config.with_queue_capacity(queue);
    }
    if let Some(batch) = batch {
        config = config.with_batch_size(batch);
    }
    if let Some(limit) = max_job_cells {
        config = config.with_max_job_cells(limit);
    }
    if let Some(ms) = hard_timeout_ms {
        config = config.with_default_hard_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = drain_timeout_ms {
        config = config.with_drain_timeout(std::time::Duration::from_millis(ms));
    }
    let mut options = DaemonLoopOptions::new().with_config(config);
    if let Some(path) = tier_cache {
        options = options.with_tier_cache(path);
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let summary = daemon::run_loop(stdin.lock(), &mut stdout.lock(), options)
        .unwrap_or_else(|e| fail(format_args!("daemon I/O: {e}")));
    eprintln!(
        "daemon: {} submitted, {} admitted, {} rejected; {} completed, {} failed, \
         {} panicked, {} cancelled; drain {}",
        summary.stats.submitted,
        summary.stats.admitted,
        summary.stats.rejected,
        summary.stats.completed,
        summary.stats.failed,
        summary.stats.panicked,
        summary.stats.cancelled,
        if summary.drain.clean {
            "clean"
        } else {
            "unclean"
        },
    );
    if !summary.drain.clean {
        std::process::exit(1);
    }
}

fn run_command(args: &[String]) {
    let mut positional: Vec<&str> = Vec::new();
    let mut steps = 1usize;
    let mut tier: Option<Tier> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--steps" => match it.next().and_then(|v| v.parse().ok()).filter(|&s| s >= 1) {
                Some(s) => steps = s,
                None => fail("--steps needs a positive integer"),
            },
            "--tier" => match it.next() {
                Some(name) => tier = Some(parse_tier(name)),
                None => fail("--tier needs a tier name"),
            },
            "--out" => match it.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => fail("--out needs a path"),
            },
            flag if flag.starts_with('-') => usage(),
            p => positional.push(p),
        }
    }
    let [program_path, grids_path] = positional[..] else {
        usage();
    };
    let program = ingest::load_program(Path::new(program_path)).unwrap_or_else(|e| fail(e));
    let inputs = ingest::load_grid_set(Path::new(grids_path)).unwrap_or_else(|e| fail(e));
    let serve = ServeExecutor::new(ServeConfig::new().with_workers(1));
    let mut job = JobSpec::new(program, std::sync::Arc::new(inputs)).with_steps(steps);
    if let Some(tier) = tier {
        job = job.with_tier(tier);
    }
    let outcome = serve.run_one(job);
    let result = outcome.result.unwrap_or_else(|e| fail(e));
    println!(
        "tier: {}  latency: {:.3} ms  cells: {}",
        outcome.tier,
        outcome.latency.as_secs_f64() * 1e3,
        result.cells_evaluated()
    );
    match out {
        Some(path) => {
            let grids = result
                .fields()
                .map(|(name, grid)| (name.to_string(), grid.clone()))
                .collect::<Vec<_>>();
            ingest::write_grid_set(&path, grids.into_iter()).unwrap_or_else(|e| fail(e));
            println!("wrote {}", path.display());
        }
        None => {
            for (name, grid) in result.fields() {
                let slice = grid.as_slice();
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in slice {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                println!(
                    "  {name}: shape {:?}  min {lo:.6}  max {hi:.6}",
                    grid.shape()
                );
            }
        }
    }
    serve.recycle(result);
}

fn serve_command(args: &[String]) {
    let mut manifest_path: Option<&str> = None;
    let mut workers: Option<usize> = None;
    let mut tier: Option<Tier> = None;
    let mut repeat = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match it.next().and_then(|v| v.parse().ok()).filter(|&w| w >= 1) {
                Some(w) => workers = Some(w),
                None => fail("--workers needs a positive integer"),
            },
            "--tier" => match it.next() {
                Some(name) => tier = Some(parse_tier(name)),
                None => fail("--tier needs a tier name"),
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()).filter(|&r| r >= 1) {
                Some(r) => repeat = r,
                None => fail("--repeat needs a positive integer"),
            },
            flag if flag.starts_with('-') => usage(),
            p if manifest_path.is_none() => manifest_path = Some(p),
            _ => usage(),
        }
    }
    let Some(manifest_path) = manifest_path else {
        usage();
    };
    let manifest = ingest::load_manifest(Path::new(manifest_path)).unwrap_or_else(|e| fail(e));
    if manifest.is_empty() {
        fail("manifest contains no jobs");
    }
    let jobs = expand_manifest(&manifest, repeat);
    let mut config = ServeConfig::new();
    if let Some(workers) = workers {
        config = config.with_workers(workers);
    }
    if let Some(tier) = tier {
        config = config.with_tier_policy(TierPolicy::Fixed(tier));
    }
    let serve = ServeExecutor::new(config);
    let tally = Mutex::new(Tally::default());
    let started = Instant::now();
    serve.run_batch_with(jobs.clone(), |outcome: JobOutcome| {
        let (cells, error) = match outcome.result {
            Ok(result) => {
                let cells = result.cells_evaluated();
                serve.recycle(result);
                (cells, None)
            }
            Err(e) => (0, Some(format!("job {}: {e}", outcome.job))),
        };
        let mut tally = tally.lock().unwrap();
        tally.cells += cells;
        tally.latencies_ms.push(outcome.latency.as_secs_f64() * 1e3);
        if let Some(error) = error {
            tally.errors.push(error);
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let tally = tally.into_inner().unwrap();
    let stats = serve.stats();
    println!(
        "{} jobs on {} workers in {elapsed:.3} s  ({:.2} Mcells/s)",
        jobs.len(),
        serve.workers(),
        tally.cells as f64 / elapsed / 1e6
    );
    let mut latencies = tally.latencies_ms;
    latencies.sort_by(f64::total_cmp);
    if !latencies.is_empty() {
        let pick = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
        println!(
            "latency ms: p50 {:.3}  p99 {:.3}  max {:.3}",
            pick(0.50),
            pick(0.99),
            latencies[latencies.len() - 1]
        );
    }
    println!(
        "compiles: {}  tier measurements: {}  steals: {}  pool misses: {}  mask misses: {}",
        stats.compiles, stats.tier_measurements, stats.steals, stats.pool_misses, stats.mask_misses
    );
    for choice in serve.tier_choices() {
        println!(
            "tier choice: {} ({}{}) -> {}",
            choice.program,
            &choice.fingerprint[..12.min(choice.fingerprint.len())],
            if choice.stepped { ", stepped" } else { "" },
            choice.tier
        );
    }
    if !tally.errors.is_empty() {
        for error in &tally.errors {
            eprintln!("error: {error}");
        }
        std::process::exit(1);
    }
}

#[derive(Default)]
struct Tally {
    cells: usize,
    latencies_ms: Vec<f64>,
    errors: Vec<String>,
}

/// Expand manifest entries into the submitted job list: each entry's
/// `count` repeats, the whole list `repeat` times, interleaved by
/// round-robin so heterogeneous entries share the queue fairly.
fn expand_manifest(manifest: &[ManifestJob], repeat: usize) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for _ in 0..repeat {
        let mut remaining: Vec<usize> = manifest.iter().map(|m| m.count).collect();
        loop {
            let mut any = false;
            for (entry, left) in manifest.iter().zip(remaining.iter_mut()) {
                if *left == 0 {
                    continue;
                }
                *left -= 1;
                any = true;
                let mut job = JobSpec::new(entry.program.clone(), entry.inputs.clone())
                    .with_steps(entry.steps);
                if let Some(name) = &entry.tier {
                    job = job.with_tier(parse_tier(name));
                }
                jobs.push(job);
            }
            if !any {
                break;
            }
        }
    }
    jobs
}
