//! Property tests for the daemon's wire boundary: [`daemon::parse_request`]
//! must be total over arbitrary input (every failure a structured message,
//! never a panic), and the ingest loop itself must survive malformed
//! lines, duplicate ids, and extent-overflow programs — shedding each with
//! a structured response instead of aborting.

use std::io::Cursor;
use std::path::Path;
use std::time::Duration;

use proptest::prelude::*;
use stencilflow::daemon::{self, DaemonLoopOptions, Request};
use stencilflow::ingest;
use stencilflow::reference::{generate_inputs, DaemonConfig, ServeConfig};
use stencilflow_json::Json;

// ---------------------------------------------------------------------
// Parser totality.
// ---------------------------------------------------------------------

/// A JSON-ish alphabet plus noise: biased so random strings exercise the
/// parser's structure handling, not just its first-byte rejection.
fn random_line(rng: &mut TestRng) -> String {
    const ALPHABET: &[u8] = br#"{}[]",:truefalsnu0123456789.eE+-_ op submit"#;
    let len = rng.below(80) as usize;
    (0..len)
        .map(|_| {
            if rng.below(16) == 0 {
                char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
            } else {
                ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char
            }
        })
        .collect()
}

/// A well-formed submit line all mutations start from.
fn valid_submit_fields() -> Vec<(String, Json)> {
    [
        ("op", Json::String("submit".to_string())),
        ("id", Json::String("job-1".to_string())),
        ("tenant", Json::String("acme".to_string())),
        ("program", Json::String("p.json".to_string())),
        ("grids", Json::String("g.sfgs".to_string())),
        ("steps", Json::Number(2.0)),
        ("soft_deadline_ms", Json::Number(250.0)),
        ("hard_timeout_ms", Json::Number(1000.0)),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

fn render(fields: Vec<(String, Json)>) -> String {
    Json::Object(fields).to_string_compact()
}

/// A hostile number for a field that expects a non-negative finite value.
fn hostile_number(rng: &mut TestRng) -> Json {
    match rng.below(5) {
        0 => Json::Number(f64::NAN),
        1 => Json::Number(f64::INFINITY),
        2 => Json::Number(-1.0),
        3 => Json::Number(1e308),
        _ => Json::Number(-1e308),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte soup: the parser returns, it never panics. (The property is
    /// totality; Ok on an accidentally-valid line is fine.)
    #[test]
    fn parse_request_is_total_over_noise(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("daemon_noise", seed);
        for _ in 0..8 {
            let line = random_line(&mut rng);
            let _ = daemon::parse_request(&line);
        }
    }

    /// Structured mutations of a valid submit: unknown keys, duplicate
    /// keys, wrong types, and hostile numbers must all come back as a
    /// structured error, never a panic and never a silently-mangled
    /// request.
    #[test]
    fn submit_mutations_are_rejected_structurally(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("daemon_mutate", seed);
        for _ in 0..8 {
            let mut fields = valid_submit_fields();
            let which = rng.below(5);
            match which {
                0 => {
                    // Unknown key.
                    fields.push(("surprise".to_string(), Json::Bool(true)));
                }
                1 => {
                    // Duplicate key (last-wins smuggling must be refused).
                    let ix = rng.below(fields.len() as u64) as usize;
                    fields.push(fields[ix].clone());
                }
                2 => {
                    // Wrong type for a string field.
                    let ix = rng.below(5) as usize; // op..grids
                    fields[ix].1 = Json::Array(vec![Json::Number(1.0)]);
                }
                3 => {
                    // Hostile number where a duration/steps belongs.
                    let ix = 5 + rng.below(3) as usize; // steps..hard_timeout_ms
                    fields[ix].1 = hostile_number(&mut rng);
                }
                _ => {
                    // Drop a required field.
                    let ix = rng.below(5) as usize; // op..grids
                    fields.remove(ix);
                }
            }
            let line = render(fields);
            match daemon::parse_request(&line) {
                Err(message) => prop_assert!(!message.is_empty()),
                Ok(_) => prop_assert!(false, "mutation {} accepted: {}", which, line),
            }
        }
    }

    /// The unmutated line parses, as a control for the mutation test.
    #[test]
    fn valid_submit_parses(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("daemon_control", seed);
        let mut fields = valid_submit_fields();
        // Shuffle field order: objects are order-insensitive.
        for i in (1..fields.len()).rev() {
            fields.swap(i, rng.below((i + 1) as u64) as usize);
        }
        match daemon::parse_request(&render(fields)) {
            Ok(Request::Submit(submit)) => {
                prop_assert_eq!(submit.id.as_str(), "job-1");
                prop_assert_eq!(submit.steps, 2);
                prop_assert_eq!(submit.soft_deadline, Some(Duration::from_millis(250)));
                prop_assert_eq!(submit.hard_timeout, Some(Duration::from_secs(1)));
            }
            other => prop_assert!(false, "control line failed: {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------
// The loop survives hostile scripts.
// ---------------------------------------------------------------------

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(label: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!(
            "stencilflow-daemon-fuzz-{label}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("fixture dir");
        Fixture { dir }
    }

    fn write(&self, name: &str, text: &str) -> std::path::PathBuf {
        let path = self.dir.join(name);
        std::fs::write(&path, text).expect("fixture write");
        path
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const SMALL_JSON: &str = r#"{
  "inputs": { "a": {"dtype": "float32", "dims": ["i", "j"]} },
  "outputs": ["b"],
  "shape": [8, 8],
  "program": { "b": "a[i,j] * 2.0" }
}"#;

fn submit_line(id: &str, program: &Path, grids: &Path) -> String {
    render(
        [
            ("op", Json::String("submit".to_string())),
            ("id", Json::String(id.to_string())),
            ("tenant", Json::String("t".to_string())),
            ("program", Json::String(program.display().to_string())),
            ("grids", Json::String(grids.display().to_string())),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

fn run_script(script: String, config: DaemonConfig) -> Vec<Json> {
    let mut output = Vec::new();
    daemon::run_loop(
        Cursor::new(script),
        &mut output,
        DaemonLoopOptions::new().with_config(config),
    )
    .expect("the loop itself never fails on request content");
    String::from_utf8(output)
        .expect("responses are UTF-8")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| stencilflow_json::parse(l).expect("responses are valid JSON"))
        .collect()
}

fn submit_response<'j>(responses: &'j [Json], id: &str) -> &'j Json {
    responses
        .iter()
        .filter(|r| r.get("op").and_then(Json::as_str) == Some("submit"))
        .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no submit response for `{id}`"))
}

#[test]
fn loop_sheds_duplicates_and_malformed_lines_without_aborting() {
    let fixture = Fixture::new("dup");
    let program = fixture.write("p.json", SMALL_JSON);
    let parsed = ingest::load_program(&program).expect("fixture program loads");
    let grids = fixture.dir.join("g.sfgs");
    ingest::write_grid_set(&grids, generate_inputs(&parsed, 11).into_iter())
        .expect("fixture grids write");

    let mut script = String::new();
    script.push_str(&submit_line("dup-1", &program, &grids));
    script.push('\n');
    script.push_str("this is not json\n");
    script.push_str("{\"op\": 42}\n");
    script.push_str(&submit_line("dup-1", &program, &grids));
    script.push('\n');
    script.push_str("{\"op\":\"drain\"}\n");

    let responses = run_script(
        script,
        DaemonConfig::new().with_serve(ServeConfig::new().with_workers(1)),
    );

    let first = submit_response(&responses, "dup-1");
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    let errors: Vec<&Json> = responses
        .iter()
        .filter(|r| r.get("op").and_then(Json::as_str) == Some("error"))
        .collect();
    assert_eq!(errors.len(), 2, "each malformed line earns an error line");
    // The duplicate is the *second* submit response for the same id.
    let dup = responses
        .iter()
        .filter(|r| r.get("op").and_then(Json::as_str) == Some("submit"))
        .filter(|r| r.get("id").and_then(Json::as_str) == Some("dup-1"))
        .nth(1)
        .expect("duplicate submit answered");
    assert_eq!(dup.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(dup.get("code").and_then(Json::as_str), Some("SF0405"));
    // The admitted copy still ran to completion.
    let outcome = responses
        .iter()
        .find(|r| r.get("op").and_then(Json::as_str) == Some("outcome"))
        .expect("admitted job settles");
    assert_eq!(outcome.get("status").and_then(Json::as_str), Some("done"));
    let drain = responses
        .iter()
        .find(|r| r.get("op").and_then(Json::as_str) == Some("drain"))
        .expect("drain report emitted");
    assert_eq!(drain.get("clean").and_then(Json::as_bool), Some(true));
}

#[test]
fn extent_overflow_is_shed_at_admission_before_any_allocation() {
    let fixture = Fixture::new("overflow");
    // ~10^18 cells: must be rejected from the program description alone.
    // If admission tried to allocate first, this test would OOM, not fail.
    let program = fixture.write(
        "huge.json",
        r#"{
  "inputs": { "a": {"dtype": "float32", "dims": ["i", "j"]} },
  "outputs": ["b"],
  "shape": [1000000000, 1000000000],
  "program": { "b": "a[i,j] * 2.0" }
}"#,
    );
    let grids = fixture.write("empty.sfgs", "{}");

    let mut script = submit_line("huge-1", &program, &grids);
    script.push('\n');
    script.push_str("{\"op\":\"drain\"}\n");

    let responses = run_script(
        script,
        DaemonConfig::new()
            .with_serve(ServeConfig::new().with_workers(1))
            .with_max_job_cells(1_000_000),
    );
    let reject = submit_response(&responses, "huge-1");
    assert_eq!(reject.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reject.get("code").and_then(Json::as_str), Some("SF0404"));
    assert!(
        !responses
            .iter()
            .any(|r| r.get("op").and_then(Json::as_str) == Some("outcome")),
        "a shed job must never reach an outcome"
    );
}
