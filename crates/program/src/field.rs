//! Field declarations and iteration-space geometry.

use crate::error::{ProgramError, Result};
use std::fmt;
use stencilflow_expr::DataType;

/// Declaration of one input field of a stencil program.
///
/// A field has a scalar data type and a list of the iteration-space
/// dimensions it spans (in memory order, slowest to fastest). Fields may be
/// lower-dimensional than the iteration space — e.g. a 2D field `["i", "k"]`
/// inside a 3D `["i", "j", "k"]` program — or even zero-dimensional
/// (scalars), in which case `dims` is empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Element data type.
    pub dtype: DataTypeRepr,
    /// The iteration-space dimensions this field spans (may be a subset).
    pub dims: Vec<String>,
}

/// Wrapper around [`DataType`] carrying the JSON wire names (`"float32"`,
/// `"float64"`, ...); conversion to and from JSON lives in [`crate::json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataTypeRepr(pub DataType);

impl From<DataType> for DataTypeRepr {
    fn from(value: DataType) -> Self {
        DataTypeRepr(value)
    }
}

impl FieldDecl {
    /// Create a new field declaration.
    pub fn new(dtype: DataType, dims: &[&str]) -> Self {
        FieldDecl {
            dtype: DataTypeRepr(dtype),
            dims: dims.iter().map(|d| d.to_string()).collect(),
        }
    }

    /// The field's scalar data type.
    pub fn data_type(&self) -> DataType {
        self.dtype.0
    }

    /// Number of dimensions this field spans.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Whether the field is a scalar ("0D") input.
    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }
}

/// The iteration space of a stencil program: named dimensions and their
/// extents.
///
/// Memory order is row-major over the declared dimension order: the *last*
/// dimension is contiguous ("fastest"). All buffer-size computations of §IV
/// flatten offsets with the strides defined here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationSpace {
    /// Dimension names in memory order (slowest first).
    pub dims: Vec<String>,
    /// Extent of each dimension.
    pub shape: Vec<usize>,
}

impl IterationSpace {
    /// Create an iteration space from dimension names and extents.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::InvalidShape`] if the lists are empty, have
    /// mismatched lengths, exceed three dimensions, or contain a zero extent.
    pub fn new(dims: &[&str], shape: &[usize]) -> Result<Self> {
        if dims.is_empty() || shape.is_empty() {
            return Err(ProgramError::InvalidShape {
                message: "iteration space must have at least one dimension".into(),
            });
        }
        if dims.len() != shape.len() {
            return Err(ProgramError::InvalidShape {
                message: format!("{} dimension names but {} extents", dims.len(), shape.len()),
            });
        }
        if dims.len() > 3 {
            return Err(ProgramError::InvalidShape {
                message: "stencil programs support at most 3 dimensions".into(),
            });
        }
        if shape.contains(&0) {
            return Err(ProgramError::InvalidShape {
                message: "dimension extents must be non-zero".into(),
            });
        }
        // Reject shapes whose cell count (or byte size for the widest scalar
        // type) overflows usize: every downstream size computation —
        // `num_cells`, `strides`, `field_bytes` — multiplies these extents
        // and would otherwise overflow. All extents are non-zero here, so
        // guarding the full product also covers every stride suffix product.
        let cells = shape
            .iter()
            .try_fold(1usize, |acc, &extent| acc.checked_mul(extent))
            .and_then(|cells| cells.checked_mul(8).map(|_| cells));
        if cells.is_none() {
            return Err(ProgramError::InvalidShape {
                message: format!(
                    "iteration space shape {shape:?} overflows the addressable \
                     byte count on this platform; split the domain before \
                     building the program"
                ),
            });
        }
        Ok(IterationSpace {
            dims: dims.iter().map(|d| d.to_string()).collect(),
            shape: shape.to_vec(),
        })
    }

    /// Default 3D iteration space with dimensions `i, j, k` (k fastest).
    pub fn default_3d(shape: &[usize; 3]) -> Self {
        IterationSpace::new(&["i", "j", "k"], shape).expect("static shape is valid")
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of cells (product of all extents).
    pub fn num_cells(&self) -> usize {
        self.shape.iter().product()
    }

    /// Extent of the innermost (fastest, contiguous) dimension.
    pub fn inner_extent(&self) -> usize {
        *self.shape.last().expect("iteration space is never empty")
    }

    /// Position of a named dimension, if it exists.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d == name)
    }

    /// Row-major strides (elements) of each dimension, fastest dimension
    /// having stride 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.shape.len()];
        for d in (0..self.shape.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.shape[d + 1];
        }
        strides
    }

    /// Strides restricted to a subset of dimensions (for lower-dimensional
    /// fields): the stride of each listed dimension within a dense array
    /// spanning only those dimensions.
    pub fn strides_for_dims(&self, dims: &[String]) -> Vec<usize> {
        let extents: Vec<usize> = dims
            .iter()
            .map(|d| self.dim_index(d).map(|ix| self.shape[ix]).unwrap_or(1))
            .collect();
        let mut strides = vec![1usize; extents.len()];
        for d in (0..extents.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * extents[d + 1];
        }
        strides
    }

    /// Flatten a full-rank offset vector into a signed memory-order distance
    /// (elements), i.e. the distance between a cell and the cell at the given
    /// offsets in a row-major layout of the full iteration space.
    ///
    /// This is the quantity the internal-buffer analysis (§IV-A) is built on:
    /// the buffer for a field must span the distance between the lowest and
    /// highest flattened access offset.
    pub fn linearize_offset(&self, offsets: &[i64]) -> i64 {
        let strides = self.strides();
        offsets
            .iter()
            .zip(strides.iter())
            .map(|(&off, &stride)| off * stride as i64)
            .sum()
    }

    /// Convert a multi-dimensional index into a flat row-major index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds; callers
    /// (reference executor, simulator) always iterate within the shape.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let strides = self.strides();
        index
            .iter()
            .zip(strides.iter())
            .zip(self.shape.iter())
            .map(|((&ix, &stride), &extent)| {
                assert!(ix < extent, "index {ix} out of bounds for extent {extent}");
                ix * stride
            })
            .sum()
    }

    /// Iterate over all multi-dimensional indices of the space in row-major
    /// order.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            shape: self.shape.clone(),
            next: Some(vec![0; self.shape.len()]),
        }
    }

    /// Bytes occupied by one full-domain field of the given data type.
    pub fn field_bytes(&self, dtype: DataType) -> usize {
        self.num_cells() * dtype.size_bytes()
    }
}

impl fmt::Display for IterationSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .dims
            .iter()
            .zip(self.shape.iter())
            .map(|(d, s)| format!("{d}={s}"))
            .collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

/// Row-major iterator over all indices of an [`IterationSpace`].
#[derive(Debug, Clone)]
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Advance (row-major: last dimension fastest).
        let mut next = current.clone();
        let mut dim = self.shape.len();
        loop {
            if dim == 0 {
                self.next = None;
                break;
            }
            dim -= 1;
            next[dim] += 1;
            if next[dim] < self.shape[dim] {
                self.next = Some(next);
                break;
            }
            next[dim] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_shapes() {
        assert!(IterationSpace::new(&[], &[]).is_err());
        assert!(IterationSpace::new(&["i"], &[1, 2]).is_err());
        assert!(IterationSpace::new(&["i", "j", "k", "l"], &[1, 1, 1, 1]).is_err());
        assert!(IterationSpace::new(&["i"], &[0]).is_err());
    }

    #[test]
    fn rejects_overflowing_cell_counts() {
        let huge = 1usize << 40;
        let err = IterationSpace::new(&["i", "j", "k"], &[huge, huge, huge]).unwrap_err();
        assert!(err.to_string().contains("overflows"));
        // The cell count fits but the byte size (×8) does not.
        assert!(IterationSpace::new(&["i", "j"], &[1 << 32, 1 << 31]).is_err());
        assert!(IterationSpace::new(&["i"], &[usize::MAX]).is_err());
    }

    #[test]
    fn strides_are_row_major() {
        let space = IterationSpace::new(&["k", "j", "i"], &[4, 8, 16]).unwrap();
        assert_eq!(space.strides(), vec![128, 16, 1]);
        assert_eq!(space.inner_extent(), 16);
        assert_eq!(space.num_cells(), 512);
    }

    #[test]
    fn linearize_matches_paper_examples() {
        // Paper §IV-A: in a 3D iteration space of shape {K, J, I}, accesses
        // a[0,1,0] and a[0,-1,0] are two rows apart (2I elements), while
        // b[0,0,0] and b[1,0,0] are two slices apart (2IJ elements).
        let (k, j, i) = (32, 16, 8);
        let space = IterationSpace::new(&["k", "j", "i"], &[k, j, i]).unwrap();
        let d_rows = space.linearize_offset(&[0, 1, 0]) - space.linearize_offset(&[0, -1, 0]);
        assert_eq!(d_rows, 2 * i as i64);
        let d_slices = space.linearize_offset(&[1, 0, 0]) - space.linearize_offset(&[0, 0, 0]);
        assert_eq!(d_slices, (i * j) as i64);
    }

    #[test]
    fn flat_index_round_trips_with_indices_iterator() {
        let space = IterationSpace::new(&["i", "j"], &[3, 4]).unwrap();
        let all: Vec<Vec<usize>> = space.indices().collect();
        assert_eq!(all.len(), 12);
        for (flat, index) in all.iter().enumerate() {
            assert_eq!(space.flat_index(index), flat);
        }
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[11], vec![2, 3]);
    }

    #[test]
    fn strides_for_subset_dims() {
        let space = IterationSpace::new(&["i", "j", "k"], &[10, 20, 30]).unwrap();
        // A 2D field over (i, k) is dense over those dims only.
        assert_eq!(
            space.strides_for_dims(&["i".into(), "k".into()]),
            vec![30, 1]
        );
        assert_eq!(space.strides_for_dims(&["j".into()]), vec![1]);
    }

    #[test]
    fn field_decl_basics() {
        let f = FieldDecl::new(DataType::Float32, &["i", "j", "k"]);
        assert_eq!(f.rank(), 3);
        assert!(!f.is_scalar());
        assert_eq!(f.data_type(), DataType::Float32);
        let s = FieldDecl::new(DataType::Float64, &[]);
        assert!(s.is_scalar());
    }

    #[test]
    fn field_bytes() {
        let space = IterationSpace::default_3d(&[128, 128, 80]);
        assert_eq!(space.field_bytes(DataType::Float32), 128 * 128 * 80 * 4);
    }

    #[test]
    fn display_shows_dims() {
        let space = IterationSpace::default_3d(&[2, 3, 4]);
        assert_eq!(space.to_string(), "[i=2, j=3, k=4]");
    }
}
