//! The stencil dependency DAG.
//!
//! Nodes are input memories, stencil operations, and output memories; edges
//! are data dependencies (a stencil consuming a field produced by an input
//! memory or another stencil). This is the graph of Fig. 2 in the paper, and
//! the structure all buffering and mapping analyses operate on.

use crate::error::{ProgramError, Result};
use crate::program::StencilProgram;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The role of a DAG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Off-chip input memory (one per input field).
    Input,
    /// A stencil operation.
    Stencil,
    /// Off-chip output memory (one per program output).
    Output,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Input => f.write_str("input"),
            NodeKind::Stencil => f.write_str("stencil"),
            NodeKind::Output => f.write_str("output"),
        }
    }
}

/// A node of the stencil DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagNode {
    /// Node name. Inputs and stencils use their program names; output
    /// memories are named `<stencil>__out`.
    pub name: String,
    /// Node role.
    pub kind: NodeKind,
}

/// A directed edge of the stencil DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagEdge {
    /// Producer node name.
    pub from: String,
    /// Consumer node name.
    pub to: String,
    /// The field carried by this edge (the producer's output field).
    pub field: String,
}

/// The stencil dependency graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StencilDag {
    nodes: BTreeMap<String, NodeKind>,
    edges: Vec<DagEdge>,
    successors: BTreeMap<String, Vec<usize>>,
    predecessors: BTreeMap<String, Vec<usize>>,
}

impl StencilDag {
    /// Name used for the output-memory node of a program output.
    pub fn output_node_name(stencil: &str) -> String {
        format!("{stencil}__out")
    }

    /// Build the DAG of a validated stencil program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnknownField`] if a stencil reads a symbol
    /// that is neither an input nor a stencil.
    pub fn from_program(program: &StencilProgram) -> Result<Self> {
        let mut dag = StencilDag::default();
        for (name, _) in program.inputs() {
            dag.add_node(name, NodeKind::Input);
        }
        for stencil in program.stencils() {
            dag.add_node(&stencil.name, NodeKind::Stencil);
        }
        for stencil in program.stencils() {
            for (field, _) in stencil.accesses.iter() {
                if program.is_input(field) || program.is_stencil(field) {
                    dag.add_edge(field, &stencil.name, field);
                } else {
                    return Err(ProgramError::UnknownField {
                        stencil: stencil.name.clone(),
                        field: field.to_string(),
                    });
                }
            }
        }
        for output in program.outputs() {
            let sink = Self::output_node_name(output);
            dag.add_node(&sink, NodeKind::Output);
            dag.add_edge(output, &sink, output);
        }
        Ok(dag)
    }

    /// Create an empty DAG (used by tests and synthetic-graph tooling).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; re-adding an existing node keeps its original kind.
    pub fn add_node(&mut self, name: &str, kind: NodeKind) {
        self.nodes.entry(name.to_string()).or_insert(kind);
        self.successors.entry(name.to_string()).or_default();
        self.predecessors.entry(name.to_string()).or_default();
    }

    /// Add a directed edge carrying `field` from `from` to `to`. Both nodes
    /// must already exist (or are created as stencil nodes).
    pub fn add_edge(&mut self, from: &str, to: &str, field: &str) {
        self.add_node(from, NodeKind::Stencil);
        self.add_node(to, NodeKind::Stencil);
        let index = self.edges.len();
        self.edges.push(DagEdge {
            from: from.to_string(),
            to: to.to_string(),
            field: field.to_string(),
        });
        self.successors
            .get_mut(from)
            .expect("node added above")
            .push(index);
        self.predecessors
            .get_mut(to)
            .expect("node added above")
            .push(index);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = DagNode> + '_ {
        self.nodes.iter().map(|(name, kind)| DagNode {
            name: name.clone(),
            kind: *kind,
        })
    }

    /// The kind of a node, if it exists.
    pub fn node_kind(&self, name: &str) -> Option<NodeKind> {
        self.nodes.get(name).copied()
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &DagEdge> {
        self.edges.iter()
    }

    /// Whether an edge from `from` to `to` exists.
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.successors
            .get(from)
            .map(|edges| edges.iter().any(|&e| self.edges[e].to == to))
            .unwrap_or(false)
    }

    /// Edges leaving `node`.
    pub fn out_edges(&self, node: &str) -> Vec<&DagEdge> {
        self.successors
            .get(node)
            .map(|edges| edges.iter().map(|&e| &self.edges[e]).collect())
            .unwrap_or_default()
    }

    /// Edges entering `node`.
    pub fn in_edges(&self, node: &str) -> Vec<&DagEdge> {
        self.predecessors
            .get(node)
            .map(|edges| edges.iter().map(|&e| &self.edges[e]).collect())
            .unwrap_or_default()
    }

    /// Names of the direct successors of `node`.
    pub fn successors(&self, node: &str) -> Vec<String> {
        self.out_edges(node).iter().map(|e| e.to.clone()).collect()
    }

    /// Names of the direct predecessors of `node`.
    pub fn predecessors(&self, node: &str) -> Vec<String> {
        self.in_edges(node).iter().map(|e| e.from.clone()).collect()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, node: &str) -> usize {
        self.predecessors.get(node).map(Vec::len).unwrap_or(0)
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: &str) -> usize {
        self.successors.get(node).map(Vec::len).unwrap_or(0)
    }

    /// Total degree (in + out) of a node.
    pub fn degree(&self, node: &str) -> usize {
        self.in_degree(node) + self.out_degree(node)
    }

    /// Source nodes (no predecessors).
    pub fn sources(&self) -> Vec<String> {
        self.nodes
            .keys()
            .filter(|n| self.in_degree(n) == 0)
            .cloned()
            .collect()
    }

    /// Sink nodes (no successors).
    pub fn sinks(&self) -> Vec<String> {
        self.nodes
            .keys()
            .filter(|n| self.out_degree(n) == 0)
            .cloned()
            .collect()
    }

    /// Topological order of all nodes (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Cycle`] if the graph contains a cycle.
    pub fn topological_order(&self) -> Result<Vec<String>> {
        let mut in_degree: BTreeMap<&str, usize> = self
            .nodes
            .keys()
            .map(|n| (n.as_str(), self.in_degree(n)))
            .collect();
        let mut queue: VecDeque<&str> = in_degree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(node) = queue.pop_front() {
            order.push(node.to_string());
            for edge in self.out_edges(node) {
                let entry = in_degree.get_mut(edge.to.as_str()).expect("node exists");
                *entry -= 1;
                if *entry == 0 {
                    queue.push_back(edge.to.as_str());
                }
            }
        }
        if order.len() != self.nodes.len() {
            let stuck = self
                .nodes
                .keys()
                .find(|n| !order.contains(n))
                .cloned()
                .unwrap_or_default();
            return Err(ProgramError::Cycle { node: stuck });
        }
        Ok(order)
    }

    /// All nodes reachable from `start` (excluding `start` itself unless it
    /// lies on a cycle).
    pub fn reachable_from(&self, start: &str) -> BTreeSet<String> {
        let mut visited = BTreeSet::new();
        let mut stack: Vec<String> = self.successors(start);
        while let Some(node) = stack.pop() {
            if visited.insert(node.clone()) {
                stack.extend(self.successors(&node));
            }
        }
        visited
    }

    /// Whether there is more than one distinct directed path from `from` to
    /// `to`.
    ///
    /// Reconvergent paths are exactly the situation in which insufficient
    /// channel capacities can deadlock the design (Fig. 4): data flowing
    /// along the short path must be buffered until the long path catches up.
    pub fn has_reconvergent_paths(&self, from: &str, to: &str) -> bool {
        self.count_paths(from, to, &mut BTreeMap::new()) > 1
    }

    /// Whether any pair of nodes in the graph has reconvergent paths, i.e.
    /// the DAG is *not* a multi-tree and therefore requires delay buffers for
    /// deadlock freedom (§III-A).
    pub fn requires_delay_buffers(&self) -> bool {
        let nodes: Vec<String> = self.nodes.keys().cloned().collect();
        for from in &nodes {
            for to in &nodes {
                // The memo caches path counts towards a fixed `to`, so it
                // cannot be shared between different targets.
                let mut memo = BTreeMap::new();
                if from != to && self.count_paths(from, to, &mut memo) > 1 {
                    return true;
                }
            }
        }
        false
    }

    fn count_paths(&self, from: &str, to: &str, memo: &mut BTreeMap<String, u64>) -> u64 {
        if from == to {
            return 1;
        }
        if let Some(&cached) = memo.get(from) {
            return cached;
        }
        let total: u64 = self
            .successors(from)
            .iter()
            .map(|next| self.count_paths(next, to, memo).min(1_000_000))
            .sum();
        memo.insert(from.to_string(), total);
        total
    }

    /// Length (in edges) of the longest path ending at `node`.
    pub fn depth_of(&self, node: &str) -> usize {
        let mut memo: BTreeMap<&str, usize> = BTreeMap::new();
        self.depth_rec(node, &mut memo)
    }

    fn depth_rec<'a>(&'a self, node: &'a str, memo: &mut BTreeMap<&'a str, usize>) -> usize {
        if let Some(&d) = memo.get(node) {
            return d;
        }
        let depth = self
            .in_edges(node)
            .iter()
            .map(|e| {
                let from: &str = self
                    .nodes
                    .keys()
                    .find(|k| k.as_str() == e.from)
                    .map(String::as_str)
                    .unwrap_or("");
                1 + self.depth_rec(from, memo)
            })
            .max()
            .unwrap_or(0);
        memo.insert(node, depth);
        depth
    }

    /// The maximum depth over all nodes (the depth of the DAG, which
    /// adversely affects the performance upper bound per §VIII-A).
    pub fn max_depth(&self) -> usize {
        self.nodes
            .keys()
            .map(|n| self.depth_of(n))
            .max()
            .unwrap_or(0)
    }
}

/// Per-edge access footprints of a stencil program over the
/// **iteration-space dimensions**.
///
/// For every `(consumer stencil, consumed field)` pair this records the
/// per-space-dimension `(min, max)` offset extent of the consumer's
/// accesses to that field — the halo the consumer needs around any region
/// of the producer. This is the geometric core of the paper's buffering
/// analysis (§IV) expressed in iteration-space coordinates, and it drives
/// the reference executor's tile-fused tier: a tile of a consumer's output
/// requires each producer over the tile *dilated* by this footprint, and
/// chaining the dilation along the DAG yields the per-stage halo growth of
/// a fused tile sweep.
///
/// Dimensions a field access does not index contribute `(0, 0)` (reading a
/// lower-dimensional field broadcasts along the missing dimensions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessFootprints {
    /// `(consumer stencil, field)` → per-space-dimension offset extents.
    extents: BTreeMap<(String, String), Vec<(i64, i64)>>,
    rank: usize,
}

impl AccessFootprints {
    /// Compute the footprints of every access edge of `program`.
    pub fn of_program(program: &StencilProgram) -> Self {
        let space = program.space();
        let rank = space.rank();
        let mut extents: BTreeMap<(String, String), Vec<(i64, i64)>> = BTreeMap::new();
        for stencil in program.stencils() {
            for (field, info) in stencil.accesses.iter() {
                if info.index_vars.is_empty() {
                    // Scalar symbol: no geometry, no footprint edge.
                    continue;
                }
                let entry = extents
                    .entry((stencil.name.clone(), field.to_string()))
                    .or_insert_with(|| vec![(0, 0); rank]);
                for offsets in &info.offsets {
                    for (var, &off) in info.index_vars.iter().zip(offsets.iter()) {
                        if let Some(dim) = space.dim_index(var) {
                            entry[dim].0 = entry[dim].0.min(off);
                            entry[dim].1 = entry[dim].1.max(off);
                        }
                    }
                }
            }
        }
        AccessFootprints { extents, rank }
    }

    /// Iteration-space rank the footprints are expressed in.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The `(min, max)` offset extent per space dimension of `consumer`'s
    /// accesses to `field`, or `None` if the consumer does not read it.
    pub fn extent(&self, consumer: &str, field: &str) -> Option<&[(i64, i64)]> {
        self.extents
            .get(&(consumer.to_string(), field.to_string()))
            .map(Vec::as_slice)
    }

    /// Iterate over every `(consumer, field)` edge with its extents.
    pub fn edges(&self) -> impl Iterator<Item = (&str, &str, &[(i64, i64)])> {
        self.extents
            .iter()
            .map(|((consumer, field), ext)| (consumer.as_str(), field.as_str(), ext.as_slice()))
    }

    /// All consumers of `field` with their extents.
    pub fn consumers_of<'a>(
        &'a self,
        field: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a [(i64, i64)])> + 'a {
        self.extents.iter().filter_map(move |((consumer, f), ext)| {
            (f == field).then_some((consumer.as_str(), ext.as_slice()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 4 of the paper: A feeds both B and C, B feeds C.
    fn fork_join() -> StencilDag {
        let mut dag = StencilDag::new();
        dag.add_node("in", NodeKind::Input);
        dag.add_node("A", NodeKind::Stencil);
        dag.add_node("B", NodeKind::Stencil);
        dag.add_node("C", NodeKind::Stencil);
        dag.add_edge("in", "A", "in");
        dag.add_edge("A", "B", "A");
        dag.add_edge("A", "C", "A");
        dag.add_edge("B", "C", "B");
        dag
    }

    #[test]
    fn degrees_and_queries() {
        let dag = fork_join();
        assert_eq!(dag.node_count(), 4);
        assert_eq!(dag.edge_count(), 4);
        assert_eq!(dag.in_degree("C"), 2);
        assert_eq!(dag.out_degree("A"), 2);
        assert_eq!(dag.degree("A"), 3);
        assert_eq!(dag.sources(), vec!["in".to_string()]);
        assert_eq!(dag.sinks(), vec!["C".to_string()]);
        assert!(dag.has_edge("A", "B"));
        assert!(!dag.has_edge("B", "A"));
    }

    #[test]
    fn topological_order_is_valid() {
        let dag = fork_join();
        let order = dag.topological_order().unwrap();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("in") < pos("A"));
        assert!(pos("A") < pos("B"));
        assert!(pos("B") < pos("C"));
        assert!(pos("A") < pos("C"));
    }

    #[test]
    fn cycle_detection() {
        let mut dag = StencilDag::new();
        dag.add_edge("a", "b", "a");
        dag.add_edge("b", "c", "b");
        dag.add_edge("c", "a", "c");
        assert!(matches!(
            dag.topological_order(),
            Err(ProgramError::Cycle { .. })
        ));
    }

    #[test]
    fn reconvergent_paths_detected() {
        let dag = fork_join();
        // A -> C directly and A -> B -> C: two paths.
        assert!(dag.has_reconvergent_paths("A", "C"));
        assert!(!dag.has_reconvergent_paths("B", "C"));
        assert!(dag.requires_delay_buffers());
    }

    #[test]
    fn linear_chain_needs_no_delay_buffers() {
        let mut dag = StencilDag::new();
        dag.add_edge("a", "b", "a");
        dag.add_edge("b", "c", "b");
        dag.add_edge("c", "d", "c");
        assert!(!dag.requires_delay_buffers());
    }

    #[test]
    fn depth_and_reachability() {
        let dag = fork_join();
        assert_eq!(dag.depth_of("in"), 0);
        assert_eq!(dag.depth_of("A"), 1);
        assert_eq!(dag.depth_of("C"), 3);
        assert_eq!(dag.max_depth(), 3);
        let reach = dag.reachable_from("A");
        assert!(reach.contains("B"));
        assert!(reach.contains("C"));
        assert!(!reach.contains("in"));
    }

    #[test]
    fn output_node_naming() {
        assert_eq!(StencilDag::output_node_name("b4"), "b4__out");
    }

    #[test]
    fn access_footprints_report_space_dim_extents() {
        use crate::program::StencilProgramBuilder;
        use stencilflow_expr::DataType;
        let program = StencilProgramBuilder::new("fp", &[8, 9, 10])
            .input("u", DataType::Float32, &["i", "j", "k"])
            .input("surf", DataType::Float32, &["i", "k"])
            .scalar("dt", DataType::Float32)
            .stencil(
                "s",
                "u[i-2,j,k] + u[i+1,j,k] + u[i,j,k-3] + surf[i,k+1] * dt",
            )
            .stencil("t", "s[i,j-1,k] + s[i,j+2,k]")
            .output("t")
            .build()
            .unwrap();
        let footprints = AccessFootprints::of_program(&program);
        assert_eq!(footprints.rank(), 3);
        // `s` reads `u` at i in [-2, 1], j exactly 0, k in [-3, 0].
        assert_eq!(
            footprints.extent("s", "u").unwrap(),
            &[(-2, 1), (0, 0), (-3, 0)]
        );
        // The lower-dimensional `surf` access contributes (0,0) for the
        // missing j dimension and its own k offset.
        assert_eq!(
            footprints.extent("s", "surf").unwrap(),
            &[(0, 0), (0, 0), (0, 1)]
        );
        // Scalars never appear as footprint edges.
        assert!(footprints.extent("s", "dt").is_none());
        // `t` reads `s` only along j.
        assert_eq!(
            footprints.extent("t", "s").unwrap(),
            &[(0, 0), (-1, 2), (0, 0)]
        );
        assert!(footprints.extent("t", "u").is_none());
        // Consumers-of view inverts the edge map.
        let consumers: Vec<&str> = footprints.consumers_of("s").map(|(c, _)| c).collect();
        assert_eq!(consumers, vec!["t"]);
        assert_eq!(footprints.edges().count(), 3);
    }
}
