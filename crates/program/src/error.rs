//! Error type for stencil program construction and validation.

use std::fmt;
use stencilflow_expr::ExprError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ProgramError>;

/// Errors raised while building, parsing, or validating a stencil program.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramError {
    /// A stencil's code segment failed to parse.
    Code {
        /// Stencil node name.
        stencil: String,
        /// Underlying expression-language error.
        source: ExprError,
    },
    /// A stencil reads a symbol that is neither an input field nor another
    /// stencil's output.
    UnknownField {
        /// Stencil performing the access.
        stencil: String,
        /// Symbol that could not be resolved.
        field: String,
    },
    /// A field or stencil name was declared more than once.
    DuplicateName {
        /// The name that was declared twice.
        name: String,
    },
    /// A program output references a stencil that does not exist.
    UnknownOutput {
        /// The missing output name.
        name: String,
    },
    /// The dependency graph contains a cycle.
    Cycle {
        /// A node involved in the cycle.
        node: String,
    },
    /// The iteration-space shape is invalid (empty, zero-sized, or more than
    /// three dimensions).
    InvalidShape {
        /// Description of the problem.
        message: String,
    },
    /// A field access uses iteration variables that are not part of the
    /// program's iteration space, or the wrong number of indices.
    InvalidAccess {
        /// Stencil performing the access.
        stencil: String,
        /// Field being accessed.
        field: String,
        /// Description of the problem.
        message: String,
    },
    /// A boundary condition refers to a field the stencil does not read.
    InvalidBoundary {
        /// Stencil the condition is attached to.
        stencil: String,
        /// Field named in the boundary condition.
        field: String,
    },
    /// The program description is structurally invalid (e.g. no outputs).
    Invalid {
        /// Description of the problem.
        message: String,
    },
    /// The JSON input could not be parsed or does not follow the expected
    /// schema.
    Json {
        /// Description of the problem.
        message: String,
    },
    /// A vectorization width that does not divide the innermost dimension.
    InvalidVectorization {
        /// The requested width.
        width: usize,
        /// The innermost dimension extent.
        inner_extent: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Code { stencil, source } => {
                write!(f, "failed to parse code of stencil `{stencil}`: {source}")
            }
            ProgramError::UnknownField { stencil, field } => write!(
                f,
                "stencil `{stencil}` reads `{field}`, which is neither an input nor a stencil"
            ),
            ProgramError::DuplicateName { name } => {
                write!(f, "name `{name}` is declared more than once")
            }
            ProgramError::UnknownOutput { name } => {
                write!(f, "output `{name}` does not correspond to any stencil")
            }
            ProgramError::Cycle { node } => {
                write!(f, "dependency graph contains a cycle through `{node}`")
            }
            ProgramError::InvalidShape { message } => {
                write!(f, "invalid iteration-space shape: {message}")
            }
            ProgramError::InvalidAccess {
                stencil,
                field,
                message,
            } => write!(
                f,
                "invalid access to `{field}` in stencil `{stencil}`: {message}"
            ),
            ProgramError::InvalidBoundary { stencil, field } => write!(
                f,
                "boundary condition on `{field}` in stencil `{stencil}` refers to a field that is not read"
            ),
            ProgramError::Invalid { message } => write!(f, "invalid program: {message}"),
            ProgramError::Json { message } => write!(f, "invalid JSON program description: {message}"),
            ProgramError::InvalidVectorization {
                width,
                inner_extent,
            } => write!(
                f,
                "vectorization width {width} does not divide the innermost dimension extent {inner_extent}"
            ),
        }
    }
}

impl std::error::Error for ProgramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProgramError::Code { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ExprError> for ProgramError {
    fn from(source: ExprError) -> Self {
        ProgramError::Code {
            stencil: String::new(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ProgramError::UnknownField {
            stencil: "b1".into(),
            field: "zz".into(),
        };
        assert!(e.to_string().contains("b1"));
        assert!(e.to_string().contains("zz"));

        let e = ProgramError::InvalidVectorization {
            width: 3,
            inner_extent: 32,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains("32"));
    }

    #[test]
    fn error_trait_source_chain() {
        use std::error::Error;
        let e = ProgramError::Code {
            stencil: "b0".into(),
            source: ExprError::EmptyProgram,
        };
        assert!(e.source().is_some());
        let e = ProgramError::DuplicateName { name: "x".into() };
        assert!(e.source().is_none());
    }
}
