//! A single stencil node of a stencil program.

use crate::boundary::BoundarySpec;
use crate::error::{ProgramError, Result};
use stencilflow_expr::{
    count_ops, critical_path_latency, AccessExtractor, DataType, FieldAccesses, LatencyTable,
    OpCount, Program,
};

/// One stencil operation in the program DAG.
///
/// A stencil node reads one or more input fields (each at one or more
/// constant offsets), evaluates its code segment at every point of the
/// iteration space, and produces exactly one output field named after the
/// node itself (§II).
#[derive(Debug, Clone, PartialEq)]
pub struct StencilNode {
    /// Name of the node; also the name of the field it produces.
    pub name: String,
    /// Original source text of the code segment.
    pub code: String,
    /// Parsed code segment.
    pub program: Program,
    /// Access pattern extracted from the code segment.
    pub accesses: FieldAccesses,
    /// Boundary conditions for this node.
    pub boundary: BoundarySpec,
    /// Output element type.
    pub output_type: DataType,
}

impl StencilNode {
    /// Parse a code segment and build a stencil node.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Code`] if the code segment does not parse.
    pub fn parse(name: &str, code: &str) -> Result<Self> {
        let program =
            stencilflow_expr::parse_program(code).map_err(|source| ProgramError::Code {
                stencil: name.to_string(),
                source,
            })?;
        let accesses = AccessExtractor::extract(&program);
        Ok(StencilNode {
            name: name.to_string(),
            code: code.to_string(),
            program,
            accesses,
            boundary: BoundarySpec::default(),
            output_type: DataType::Float32,
        })
    }

    /// Names of the fields this stencil reads (inputs or other stencils).
    pub fn read_fields(&self) -> Vec<&str> {
        self.accesses.fields().collect()
    }

    /// Whether this stencil reads the given field.
    pub fn reads(&self, field: &str) -> bool {
        self.accesses.contains(field)
    }

    /// Operation counts for one evaluation of this stencil.
    pub fn op_count(&self) -> OpCount {
        count_ops(&self.program)
    }

    /// Critical-path compute latency of this stencil in cycles.
    pub fn compute_latency(&self, table: &LatencyTable) -> u64 {
        critical_path_latency(&self.program, table)
    }

    /// Maximum absolute offset used by any access of this stencil, per
    /// accessed dimension name. Used by validation and by the shrink
    /// boundary handling.
    pub fn max_abs_offset(&self) -> i64 {
        self.accesses
            .iter()
            .flat_map(|(_, info)| info.offsets.iter())
            .flat_map(|offsets| offsets.iter().map(|o| o.abs()))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::BoundaryCondition;

    #[test]
    fn parse_extracts_accesses() {
        let node = StencilNode::parse("b3", "b1[i-1,j,k] + b1[i+1,j,k]").unwrap();
        assert_eq!(node.read_fields(), vec!["b1"]);
        assert!(node.reads("b1"));
        assert!(!node.reads("b2"));
        assert_eq!(node.max_abs_offset(), 1);
        assert_eq!(node.op_count().additions, 1);
    }

    #[test]
    fn parse_error_carries_stencil_name() {
        let err = StencilNode::parse("broken", "a[i] +").unwrap_err();
        match err {
            ProgramError::Code { stencil, .. } => assert_eq!(stencil, "broken"),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn boundary_defaults_and_assignment() {
        let mut node = StencilNode::parse("b0", "a0[i,j,k] + a1[i,j,k]").unwrap();
        assert_eq!(
            node.boundary.condition_for("a0"),
            BoundaryCondition::Constant(0.0)
        );
        node.boundary = BoundarySpec::new().with_field("a0", BoundaryCondition::Copy);
        assert_eq!(node.boundary.condition_for("a0"), BoundaryCondition::Copy);
    }

    #[test]
    fn compute_latency_is_positive_for_nontrivial_code() {
        let node = StencilNode::parse("s", "0.25 * (a[i-1] + a[i+1] + a[i] + b[i])").unwrap();
        assert!(node.compute_latency(&LatencyTable::stratix10_defaults()) > 0);
    }
}
