//! Stencil program description for StencilFlow.
//!
//! This crate implements §II of the paper ("Definition of a Stencil
//! Program"): a *stencil program* is a directed acyclic graph of stencil
//! operations on a structured grid, where each node is either a stencil
//! operation performed on the full output domain or a memory container, and
//! edges are dependencies between stencils and memories.
//!
//! A stencil node is defined by:
//!
//! * a definition of each logical input that is read ("fields"), with a
//!   corresponding data type and a sequence of offsets relative to the
//!   center ("field accesses");
//! * a code segment describing the computation at each point of the
//!   iteration space (see `stencilflow-expr`);
//! * a series of boundary conditions defining how out-of-bounds accesses are
//!   handled ([`BoundaryCondition`]: `constant`, `copy`, or `shrink`).
//!
//! Programs can have 1, 2 or 3 dimensions; all stencils iterate over the same
//! iteration space, and stencils may read lower-dimensional inputs (e.g. a 3D
//! stencil reading a 2D or scalar array using a subset of its indices).
//!
//! The crate provides:
//!
//! * [`StencilProgram`] — the in-memory program representation, built either
//!   programmatically through [`StencilProgramBuilder`] or parsed from the
//!   JSON-based input format of the paper's Lst. 1 ([`json`]).
//! * [`StencilDag`] — the dependency graph over input memories, stencil
//!   nodes, and output memories, with topological sorting, path queries, and
//!   the graph-shape predicates (multi-tree detection) used by the deadlock
//!   analysis.
//! * [`IterationSpace`] — shapes, strides and memory-order linearization of
//!   offsets, the geometry underlying the buffer-size computations of §IV.
//!
//! # Example
//!
//! ```
//! use stencilflow_program::{StencilProgramBuilder, BoundaryCondition};
//! use stencilflow_expr::DataType;
//!
//! let program = StencilProgramBuilder::new("example", &[32, 32, 32])
//!     .input("a", DataType::Float32, &["i", "j", "k"])
//!     .stencil("b", "a[i-1,j,k] + a[i+1,j,k]")
//!     .boundary("b", "a", BoundaryCondition::Constant(0.0))
//!     .output("b")
//!     .build()
//!     .unwrap();
//! assert_eq!(program.stencils().count(), 1);
//! let dag = program.dag().unwrap();
//! assert_eq!(dag.topological_order().unwrap().len(), 3); // a -> b -> b(out)
//! ```

#![forbid(unsafe_code)]

pub mod boundary;
pub mod error;
pub mod field;
pub mod graph;
pub mod json;
pub mod program;
pub mod stencil;

pub use boundary::{BoundaryCondition, BoundarySpec};
pub use error::{ProgramError, Result};
pub use field::{FieldDecl, IterationSpace};
pub use graph::{AccessFootprints, DagEdge, DagNode, NodeKind, StencilDag};
pub use json::{from_json, to_json};
pub use program::{StencilProgram, StencilProgramBuilder};
pub use stencil::StencilNode;

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;

    /// Build the exact program of the paper's Lst. 1 / Fig. 2.
    pub(crate) fn listing1() -> StencilProgram {
        StencilProgramBuilder::new("listing1", &[32, 32, 32])
            .input("a0", DataType::Float32, &["i", "j", "k"])
            .input("a1", DataType::Float32, &["i", "j", "k"])
            .input("a2", DataType::Float32, &["i", "k"])
            .stencil("b0", "a0[i,j,k] + a1[i,j,k]")
            .boundary("b0", "a0", BoundaryCondition::Constant(1.0))
            .boundary("b0", "a1", BoundaryCondition::Copy)
            .stencil("b1", "0.5*(b0[i,j,k] + a2[i,k])")
            .shrink("b1")
            .stencil("b2", "0.5*(b0[i,j,k] - a2[i,k])")
            .shrink("b2")
            .stencil("b3", "b1[i-1,j,k] + b1[i+1,j,k]")
            .shrink("b3")
            .stencil("b4", "b2[i,j,k] + b3[i,j,k]")
            .shrink("b4")
            .output("b4")
            .build()
            .unwrap()
    }

    #[test]
    fn listing1_builds_and_validates() {
        let program = listing1();
        assert_eq!(program.stencils().count(), 5);
        assert_eq!(program.inputs().count(), 3);
        assert_eq!(program.outputs(), &["b4".to_string()]);
    }

    #[test]
    fn listing1_dag_matches_figure2() {
        let program = listing1();
        let dag = program.dag().unwrap();
        // a0,a1 -> b0; b0,a2 -> b1; b0,a2 -> b2; b1 -> b3; b2,b3 -> b4 -> out
        assert!(dag.has_edge("a0", "b0"));
        assert!(dag.has_edge("a1", "b0"));
        assert!(dag.has_edge("b0", "b1"));
        assert!(dag.has_edge("a2", "b1"));
        assert!(dag.has_edge("b0", "b2"));
        assert!(dag.has_edge("a2", "b2"));
        assert!(dag.has_edge("b1", "b3"));
        assert!(dag.has_edge("b2", "b4"));
        assert!(dag.has_edge("b3", "b4"));
        assert!(!dag.has_edge("b1", "b4"));
    }
}
