//! The JSON-based program description format (paper Lst. 1).
//!
//! ```json
//! {
//!   "inputs": {
//!     "a0": { "dtype": "float32", "dims": ["i", "j", "k"] },
//!     "a2": { "dtype": "float32", "dims": ["i", "k"] }
//!   },
//!   "outputs": ["b4"],
//!   "shape": [32, 32, 32],
//!   "vectorization": 1,
//!   "program": {
//!     "b0": { "code": "a0[i,j,k] + a1[i,j,k]",
//!             "boundary_condition": { "a0": {"type": "constant", "value": 1},
//!                                      "a1": {"type": "copy"} } },
//!     "b4": { "code": "b2[i,j,k] + b3[i,j,k]",
//!             "boundary_condition": "shrink" }
//!   }
//! }
//! ```
//!
//! Only the minimum amount of information necessary to instantiate the
//! stencil DAG needs to be specified explicitly: boundary conditions,
//! vectorization, and data types all have defaults.

use crate::boundary::{BoundaryCondition, BoundarySpec};
use crate::error::{ProgramError, Result};
use crate::program::{StencilProgram, StencilProgramBuilder};
use stencilflow_expr::DataType;
use stencilflow_json::Json;

fn schema_error(message: impl Into<String>) -> ProgramError {
    ProgramError::Json {
        message: message.into(),
    }
}

/// Reject duplicate keys in a schema object. The JSON layer preserves
/// duplicates (`get` returns the first), which for a program description
/// would silently drop the later definition — e.g. two stencils with the
/// same name, where ignoring one changes program semantics. Every object
/// the schema consumes is checked.
fn check_unique_keys(value: &Json, context: &str) -> Result<()> {
    let Some(members) = value.as_object() else {
        return Ok(());
    };
    for (ix, (key, _)) in members.iter().enumerate() {
        if members[..ix].iter().any(|(seen, _)| seen == key) {
            return Err(schema_error(format!("duplicate key `{key}` in {context}")));
        }
    }
    Ok(())
}

fn expect_str<'a>(value: &'a Json, context: &str) -> Result<&'a str> {
    value.as_str().ok_or_else(|| {
        schema_error(format!(
            "{context} must be a string, got {}",
            value.type_name()
        ))
    })
}

/// Parse a stencil program from its JSON description.
///
/// # Errors
///
/// Returns [`ProgramError::Json`] for schema violations, and the usual
/// validation errors (unknown fields, cycles, ...) for semantic problems.
///
/// # Example
///
/// ```
/// let text = r#"{
///   "inputs": { "a": {"dtype": "float32", "dims": ["i", "j"]} },
///   "outputs": ["b"],
///   "shape": [8, 8],
///   "program": { "b": "a[i,j] * 2.0" }
/// }"#;
/// let program = stencilflow_program::from_json(text).unwrap();
/// assert_eq!(program.stencil_count(), 1);
/// ```
pub fn from_json(text: &str) -> Result<StencilProgram> {
    let root = stencilflow_json::parse(text).map_err(|e| schema_error(e.to_string()))?;
    if root.as_object().is_none() {
        return Err(schema_error("program description must be a JSON object"));
    }
    check_unique_keys(&root, "the program description")?;

    let name = match root.get("name") {
        Some(v) => expect_str(v, "`name`")?.to_string(),
        None => "stencil_program".to_string(),
    };
    let shape: Vec<usize> = root
        .get("shape")
        .and_then(Json::as_array)
        .ok_or_else(|| schema_error("missing or non-array `shape`"))?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| schema_error("`shape` entries must be non-negative integers"))
        })
        .collect::<Result<_>>()?;

    let mut builder = StencilProgramBuilder::new(&name, &shape);
    if let Some(dims_value) = root.get("dims") {
        let dims: Vec<&str> = dims_value
            .as_array()
            .ok_or_else(|| schema_error("`dims` must be an array of strings"))?
            .iter()
            .map(|v| expect_str(v, "`dims` entry"))
            .collect::<Result<_>>()?;
        builder = builder.dims(&dims);
    }
    if let Some(width) = root.get("vectorization") {
        let width = width
            .as_usize()
            .ok_or_else(|| schema_error("`vectorization` must be a non-negative integer"))?;
        builder = builder.vectorization(width);
    }

    let inputs = root
        .get("inputs")
        .and_then(Json::as_object)
        .ok_or_else(|| schema_error("missing or non-object `inputs`"))?;
    check_unique_keys(root.get("inputs").expect("checked above"), "`inputs`")?;
    for (field, decl) in inputs {
        check_unique_keys(decl, &format!("input `{field}`"))?;
        let dtype_name = decl
            .get("dtype")
            .ok_or_else(|| schema_error(format!("input `{field}` is missing `dtype`")))
            .and_then(|v| expect_str(v, "`dtype`"))?;
        let dtype: DataType = dtype_name.parse().map_err(|_| {
            schema_error(format!(
                "unknown data type `{dtype_name}` for input `{field}`"
            ))
        })?;
        let dims: Vec<&str> = match decl.get("dims") {
            Some(v) => v
                .as_array()
                .ok_or_else(|| schema_error(format!("`dims` of input `{field}` must be an array")))?
                .iter()
                .map(|d| expect_str(d, "`dims` entry"))
                .collect::<Result<_>>()?,
            None => Vec::new(),
        };
        builder = builder.input(field, dtype, &dims);
    }

    let stencils = root
        .get("program")
        .and_then(Json::as_object)
        .ok_or_else(|| schema_error("missing or non-object `program`"))?;
    check_unique_keys(root.get("program").expect("checked above"), "`program`")?;
    for (stencil, entry) in stencils {
        check_unique_keys(entry, &format!("stencil `{stencil}`"))?;
        // The paper's format allows either a bare code string or an object
        // with `code`, `boundary_condition`, and `data_type`.
        let (code, boundary, data_type) = match entry {
            Json::String(code) => (code.as_str(), None, None),
            Json::Object(_) => {
                let code = entry.get("code").ok_or_else(|| {
                    schema_error(format!("stencil `{stencil}` is missing `code`"))
                })?;
                (
                    expect_str(code, "`code`")?,
                    entry.get("boundary_condition"),
                    entry.get("data_type"),
                )
            }
            other => {
                return Err(schema_error(format!(
                    "stencil `{stencil}` must be a string or object, got {}",
                    other.type_name()
                )))
            }
        };
        builder = builder.stencil(stencil, code);
        if let Some(boundary) = boundary {
            let spec = parse_boundary(stencil, boundary)?;
            for (field, condition) in &spec.per_field {
                builder = builder.boundary(stencil, field, *condition);
            }
            if spec.shrink {
                builder = builder.shrink(stencil);
            }
        }
        if let Some(dtype) = data_type {
            let dtype = expect_str(dtype, "`data_type`")?;
            let dtype: DataType = dtype.parse().map_err(|_| {
                schema_error(format!(
                    "unknown data type `{dtype}` for stencil `{stencil}`"
                ))
            })?;
            builder = builder.output_type(stencil, dtype);
        }
    }

    let outputs = root
        .get("outputs")
        .and_then(Json::as_array)
        .ok_or_else(|| schema_error("missing or non-array `outputs`"))?;
    if outputs.is_empty() {
        return Err(schema_error("`outputs` must list at least one stencil"));
    }
    for output in outputs {
        builder = builder.output(expect_str(output, "`outputs` entry")?);
    }
    builder.build()
}

fn parse_boundary(stencil: &str, value: &Json) -> Result<BoundarySpec> {
    match value {
        Json::String(s) if s == "shrink" => Ok(BoundarySpec::shrink()),
        Json::String(other) => Err(schema_error(format!(
            "boundary condition of `{stencil}` must be `\"shrink\"` or a per-field map, got `{other}`"
        ))),
        Json::Object(members) => {
            check_unique_keys(value, &format!("boundary condition of `{stencil}`"))?;
            let mut spec = BoundarySpec::new();
            for (field, condition) in members {
                if field == "shrink" {
                    spec.shrink = condition.as_bool().unwrap_or(true);
                    continue;
                }
                let condition = BoundaryCondition::from_json(condition).map_err(|e| {
                    schema_error(format!(
                        "invalid boundary condition for field `{field}` of `{stencil}`: {e}"
                    ))
                })?;
                spec.per_field.insert(field.clone(), condition);
            }
            Ok(spec)
        }
        other => Err(schema_error(format!(
            "boundary condition of `{stencil}` must be a string or object, got {}",
            other.type_name()
        ))),
    }
}

/// Serialize a stencil program back to its JSON description.
///
/// The output parses back into an equivalent program with [`from_json`]
/// (modulo key ordering).
pub fn to_json(program: &StencilProgram) -> String {
    let inputs = Json::Object(
        program
            .inputs()
            .map(|(name, decl)| {
                (
                    name.to_string(),
                    Json::Object(vec![
                        (
                            "dtype".to_string(),
                            Json::String(decl.data_type().as_str().to_string()),
                        ),
                        (
                            "dims".to_string(),
                            Json::Array(
                                decl.dims.iter().map(|d| Json::String(d.clone())).collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let stencils = Json::Object(
        program
            .stencils()
            .map(|stencil| {
                let mut entry = vec![("code".to_string(), Json::String(stencil.code.clone()))];
                let mut boundary: Vec<(String, Json)> = stencil
                    .boundary
                    .per_field
                    .iter()
                    .map(|(field, condition)| (field.clone(), condition.to_json()))
                    .collect();
                if stencil.boundary.shrink {
                    boundary.push(("shrink".to_string(), Json::Bool(true)));
                }
                if !boundary.is_empty() {
                    entry.push(("boundary_condition".to_string(), Json::Object(boundary)));
                }
                entry.push((
                    "data_type".to_string(),
                    Json::String(stencil.output_type.as_str().to_string()),
                ));
                (stencil.name.clone(), Json::Object(entry))
            })
            .collect(),
    );
    let description = Json::Object(vec![
        ("name".to_string(), Json::String(program.name().to_string())),
        ("inputs".to_string(), inputs),
        (
            "outputs".to_string(),
            Json::Array(
                program
                    .outputs()
                    .iter()
                    .map(|o| Json::String(o.clone()))
                    .collect(),
            ),
        ),
        (
            "shape".to_string(),
            Json::Array(
                program
                    .space()
                    .shape
                    .iter()
                    .map(|&s| Json::Number(s as f64))
                    .collect(),
            ),
        ),
        (
            "dims".to_string(),
            Json::Array(
                program
                    .space()
                    .dims
                    .iter()
                    .map(|d| Json::String(d.clone()))
                    .collect(),
            ),
        ),
        (
            "vectorization".to_string(),
            Json::Number(program.vectorization() as f64),
        ),
        ("program".to_string(), stencils),
    ]);
    description.to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Lst. 1, verbatim apart from fixing the typo in b3's code
    /// (`b1[i+1,j k]` is missing a comma in the paper).
    const LISTING1: &str = r#"{
      "inputs": {
        "a0": {"dtype": "float32", "dims": ["i","j","k"]},
        "a1": {"dtype": "float32", "dims": ["i","j","k"]},
        "a2": {"dtype": "float32", "dims": ["i","k"]}
      },
      "outputs": ["b4"],
      "shape": [32, 32, 32],
      "program": {
        "b0": {"code": "a0[i,j,k] + a1[i,j,k]",
               "boundary_condition": {
                 "a0": {"type": "constant", "value": 1},
                 "a1": {"type": "copy"} } },
        "b1": {"code": "0.5*(b0[i,j,k] + a2[i,k])",
               "boundary_condition": "shrink"},
        "b2": {"code": "0.5*(b0[i,j,k] - a2[i,k])",
               "boundary_condition": "shrink"},
        "b3": {"code": "b1[i-1,j,k] + b1[i+1,j,k]",
               "boundary_condition": "shrink"},
        "b4": {"code": "b2[i,j,k] + b3[i,j,k]",
               "boundary_condition": "shrink"}
      }
    }"#;

    #[test]
    fn parses_listing1() {
        let program = from_json(LISTING1).unwrap();
        assert_eq!(program.stencil_count(), 5);
        assert_eq!(program.outputs(), &["b4".to_string()]);
        assert_eq!(program.space().shape, vec![32, 32, 32]);
        let b0 = program.stencil("b0").unwrap();
        assert_eq!(
            b0.boundary.condition_for("a0"),
            BoundaryCondition::Constant(1.0)
        );
        assert_eq!(b0.boundary.condition_for("a1"), BoundaryCondition::Copy);
        assert!(program.stencil("b1").unwrap().boundary.shrink);
    }

    #[test]
    fn bare_code_strings_are_accepted() {
        let text = r#"{
          "inputs": { "a": {"dtype": "float32", "dims": ["i"]} },
          "outputs": ["b"],
          "shape": [16],
          "program": { "b": "a[i] * 2.0" }
        }"#;
        let program = from_json(text).unwrap();
        assert_eq!(program.stencil_count(), 1);
    }

    #[test]
    fn vectorization_and_dims_are_honoured() {
        let text = r#"{
          "inputs": { "a": {"dtype": "float32", "dims": ["x", "y"]} },
          "outputs": ["b"],
          "shape": [8, 16],
          "dims": ["x", "y"],
          "vectorization": 4,
          "program": { "b": "a[x,y] + 1.0" }
        }"#;
        let program = from_json(text).unwrap();
        assert_eq!(program.vectorization(), 4);
        assert_eq!(program.space().dims, vec!["x", "y"]);
    }

    #[test]
    fn json_round_trip() {
        let program = from_json(LISTING1).unwrap();
        let text = to_json(&program);
        let reparsed = from_json(&text).unwrap();
        assert_eq!(reparsed.stencil_count(), program.stencil_count());
        assert_eq!(reparsed.outputs(), program.outputs());
        assert_eq!(reparsed.space(), program.space());
        for stencil in program.stencils() {
            let other = reparsed.stencil(&stencil.name).unwrap();
            assert_eq!(other.program, stencil.program);
            assert!(other.boundary.behaviour_eq(&stencil.boundary));
        }
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(matches!(from_json("{"), Err(ProgramError::Json { .. })));
        assert!(matches!(
            from_json(r#"{"inputs": {}, "outputs": [], "shape": []}"#),
            Err(ProgramError::Json { .. })
        ));
        // Bad boundary condition type.
        let text = r#"{
          "inputs": { "a": {"dtype": "float32", "dims": ["i"]} },
          "outputs": ["b"],
          "shape": [16],
          "program": { "b": {"code": "a[i]", "boundary_condition": "explode"} }
        }"#;
        assert!(matches!(from_json(text), Err(ProgramError::Json { .. })));
        // Missing `dtype` is a schema violation, not a silent default.
        let text = r#"{
          "inputs": { "a": {"dims": ["i"]} },
          "outputs": ["b"],
          "shape": [16],
          "program": { "b": "a[i]" }
        }"#;
        assert!(matches!(from_json(text), Err(ProgramError::Json { .. })));
    }

    #[test]
    fn semantic_errors_surface_through_json_parsing() {
        let text = r#"{
          "inputs": { "a": {"dtype": "float32", "dims": ["i"]} },
          "outputs": ["b"],
          "shape": [16],
          "program": { "b": "zz[i] * 2.0" }
        }"#;
        assert!(matches!(
            from_json(text),
            Err(ProgramError::UnknownField { .. })
        ));
    }
}
