//! The JSON-based program description format (paper Lst. 1).
//!
//! ```json
//! {
//!   "inputs": {
//!     "a0": { "dtype": "float32", "dims": ["i", "j", "k"] },
//!     "a2": { "dtype": "float32", "dims": ["i", "k"] }
//!   },
//!   "outputs": ["b4"],
//!   "shape": [32, 32, 32],
//!   "vectorization": 1,
//!   "program": {
//!     "b0": { "code": "a0[i,j,k] + a1[i,j,k]",
//!             "boundary_condition": { "a0": {"type": "constant", "value": 1},
//!                                      "a1": {"type": "copy"} } },
//!     "b4": { "code": "b2[i,j,k] + b3[i,j,k]",
//!             "boundary_condition": "shrink" }
//!   }
//! }
//! ```
//!
//! Only the minimum amount of information necessary to instantiate the
//! stencil DAG needs to be specified explicitly: boundary conditions,
//! vectorization, and data types all have defaults.

use crate::boundary::{BoundaryCondition, BoundarySpec};
use crate::error::{ProgramError, Result};
use crate::field::FieldDecl;
use crate::program::{StencilProgram, StencilProgramBuilder};
use serde::{Deserialize, Serialize};
use serde_json::Value as Json;
use std::collections::BTreeMap;
use stencilflow_expr::DataType;

/// Top-level wire format of a program description.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ProgramDescription {
    #[serde(default)]
    name: Option<String>,
    inputs: BTreeMap<String, FieldDecl>,
    outputs: Vec<String>,
    shape: Vec<usize>,
    #[serde(default)]
    dims: Option<Vec<String>>,
    #[serde(default)]
    vectorization: Option<usize>,
    program: BTreeMap<String, StencilEntry>,
}

/// A stencil node in the wire format. The paper's format allows either a bare
/// code string or an object with `code` and `boundary_condition`.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
enum StencilEntry {
    /// Just the code segment; all boundary conditions default.
    Code(String),
    /// Full node description.
    Full {
        code: String,
        #[serde(default, skip_serializing_if = "Option::is_none")]
        boundary_condition: Option<Json>,
        #[serde(default, skip_serializing_if = "Option::is_none")]
        data_type: Option<String>,
    },
}

/// Parse a stencil program from its JSON description.
///
/// # Errors
///
/// Returns [`ProgramError::Json`] for schema violations, and the usual
/// validation errors (unknown fields, cycles, ...) for semantic problems.
///
/// # Example
///
/// ```
/// let text = r#"{
///   "inputs": { "a": {"dtype": "float32", "dims": ["i", "j"]} },
///   "outputs": ["b"],
///   "shape": [8, 8],
///   "program": { "b": "a[i,j] * 2.0" }
/// }"#;
/// let program = stencilflow_program::from_json(text).unwrap();
/// assert_eq!(program.stencil_count(), 1);
/// ```
pub fn from_json(text: &str) -> Result<StencilProgram> {
    let description: ProgramDescription =
        serde_json::from_str(text).map_err(|e| ProgramError::Json {
            message: e.to_string(),
        })?;
    let name = description.name.unwrap_or_else(|| "stencil_program".to_string());
    let mut builder = StencilProgramBuilder::new(&name, &description.shape);
    if let Some(dims) = &description.dims {
        let refs: Vec<&str> = dims.iter().map(String::as_str).collect();
        builder = builder.dims(&refs);
    }
    if let Some(width) = description.vectorization {
        builder = builder.vectorization(width);
    }
    for (field, decl) in &description.inputs {
        let dims: Vec<&str> = decl.dims.iter().map(String::as_str).collect();
        builder = builder.input(field, decl.data_type(), &dims);
    }
    for (stencil, entry) in &description.program {
        let (code, boundary, data_type) = match entry {
            StencilEntry::Code(code) => (code.clone(), None, None),
            StencilEntry::Full {
                code,
                boundary_condition,
                data_type,
            } => (code.clone(), boundary_condition.clone(), data_type.clone()),
        };
        builder = builder.stencil(stencil, &code);
        if let Some(boundary) = boundary {
            let spec = parse_boundary(stencil, &boundary)?;
            for (field, condition) in &spec.per_field {
                builder = builder.boundary(stencil, field, *condition);
            }
            if spec.shrink {
                builder = builder.shrink(stencil);
            }
        }
        if let Some(dtype) = data_type {
            let dtype: DataType = dtype.parse().map_err(|_| ProgramError::Json {
                message: format!("unknown data type `{dtype}` for stencil `{stencil}`"),
            })?;
            builder = builder.output_type(stencil, dtype);
        }
    }
    for output in &description.outputs {
        builder = builder.output(output);
    }
    builder.build()
}

fn parse_boundary(stencil: &str, value: &Json) -> Result<BoundarySpec> {
    match value {
        Json::String(s) if s == "shrink" => Ok(BoundarySpec::shrink()),
        Json::String(other) => Err(ProgramError::Json {
            message: format!(
                "boundary condition of `{stencil}` must be `\"shrink\"` or a per-field map, got `{other}`"
            ),
        }),
        Json::Object(map) => {
            let mut spec = BoundarySpec::new();
            for (field, condition) in map {
                if field == "shrink" {
                    spec.shrink = condition.as_bool().unwrap_or(true);
                    continue;
                }
                let condition: BoundaryCondition = serde_json::from_value(condition.clone())
                    .map_err(|e| ProgramError::Json {
                        message: format!(
                            "invalid boundary condition for field `{field}` of `{stencil}`: {e}"
                        ),
                    })?;
                spec.per_field.insert(field.clone(), condition);
            }
            Ok(spec)
        }
        other => Err(ProgramError::Json {
            message: format!(
                "boundary condition of `{stencil}` must be a string or object, got {other}"
            ),
        }),
    }
}

/// Serialize a stencil program back to its JSON description.
///
/// The output parses back into an equivalent program with [`from_json`]
/// (modulo key ordering).
pub fn to_json(program: &StencilProgram) -> String {
    let mut stencil_map = BTreeMap::new();
    for stencil in program.stencils() {
        let mut boundary = serde_json::Map::new();
        for (field, condition) in &stencil.boundary.per_field {
            boundary.insert(
                field.clone(),
                serde_json::to_value(condition).expect("boundary conditions serialize"),
            );
        }
        if stencil.boundary.shrink {
            boundary.insert("shrink".to_string(), Json::Bool(true));
        }
        let entry = if boundary.is_empty() {
            StencilEntry::Full {
                code: stencil.code.clone(),
                boundary_condition: None,
                data_type: Some(stencil.output_type.as_str().to_string()),
            }
        } else {
            StencilEntry::Full {
                code: stencil.code.clone(),
                boundary_condition: Some(Json::Object(boundary)),
                data_type: Some(stencil.output_type.as_str().to_string()),
            }
        };
        stencil_map.insert(stencil.name.clone(), entry);
    }
    let description = ProgramDescription {
        name: Some(program.name().to_string()),
        inputs: program
            .inputs()
            .map(|(name, decl)| (name.to_string(), decl.clone()))
            .collect(),
        outputs: program.outputs().to_vec(),
        shape: program.space().shape.clone(),
        dims: Some(program.space().dims.clone()),
        vectorization: Some(program.vectorization()),
        program: stencil_map,
    };
    serde_json::to_string_pretty(&description).expect("program descriptions always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Lst. 1, verbatim apart from fixing the typo in b3's code
    /// (`b1[i+1,j k]` is missing a comma in the paper).
    const LISTING1: &str = r#"{
      "inputs": {
        "a0": {"dtype": "float32", "dims": ["i","j","k"]},
        "a1": {"dtype": "float32", "dims": ["i","j","k"]},
        "a2": {"dtype": "float32", "dims": ["i","k"]}
      },
      "outputs": ["b4"],
      "shape": [32, 32, 32],
      "program": {
        "b0": {"code": "a0[i,j,k] + a1[i,j,k]",
               "boundary_condition": {
                 "a0": {"type": "constant", "value": 1},
                 "a1": {"type": "copy"} } },
        "b1": {"code": "0.5*(b0[i,j,k] + a2[i,k])",
               "boundary_condition": "shrink"},
        "b2": {"code": "0.5*(b0[i,j,k] - a2[i,k])",
               "boundary_condition": "shrink"},
        "b3": {"code": "b1[i-1,j,k] + b1[i+1,j,k]",
               "boundary_condition": "shrink"},
        "b4": {"code": "b2[i,j,k] + b3[i,j,k]",
               "boundary_condition": "shrink"}
      }
    }"#;

    #[test]
    fn parses_listing1() {
        let program = from_json(LISTING1).unwrap();
        assert_eq!(program.stencil_count(), 5);
        assert_eq!(program.outputs(), &["b4".to_string()]);
        assert_eq!(program.space().shape, vec![32, 32, 32]);
        let b0 = program.stencil("b0").unwrap();
        assert_eq!(
            b0.boundary.condition_for("a0"),
            BoundaryCondition::Constant(1.0)
        );
        assert_eq!(b0.boundary.condition_for("a1"), BoundaryCondition::Copy);
        assert!(program.stencil("b1").unwrap().boundary.shrink);
    }

    #[test]
    fn bare_code_strings_are_accepted() {
        let text = r#"{
          "inputs": { "a": {"dtype": "float32", "dims": ["i"]} },
          "outputs": ["b"],
          "shape": [16],
          "program": { "b": "a[i] * 2.0" }
        }"#;
        let program = from_json(text).unwrap();
        assert_eq!(program.stencil_count(), 1);
    }

    #[test]
    fn vectorization_and_dims_are_honoured() {
        let text = r#"{
          "inputs": { "a": {"dtype": "float32", "dims": ["x", "y"]} },
          "outputs": ["b"],
          "shape": [8, 16],
          "dims": ["x", "y"],
          "vectorization": 4,
          "program": { "b": "a[x,y] + 1.0" }
        }"#;
        let program = from_json(text).unwrap();
        assert_eq!(program.vectorization(), 4);
        assert_eq!(program.space().dims, vec!["x", "y"]);
    }

    #[test]
    fn json_round_trip() {
        let program = from_json(LISTING1).unwrap();
        let text = to_json(&program);
        let reparsed = from_json(&text).unwrap();
        assert_eq!(reparsed.stencil_count(), program.stencil_count());
        assert_eq!(reparsed.outputs(), program.outputs());
        assert_eq!(reparsed.space(), program.space());
        for stencil in program.stencils() {
            let other = reparsed.stencil(&stencil.name).unwrap();
            assert_eq!(other.program, stencil.program);
            assert!(other.boundary.behaviour_eq(&stencil.boundary));
        }
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(matches!(from_json("{"), Err(ProgramError::Json { .. })));
        assert!(matches!(
            from_json(r#"{"inputs": {}, "outputs": [], "shape": []}"#),
            Err(ProgramError::Json { .. })
        ));
        // Bad boundary condition type.
        let text = r#"{
          "inputs": { "a": {"dtype": "float32", "dims": ["i"]} },
          "outputs": ["b"],
          "shape": [16],
          "program": { "b": {"code": "a[i]", "boundary_condition": "explode"} }
        }"#;
        assert!(matches!(from_json(text), Err(ProgramError::Json { .. })));
    }

    #[test]
    fn semantic_errors_surface_through_json_parsing() {
        let text = r#"{
          "inputs": { "a": {"dtype": "float32", "dims": ["i"]} },
          "outputs": ["b"],
          "shape": [16],
          "program": { "b": "zz[i] * 2.0" }
        }"#;
        assert!(matches!(
            from_json(text),
            Err(ProgramError::UnknownField { .. })
        ));
    }
}
