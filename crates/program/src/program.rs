//! The stencil program container and its builder.

use crate::boundary::{BoundaryCondition, BoundarySpec};
use crate::error::{ProgramError, Result};
use crate::field::{FieldDecl, IterationSpace};
use crate::graph::StencilDag;
use crate::stencil::StencilNode;
use std::collections::BTreeMap;
use stencilflow_expr::{DataType, LatencyTable, OpCount};

/// A complete stencil program: iteration space, input fields, stencil nodes,
/// and designated outputs (§II of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct StencilProgram {
    name: String,
    space: IterationSpace,
    inputs: BTreeMap<String, FieldDecl>,
    stencils: BTreeMap<String, StencilNode>,
    outputs: Vec<String>,
    vectorization: usize,
}

impl StencilProgram {
    /// Program name (used for reporting and code generation).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The common iteration space all stencils iterate over.
    pub fn space(&self) -> &IterationSpace {
        &self.space
    }

    /// The vectorization width W (§IV-C); 1 if not vectorized.
    pub fn vectorization(&self) -> usize {
        self.vectorization
    }

    /// Iterate over `(name, declaration)` of all input fields.
    pub fn inputs(&self) -> impl Iterator<Item = (&str, &FieldDecl)> {
        self.inputs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Declaration of one input field.
    pub fn input(&self, name: &str) -> Option<&FieldDecl> {
        self.inputs.get(name)
    }

    /// Iterate over all stencil nodes (in name order; use
    /// [`StencilProgram::topological_stencils`] for dependency order).
    pub fn stencils(&self) -> impl Iterator<Item = &StencilNode> {
        self.stencils.values()
    }

    /// Look up a stencil node by name.
    pub fn stencil(&self, name: &str) -> Option<&StencilNode> {
        self.stencils.get(name)
    }

    /// Number of stencil nodes.
    pub fn stencil_count(&self) -> usize {
        self.stencils.len()
    }

    /// Names of the program outputs (stencil results written to memory).
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// Whether `name` refers to an input field.
    pub fn is_input(&self, name: &str) -> bool {
        self.inputs.contains_key(name)
    }

    /// Whether `name` refers to a stencil node.
    pub fn is_stencil(&self, name: &str) -> bool {
        self.stencils.contains_key(name)
    }

    /// The dimensions spanned by a field: an input's declared dims, or the
    /// full iteration space for a stencil output.
    pub fn field_dims(&self, name: &str) -> Option<Vec<String>> {
        if let Some(decl) = self.inputs.get(name) {
            Some(decl.dims.clone())
        } else if self.stencils.contains_key(name) {
            Some(self.space.dims.clone())
        } else {
            None
        }
    }

    /// The element type of a field (input declaration or stencil output).
    pub fn field_type(&self, name: &str) -> Option<DataType> {
        if let Some(decl) = self.inputs.get(name) {
            Some(decl.data_type())
        } else {
            self.stencils.get(name).map(|s| s.output_type)
        }
    }

    /// Build the dependency DAG over memories and stencils.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Cycle`] if the stencil dependencies are
    /// cyclic (validation normally catches this earlier).
    pub fn dag(&self) -> Result<StencilDag> {
        StencilDag::from_program(self)
    }

    /// Stencil names in topological (dependency) order.
    pub fn topological_stencils(&self) -> Result<Vec<String>> {
        let dag = self.dag()?;
        Ok(dag
            .topological_order()?
            .into_iter()
            .filter(|n| self.is_stencil(n))
            .collect())
    }

    /// Total operation count per iteration-space cell, summed over all
    /// stencils (the "Op/cycle" figure of the paper's scaling plots).
    pub fn ops_per_cell(&self) -> OpCount {
        self.stencils.values().map(|s| s.op_count()).sum()
    }

    /// Total floating-point operations to evaluate the whole program once.
    pub fn total_flops(&self) -> u64 {
        self.ops_per_cell().flops() * self.space.num_cells() as u64
    }

    /// Sum of compute critical-path latencies along the deepest chain of
    /// stencils (a loose upper bound used in reporting; the precise
    /// initialization latency is computed by `stencilflow-core`).
    pub fn max_compute_latency(&self, table: &LatencyTable) -> u64 {
        self.stencils
            .values()
            .map(|s| s.compute_latency(table))
            .max()
            .unwrap_or(0)
    }

    /// Bytes read from off-chip memory if every input is read exactly once
    /// (the "perfect reuse" assumption of the paper).
    pub fn input_bytes(&self) -> usize {
        self.inputs
            .values()
            .map(|decl| {
                let elems: usize = decl
                    .dims
                    .iter()
                    .map(|d| {
                        self.space
                            .dim_index(d)
                            .map(|ix| self.space.shape[ix])
                            .unwrap_or(1)
                    })
                    .product();
                elems.max(1) * decl.data_type().size_bytes()
            })
            .sum()
    }

    /// Bytes written to off-chip memory for all program outputs.
    pub fn output_bytes(&self) -> usize {
        self.outputs
            .iter()
            .map(|name| {
                let dtype = self.field_type(name).unwrap_or(DataType::Float32);
                self.space.field_bytes(dtype)
            })
            .sum()
    }

    /// Total off-chip traffic (reads + writes) under perfect reuse, in bytes.
    /// This is the denominator of the arithmetic-intensity analysis (Eq. 2).
    pub fn total_memory_bytes(&self) -> usize {
        self.input_bytes() + self.output_bytes()
    }

    /// Arithmetic intensity in operations per byte (Eq. 2 of the paper).
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_flops() as f64 / self.total_memory_bytes() as f64
    }

    /// Mutable access to a stencil node, used by program-level transforms
    /// (fusion) in downstream crates.
    pub fn stencil_mut(&mut self, name: &str) -> Option<&mut StencilNode> {
        self.stencils.get_mut(name)
    }

    /// Remove a stencil node (used by fusion). The caller is responsible for
    /// re-validating afterwards.
    pub fn remove_stencil(&mut self, name: &str) -> Option<StencilNode> {
        self.stencils.remove(name)
    }

    /// Insert or replace a stencil node (used by fusion and generators).
    pub fn insert_stencil(&mut self, node: StencilNode) {
        self.stencils.insert(node.name.clone(), node);
    }

    /// Replace the output list (used by program transforms).
    pub fn set_outputs(&mut self, outputs: Vec<String>) {
        self.outputs = outputs;
    }

    /// Set the vectorization width.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::InvalidVectorization`] if the width does not
    /// divide the innermost dimension extent.
    pub fn set_vectorization(&mut self, width: usize) -> Result<()> {
        let inner = self.space.inner_extent();
        if width == 0 || !inner.is_multiple_of(width) {
            return Err(ProgramError::InvalidVectorization {
                width,
                inner_extent: inner,
            });
        }
        self.vectorization = width;
        Ok(())
    }

    /// Validate the program: name uniqueness, resolvable accesses, access
    /// ranks, boundary conditions referring to read fields, output
    /// existence, vectorization, and acyclicity.
    pub fn validate(&self) -> Result<()> {
        // Unique names across inputs and stencils.
        for name in self.stencils.keys() {
            if self.inputs.contains_key(name) {
                return Err(ProgramError::DuplicateName { name: name.clone() });
            }
        }
        // Outputs must be stencils.
        if self.outputs.is_empty() {
            return Err(ProgramError::Invalid {
                message: "program declares no outputs".into(),
            });
        }
        for output in &self.outputs {
            if !self.stencils.contains_key(output) {
                return Err(ProgramError::UnknownOutput {
                    name: output.clone(),
                });
            }
        }
        // Vectorization must divide the innermost extent.
        let inner = self.space.inner_extent();
        if self.vectorization == 0 || !inner.is_multiple_of(self.vectorization) {
            return Err(ProgramError::InvalidVectorization {
                width: self.vectorization,
                inner_extent: inner,
            });
        }
        // Accesses must resolve and have consistent ranks / dimension names.
        for (name, stencil) in &self.stencils {
            for (field, info) in stencil.accesses.iter() {
                let dims = self
                    .field_dims(field)
                    .ok_or_else(|| ProgramError::UnknownField {
                        stencil: name.clone(),
                        field: field.to_string(),
                    })?;
                if info.is_scalar() {
                    // Scalar reference: the field must be 0D.
                    if !dims.is_empty() {
                        return Err(ProgramError::InvalidAccess {
                            stencil: name.clone(),
                            field: field.to_string(),
                            message: format!(
                                "field has {} dimension(s) but is accessed without indices",
                                dims.len()
                            ),
                        });
                    }
                } else {
                    if info.index_vars.len() != dims.len() {
                        return Err(ProgramError::InvalidAccess {
                            stencil: name.clone(),
                            field: field.to_string(),
                            message: format!(
                                "access uses {} indices but the field has {} dimension(s)",
                                info.index_vars.len(),
                                dims.len()
                            ),
                        });
                    }
                    for (var, dim) in info.index_vars.iter().zip(dims.iter()) {
                        if var != dim {
                            return Err(ProgramError::InvalidAccess {
                                stencil: name.clone(),
                                field: field.to_string(),
                                message: format!(
                                    "index variable `{var}` does not match field dimension `{dim}`"
                                ),
                            });
                        }
                        if self.space.dim_index(var).is_none() {
                            return Err(ProgramError::InvalidAccess {
                                stencil: name.clone(),
                                field: field.to_string(),
                                message: format!(
                                    "`{var}` is not a dimension of the iteration space"
                                ),
                            });
                        }
                    }
                }
            }
            // Boundary conditions must refer to fields the stencil reads.
            for field in stencil.boundary.per_field.keys() {
                if !stencil.accesses.contains(field) {
                    return Err(ProgramError::InvalidBoundary {
                        stencil: name.clone(),
                        field: field.clone(),
                    });
                }
            }
        }
        // Acyclicity.
        let dag = self.dag()?;
        dag.topological_order()?;
        Ok(())
    }
}

/// Builder for [`StencilProgram`].
///
/// See the crate-level documentation for an example.
#[derive(Debug, Clone)]
pub struct StencilProgramBuilder {
    name: String,
    dims: Vec<String>,
    shape: Vec<usize>,
    inputs: BTreeMap<String, FieldDecl>,
    stencil_order: Vec<String>,
    codes: BTreeMap<String, String>,
    boundaries: BTreeMap<String, BoundarySpec>,
    output_types: BTreeMap<String, DataType>,
    outputs: Vec<String>,
    vectorization: usize,
}

impl StencilProgramBuilder {
    /// Start building a program with the given name and iteration-space
    /// shape. Dimension names default to `i`, `j`, `k` (up to the rank of
    /// `shape`); use [`StencilProgramBuilder::dims`] to override.
    pub fn new(name: &str, shape: &[usize]) -> Self {
        let default_names = ["i", "j", "k"];
        let dims = default_names
            .iter()
            .take(shape.len())
            .map(|d| d.to_string())
            .collect();
        StencilProgramBuilder {
            name: name.to_string(),
            dims,
            shape: shape.to_vec(),
            inputs: BTreeMap::new(),
            stencil_order: Vec::new(),
            codes: BTreeMap::new(),
            boundaries: BTreeMap::new(),
            output_types: BTreeMap::new(),
            outputs: Vec::new(),
            vectorization: 1,
        }
    }

    /// Override the iteration-space dimension names (memory order, slowest
    /// first).
    pub fn dims(mut self, dims: &[&str]) -> Self {
        self.dims = dims.iter().map(|d| d.to_string()).collect();
        self
    }

    /// Declare an input field spanning the listed dimensions.
    pub fn input(mut self, name: &str, dtype: DataType, dims: &[&str]) -> Self {
        self.inputs
            .insert(name.to_string(), FieldDecl::new(dtype, dims));
        self
    }

    /// Declare a scalar (0D) input.
    pub fn scalar(self, name: &str, dtype: DataType) -> Self {
        self.input(name, dtype, &[])
    }

    /// Add a stencil node with the given code segment.
    pub fn stencil(mut self, name: &str, code: &str) -> Self {
        if !self.codes.contains_key(name) {
            self.stencil_order.push(name.to_string());
        }
        self.codes.insert(name.to_string(), code.to_string());
        self
    }

    /// Set the boundary condition of `field` within stencil `stencil`.
    pub fn boundary(mut self, stencil: &str, field: &str, condition: BoundaryCondition) -> Self {
        self.boundaries
            .entry(stencil.to_string())
            .or_default()
            .per_field
            .insert(field.to_string(), condition);
        self
    }

    /// Mark the output of stencil `stencil` as shrunk.
    pub fn shrink(mut self, stencil: &str) -> Self {
        self.boundaries
            .entry(stencil.to_string())
            .or_default()
            .shrink = true;
        self
    }

    /// Set the output data type of a stencil (defaults to `float32`).
    pub fn output_type(mut self, stencil: &str, dtype: DataType) -> Self {
        self.output_types.insert(stencil.to_string(), dtype);
        self
    }

    /// Declare a program output.
    pub fn output(mut self, name: &str) -> Self {
        self.outputs.push(name.to_string());
        self
    }

    /// Set the vectorization width W.
    pub fn vectorization(mut self, width: usize) -> Self {
        self.vectorization = width;
        self
    }

    /// Parse all code segments, assemble the program, and validate it.
    ///
    /// # Errors
    ///
    /// Returns the first validation error encountered (see
    /// [`StencilProgram::validate`]).
    pub fn build(self) -> Result<StencilProgram> {
        let dim_refs: Vec<&str> = self.dims.iter().map(String::as_str).collect();
        let space = IterationSpace::new(&dim_refs, &self.shape)?;
        let mut stencils = BTreeMap::new();
        for name in &self.stencil_order {
            if self.inputs.contains_key(name) || stencils.contains_key(name) {
                return Err(ProgramError::DuplicateName { name: name.clone() });
            }
            let code = &self.codes[name];
            let mut node = StencilNode::parse(name, code)?;
            if let Some(boundary) = self.boundaries.get(name) {
                node.boundary = boundary.clone();
            }
            if let Some(dtype) = self.output_types.get(name) {
                node.output_type = *dtype;
            }
            stencils.insert(name.clone(), node);
        }
        let program = StencilProgram {
            name: self.name,
            space,
            inputs: self.inputs,
            stencils,
            outputs: self.outputs,
            vectorization: self.vectorization,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> StencilProgramBuilder {
        StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i,j,k] * 2.0")
            .output("b")
    }

    #[test]
    fn builds_minimal_program() {
        let program = simple().build().unwrap();
        assert_eq!(program.name(), "p");
        assert_eq!(program.stencil_count(), 1);
        assert_eq!(program.vectorization(), 1);
        assert!(program.is_input("a"));
        assert!(program.is_stencil("b"));
        assert_eq!(program.field_type("a"), Some(DataType::Float32));
        assert_eq!(program.field_dims("b").unwrap(), vec!["i", "j", "k"]);
    }

    #[test]
    fn rejects_unknown_field() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "zz[i,j,k] * 2.0")
            .output("b")
            .build();
        assert!(matches!(result, Err(ProgramError::UnknownField { .. })));
    }

    #[test]
    fn rejects_unknown_output() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i,j,k]")
            .output("c")
            .build();
        assert!(matches!(result, Err(ProgramError::UnknownOutput { .. })));
    }

    #[test]
    fn rejects_missing_outputs() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i,j,k]")
            .build();
        assert!(matches!(result, Err(ProgramError::Invalid { .. })));
    }

    #[test]
    fn rejects_duplicate_names() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("a", "a[i,j,k]")
            .output("a")
            .build();
        assert!(matches!(result, Err(ProgramError::DuplicateName { .. })));
    }

    #[test]
    fn rejects_rank_mismatch() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "k"])
            .stencil("b", "a[i,j,k]")
            .output("b")
            .build();
        assert!(matches!(result, Err(ProgramError::InvalidAccess { .. })));
    }

    #[test]
    fn rejects_wrong_dimension_names() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i,k,j]")
            .output("b")
            .build();
        assert!(matches!(result, Err(ProgramError::InvalidAccess { .. })));
    }

    #[test]
    fn rejects_cycles() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "c[i,j,k] + a[i,j,k]")
            .stencil("c", "b[i,j,k]")
            .output("c")
            .build();
        assert!(matches!(result, Err(ProgramError::Cycle { .. })));
    }

    #[test]
    fn rejects_bad_vectorization() {
        let result = simple().vectorization(3).build();
        assert!(matches!(
            result,
            Err(ProgramError::InvalidVectorization { .. })
        ));
        let program = simple().vectorization(4).build().unwrap();
        assert_eq!(program.vectorization(), 4);
    }

    #[test]
    fn rejects_boundary_on_unread_field() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .input("z", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i,j,k]")
            .boundary("b", "z", BoundaryCondition::Copy)
            .output("b")
            .build();
        assert!(matches!(result, Err(ProgramError::InvalidBoundary { .. })));
    }

    #[test]
    fn scalar_inputs_are_accessible_without_indices() {
        let program = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .scalar("dt", DataType::Float32)
            .stencil("b", "a[i,j,k] * dt")
            .output("b")
            .build()
            .unwrap();
        assert!(program.input("dt").unwrap().is_scalar());
    }

    #[test]
    fn scalar_access_to_nonscalar_field_is_rejected() {
        let result = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a * 2.0")
            .output("b")
            .build();
        assert!(matches!(result, Err(ProgramError::InvalidAccess { .. })));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let program = StencilProgramBuilder::new("p", &[8, 8, 8])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("c", "b[i,j,k] * 2.0")
            .stencil("b", "a[i,j,k] + 1.0")
            .output("c")
            .build()
            .unwrap();
        let order = program.topological_stencils().unwrap();
        let pos_b = order.iter().position(|n| n == "b").unwrap();
        let pos_c = order.iter().position(|n| n == "c").unwrap();
        assert!(pos_b < pos_c);
    }

    #[test]
    fn arithmetic_intensity_and_memory_volume() {
        let program = StencilProgramBuilder::new("p", &[4, 4, 4])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i,j,k] * 2.0 + 1.0")
            .output("b")
            .build()
            .unwrap();
        // 64 cells, 2 flops per cell.
        assert_eq!(program.total_flops(), 128);
        // One input field + one output field of 64 cells * 4 bytes.
        assert_eq!(program.total_memory_bytes(), 2 * 64 * 4);
        let ai = program.arithmetic_intensity();
        assert!((ai - 128.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn ops_per_cell_sums_over_stencils() {
        let program = StencilProgramBuilder::new("p", &[4, 4, 4])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .stencil("b", "a[i,j,k] + 1.0")
            .stencil("c", "b[i,j,k] * 3.0")
            .output("c")
            .build()
            .unwrap();
        let ops = program.ops_per_cell();
        assert_eq!(ops.additions, 1);
        assert_eq!(ops.multiplications, 1);
    }

    #[test]
    fn lower_dimensional_input_bytes() {
        let program = StencilProgramBuilder::new("p", &[10, 20, 30])
            .input("a", DataType::Float32, &["i", "j", "k"])
            .input("surf", DataType::Float32, &["i", "k"])
            .stencil("b", "a[i,j,k] + surf[i,k]")
            .output("b")
            .build()
            .unwrap();
        // a: 10*20*30 elements, surf: 10*30 elements.
        assert_eq!(program.input_bytes(), (6000 + 300) * 4);
    }
}
