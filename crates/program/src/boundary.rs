//! Boundary conditions for out-of-bounds stencil accesses.
//!
//! Paper §II: "Currently supported boundary conditions include: *constant*,
//! where out of bounds accesses are replaced with a given constant value;
//! *copy*, where out of bounds accesses are replaced by the value at offset 0
//! in all dimensions (the 'center' value); and *shrink*, where all computed
//! values that read out of bounds values are simply ignored in the output.
//! The former two are specified per input, whereas shrink is specified on the
//! output."

use std::collections::BTreeMap;
use std::fmt;
use stencilflow_json::Json;

/// How out-of-bounds accesses to one input field are handled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundaryCondition {
    /// Replace out-of-bounds reads with a constant value.
    Constant(f64),
    /// Replace out-of-bounds reads with the value at the center offset.
    Copy,
}

impl BoundaryCondition {
    /// Wire representation in the JSON program description:
    /// `{"type": "constant", "value": 1}` or `{"type": "copy"}`.
    pub fn to_json(&self) -> Json {
        match self {
            BoundaryCondition::Constant(v) => Json::Object(vec![
                ("type".to_string(), Json::String("constant".to_string())),
                ("value".to_string(), Json::Number(*v)),
            ]),
            BoundaryCondition::Copy => {
                Json::Object(vec![("type".to_string(), Json::String("copy".to_string()))])
            }
        }
    }

    /// Parse the wire representation. Returns a human-readable message on
    /// schema violations.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "boundary condition must be an object with a `type` key".to_string())?;
        match kind {
            "constant" => Ok(BoundaryCondition::Constant(
                value.get("value").and_then(Json::as_f64).unwrap_or(0.0),
            )),
            "copy" => Ok(BoundaryCondition::Copy),
            other => Err(format!(
                "unknown boundary condition type `{other}` (expected `constant` or `copy`)"
            )),
        }
    }
}

impl Default for BoundaryCondition {
    fn default() -> Self {
        // A zero constant is the least surprising default and matches the
        // reference implementation's behaviour for unspecified inputs.
        BoundaryCondition::Constant(0.0)
    }
}

impl fmt::Display for BoundaryCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundaryCondition::Constant(v) => write!(f, "constant({v})"),
            BoundaryCondition::Copy => write!(f, "copy"),
        }
    }
}

/// The complete boundary specification of one stencil node: per-input
/// conditions plus the output-level `shrink` flag.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BoundarySpec {
    /// Per-input boundary conditions. Inputs without an entry use
    /// [`BoundaryCondition::default`].
    pub per_field: BTreeMap<String, BoundaryCondition>,
    /// Whether output cells whose computation read out-of-bounds values are
    /// dropped from the output ("shrink").
    pub shrink: bool,
}

impl BoundarySpec {
    /// A specification with no per-field entries and no shrink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A specification marking the output as shrunk.
    pub fn shrink() -> Self {
        BoundarySpec {
            per_field: BTreeMap::new(),
            shrink: true,
        }
    }

    /// Set the condition for one input field (builder style).
    pub fn with_field(mut self, field: &str, condition: BoundaryCondition) -> Self {
        self.per_field.insert(field.to_string(), condition);
        self
    }

    /// The condition applied to `field` (falling back to the default).
    pub fn condition_for(&self, field: &str) -> BoundaryCondition {
        self.per_field.get(field).copied().unwrap_or_default()
    }

    /// Whether two specifications describe the same boundary behaviour.
    ///
    /// This is the equality used by the stencil-fusion legality check
    /// (§V-B: fused stencils must "have the same StencilFlow boundary
    /// condition definitions").
    pub fn behaviour_eq(&self, other: &BoundarySpec) -> bool {
        self.shrink == other.shrink && self.per_field == other.per_field
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_constant() {
        assert_eq!(
            BoundaryCondition::default(),
            BoundaryCondition::Constant(0.0)
        );
        let spec = BoundarySpec::new();
        assert_eq!(
            spec.condition_for("whatever"),
            BoundaryCondition::Constant(0.0)
        );
        assert!(!spec.shrink);
    }

    #[test]
    fn builder_and_lookup() {
        let spec = BoundarySpec::new()
            .with_field("a0", BoundaryCondition::Constant(1.0))
            .with_field("a1", BoundaryCondition::Copy);
        assert_eq!(spec.condition_for("a0"), BoundaryCondition::Constant(1.0));
        assert_eq!(spec.condition_for("a1"), BoundaryCondition::Copy);
    }

    #[test]
    fn shrink_constructor() {
        let spec = BoundarySpec::shrink();
        assert!(spec.shrink);
        assert!(spec.per_field.is_empty());
    }

    #[test]
    fn behaviour_equality() {
        let a = BoundarySpec::new().with_field("x", BoundaryCondition::Copy);
        let b = BoundarySpec::new().with_field("x", BoundaryCondition::Copy);
        let c = BoundarySpec::new().with_field("x", BoundaryCondition::Constant(2.0));
        assert!(a.behaviour_eq(&b));
        assert!(!a.behaviour_eq(&c));
        assert!(!a.behaviour_eq(&BoundarySpec::shrink()));
    }

    #[test]
    fn json_round_trip() {
        let condition = BoundaryCondition::Constant(1.5);
        let json = condition.to_json().to_string_compact();
        assert!(json.contains("constant"));
        let back = BoundaryCondition::from_json(&stencilflow_json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, condition);

        let copy_json = stencilflow_json::parse(r#"{"type": "copy"}"#).unwrap();
        let back = BoundaryCondition::from_json(&copy_json).unwrap();
        assert_eq!(back, BoundaryCondition::Copy);

        assert!(BoundaryCondition::from_json(
            &stencilflow_json::parse(r#"{"type": "explode"}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn display() {
        assert_eq!(BoundaryCondition::Copy.to_string(), "copy");
        assert_eq!(BoundaryCondition::Constant(1.0).to_string(), "constant(1)");
    }
}
