//! Fuzzing for the JSON program parser: malformed input of any shape must
//! come back as a named [`ProgramError`] variant — never a panic, abort, or
//! stack overflow. Uses the in-tree proptest stand-in for deterministic,
//! seed-driven case generation, plus fixed regression cases for the panics
//! the fuzzer originally surfaced.

use proptest::prelude::*;
use stencilflow_program::{from_json, ProgramError};

/// A syntactically valid program description to mutate. Exercises every
/// schema feature: dims, vectorization, typed inputs, scalars, boundary
/// conditions (constant / copy / shrink), output types, and a small DAG.
const TEMPLATE: &str = r#"{
  "name": "fuzz_template",
  "dims": ["i", "j", "k"],
  "shape": [8, 8, 8],
  "vectorization": 2,
  "inputs": {
    "a": { "dtype": "float32", "dims": ["i", "j", "k"] },
    "p": { "dtype": "float64", "dims": ["i", "k"] },
    "c": { "dtype": "float64", "dims": [] }
  },
  "outputs": ["b1"],
  "program": {
    "b0": { "code": "a[i,j,k] + p[i,k] * c",
            "boundary_condition": { "a": {"type": "constant", "value": 1.5},
                                    "p": {"type": "copy"} } },
    "b1": { "code": "b0[i-1,j,k] + b0[i+1,j,k]",
            "boundary_condition": "shrink",
            "dtype": "float64" }
  }
}"#;

/// Vocabulary for grammar-based generation: schema keys, plausible values,
/// and JSON punctuation, so random documents regularly get deep into the
/// schema checks rather than dying at the first parse error.
const TOKENS: &[&str] = &[
    "{",
    "}",
    "[",
    "]",
    ":",
    ",",
    "\"",
    " ",
    "\n",
    "\"name\"",
    "\"dims\"",
    "\"shape\"",
    "\"vectorization\"",
    "\"inputs\"",
    "\"outputs\"",
    "\"program\"",
    "\"dtype\"",
    "\"code\"",
    "\"boundary_condition\"",
    "\"type\"",
    "\"value\"",
    "\"constant\"",
    "\"copy\"",
    "\"shrink\"",
    "\"float32\"",
    "\"float64\"",
    "\"i\"",
    "\"j\"",
    "\"k\"",
    "\"a\"",
    "\"b0\"",
    "\"b1\"",
    "\"a[i,j,k]\"",
    "\"a[i,j,k] + 1.0\"",
    "\"b0[i,j,k]\"",
    "0",
    "1",
    "8",
    "-1",
    "1e308",
    "1e-308",
    "-0.0",
    "18446744073709551615",
    "null",
    "true",
    "false",
    "\\u0000",
    "\\ud800",
    "𝛼",
];

/// The property under test: whatever we feed the parser, it returns a
/// `Result` — reaching this assertion at all proves no panic happened.
fn never_panics(text: &str) -> std::result::Result<(), TestCaseError> {
    match from_json(text) {
        Ok(_) => Ok(()),
        Err(
            e @ (ProgramError::Json { .. }
            | ProgramError::Code { .. }
            | ProgramError::UnknownField { .. }
            | ProgramError::DuplicateName { .. }
            | ProgramError::UnknownOutput { .. }
            | ProgramError::Cycle { .. }
            | ProgramError::InvalidShape { .. }
            | ProgramError::InvalidAccess { .. }
            | ProgramError::InvalidBoundary { .. }
            | ProgramError::Invalid { .. }
            | ProgramError::InvalidVectorization { .. }),
        ) => {
            // Every variant is named and printable.
            prop_assert!(!e.to_string().is_empty());
            Ok(())
        }
    }
}

fn grammar_case(rng: &mut TestRng) -> String {
    let len = rng.below(60) as usize + 1;
    let mut out = String::from("{");
    for _ in 0..len {
        out.push_str(TOKENS[rng.below(TOKENS.len() as u64) as usize]);
    }
    if rng.below(2) == 0 {
        out.push('}');
    }
    out
}

fn mutated_template(rng: &mut TestRng) -> String {
    let mut chars: Vec<char> = TEMPLATE.chars().collect();
    let edits = rng.below(8) + 1;
    for _ in 0..edits {
        if chars.is_empty() {
            break;
        }
        let at = rng.below(chars.len() as u64) as usize;
        match rng.below(5) {
            0 => {
                chars.remove(at);
            }
            1 => {
                let token = TOKENS[rng.below(TOKENS.len() as u64) as usize];
                for (k, c) in token.chars().enumerate() {
                    chars.insert(at + k, c);
                }
            }
            2 => {
                let replacement = b"{}[]:,\"0123456789eE+-. abz"[rng.below(26) as usize] as char;
                chars[at] = replacement;
            }
            3 => chars.truncate(at),
            _ => {
                // Duplicate a short span (breeds duplicate keys / members).
                let end = (at + rng.below(40) as usize + 1).min(chars.len());
                let span: Vec<char> = chars[at..end].to_vec();
                for (k, c) in span.into_iter().enumerate() {
                    chars.insert(end + k, c);
                }
            }
        }
    }
    chars.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structured-noise fuzzing: random documents built from schema tokens.
    #[test]
    fn fuzz_grammar_inputs_never_panic(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("fuzz_grammar", seed);
        for _ in 0..8 {
            never_panics(&grammar_case(&mut rng))?;
        }
    }

    /// Mutation fuzzing: corrupt a valid program description a few chars at
    /// a time, so inputs stay close to the happy path and stress the deep
    /// schema/validation code rather than the tokenizer.
    #[test]
    fn fuzz_mutated_templates_never_panic(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("fuzz_mutate", seed);
        for _ in 0..8 {
            never_panics(&mutated_template(&mut rng))?;
        }
    }

    /// Raw-noise fuzzing: arbitrary character soup, including non-ASCII.
    #[test]
    fn fuzz_random_text_never_panics(seed in any::<u32>()) {
        let mut rng = TestRng::for_case("fuzz_raw", seed);
        let len = rng.below(200) as usize;
        let text: String = (0..len)
            .filter_map(|_| char::from_u32(rng.next_u64() as u32 % 0x2000))
            .collect();
        never_panics(&text)?;
    }
}

#[test]
fn template_is_valid() {
    // The mutation corpus must start from a parseable document, otherwise
    // `fuzz_mutated_templates_never_panic` silently tests nothing deep.
    let program = from_json(TEMPLATE).expect("fuzz template must parse");
    assert_eq!(program.stencil_count(), 2);
}

#[test]
fn regression_overflowing_shape_is_rejected_not_a_panic() {
    // Found by the fuzzer: `shape` extents multiply into `num_cells`, and a
    // product past usize::MAX used to overflow-panic under debug assertions
    // (the test profile) before any allocation was attempted.
    let text = r#"{
      "inputs": { "a": {"dtype": "float32", "dims": ["i", "j", "k"]} },
      "outputs": ["b"],
      "shape": [18446744073709551615, 18446744073709551615, 2],
      "program": { "b": "a[i,j,k]" }
    }"#;
    let err = from_json(text).unwrap_err();
    assert!(matches!(err, ProgramError::InvalidShape { .. }));
    assert!(err.to_string().contains("overflows"));
    // A cell count that fits in usize but whose byte size does not is also
    // rejected up front instead of aborting in the allocator later.
    let text = r#"{
      "inputs": { "a": {"dtype": "float64", "dims": ["i", "j"]} },
      "outputs": ["b"],
      "shape": [4294967296, 2147483648],
      "program": { "b": "a[i,j]" }
    }"#;
    assert!(matches!(
        from_json(text),
        Err(ProgramError::InvalidShape { .. })
    ));
}

#[test]
fn regression_deep_nesting_is_rejected_not_a_stack_overflow() {
    // Found by the fuzzer: the recursive-descent JSON parser recursed once
    // per `[`/`{`, so ~100k open brackets blew the thread stack. The parser
    // now enforces a nesting-depth bound and reports it as a schema error.
    let bomb = format!("{{\"shape\": {}", "[".repeat(100_000));
    let err = from_json(&bomb).unwrap_err();
    assert!(matches!(err, ProgramError::Json { .. }));
    assert!(err.to_string().contains("nesting"));
}

#[test]
fn regression_duplicate_keys_are_rejected_not_first_wins() {
    // The JSON layer preserves duplicate members and `get` returns the
    // first, so before the schema-level uniqueness check a duplicated
    // stencil, input, or top-level key silently dropped the later
    // definition — a semantic change, not a parse error. Pinned per
    // object the schema consumes.
    let cases: &[&str] = &[
        // Two stencils with the same name: which body runs?
        r#"{"shape": [8], "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["b"], "program": {"b": "a[i]", "b": "a[i] + 1.0"}}"#,
        // Two declarations of the same input with different dtypes.
        r#"{"shape": [8], "inputs": {"a": {"dtype": "float32", "dims": ["i"]},
                                      "a": {"dtype": "float64", "dims": ["i"]}},
            "outputs": ["b"], "program": {"b": "a[i]"}}"#,
        // Conflicting top-level shapes.
        r#"{"shape": [8], "shape": [4],
            "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["b"], "program": {"b": "a[i]"}}"#,
        // Duplicate key inside one input declaration.
        r#"{"shape": [8],
            "inputs": {"a": {"dtype": "float32", "dtype": "float64", "dims": ["i"]}},
            "outputs": ["b"], "program": {"b": "a[i]"}}"#,
        // Duplicate key inside a stencil entry.
        r#"{"shape": [8], "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["b"],
            "program": {"b": {"code": "a[i]", "code": "a[i] * 2.0"}}}"#,
        // Duplicate field in a boundary-condition map.
        r#"{"shape": [8], "inputs": {"a": {"dtype": "float32", "dims": ["i"]}},
            "outputs": ["b"],
            "program": {"b": {"code": "a[i-1]",
                               "boundary_condition": {"a": {"type": "copy"},
                                                       "a": {"type": "constant", "value": 0}}}}}"#,
    ];
    for case in cases {
        let err = from_json(case).expect_err("duplicate keys must be rejected");
        assert!(
            matches!(err, ProgramError::Json { .. }),
            "expected a schema error, got {err:?}"
        );
        assert!(err.to_string().contains("duplicate key"), "{err}");
    }
}

#[test]
fn regression_schema_edge_cases_yield_named_errors() {
    // Shapes the generators hit that must map to named variants, pinned so
    // they stay errors (not panics) as the schema evolves.
    let cases: &[&str] = &[
        "",
        "{",
        "[1,2",
        "\"\\ud800\"",
        "{\"shape\": [1e308], \"inputs\": {}, \"outputs\": [], \"program\": {}}",
        "{\"shape\": [-1], \"inputs\": {}, \"outputs\": [], \"program\": {}}",
        "{\"shape\": [8], \"inputs\": {\"a\": {\"dtype\": \"float128\", \"dims\": [\"i\"]}},
          \"outputs\": [\"b\"], \"program\": {\"b\": \"a[i]\"}}",
        "{\"shape\": [8], \"inputs\": {\"a\": {\"dtype\": \"float32\", \"dims\": [\"i\"]}},
          \"outputs\": [\"b\"], \"program\": {\"b\": \"b[i]\"}}",
        "{\"shape\": [8, 8], \"inputs\": {}, \"outputs\": [], \"program\": 7}",
    ];
    for case in cases {
        let err = from_json(case).expect_err("malformed input must not parse");
        assert!(!err.to_string().is_empty(), "error must be printable");
    }
}
