//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small wall-clock benchmarking harness exposing the subset of the
//! criterion API used by `crates/bench`: [`Criterion`], benchmark groups,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] macro.
//! Each benchmark is warmed up, then timed over a fixed number of samples;
//! the mean, minimum, and median per-iteration times are printed. There are
//! no statistical comparisons against saved baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computation whose result is unused.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Accepted for API compatibility; command-line filters are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Print the closing line of a benchmark run.
    pub fn final_summary(&self) {
        println!("benchmarks complete");
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        match bencher.result {
            Some(summary) => println!(
                "{label:<50} mean {:>12?}  min {:>12?}  median {:>12?}  ({} samples)",
                summary.mean, summary.min, summary.median, summary.samples
            ),
            None => println!("{label:<50} (no measurement: Bencher::iter was not called)"),
        }
    }

    /// End the group (printing nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Summary {
    mean: Duration,
    min: Duration,
    median: Duration,
    samples: usize,
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    result: Option<Summary>,
}

impl Bencher {
    /// Time `routine`, discarding its output (through [`black_box`]).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for samples of at least
        // ~2 ms so fast routines are timed over many iterations.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        samples.sort();
        let total: Duration = samples.iter().sum();
        self.result = Some(Summary {
            mean: total / samples.len() as u32,
            min: samples[0],
            median: samples[samples.len() / 2],
            samples: samples.len(),
        });
    }
}

/// Collect benchmark functions into a single callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Run benchmark groups from `main` (API compatibility).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(unit_group, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        unit_group();
    }

    #[test]
    fn bench_without_iter_does_not_panic() {
        let mut c = Criterion::default();
        c.bench_function("noop", |_b| {});
        c.final_summary();
    }

    #[test]
    fn black_box_returns_value() {
        assert_eq!(black_box(42), 42);
    }
}
