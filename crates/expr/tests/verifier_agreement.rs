//! Agreement between the bytecode verifier and the evaluators: on random
//! programs, every compiled kernel must verify, evaluation must never
//! panic (the verifier's stack/local/jump judgment is exactly what lets
//! the eval loops run unchecked in release), and a kernel the verifier
//! judges infallible must never return a runtime error — across f64,
//! integer, and mixed slot typings, optimized and unoptimized bytecode,
//! and the typed tier.

use proptest::prelude::*;
use stencilflow_expr::ast::{BinOp, Expr, Index, MathFn, Program, Stmt, UnOp};
use stencilflow_expr::{
    verify_kernel, verify_typed, AccessExtractor, AccessResolver, CompiledKernel, DataType,
    EvalScratch, MapResolver, Value,
};

/// Random expressions biased towards division (the language's only
/// fallible operation) and ternaries (the only branch source), so both
/// halves of the verifier's judgment — infallibility and control flow —
/// are exercised hard.
fn arb_expr() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i32..16).prop_map(|v| Expr::FloatLit(v as f64 / 4.0)),
        (-2i64..4).prop_map(Expr::IntLit),
        (0usize..3usize, -1i64..2, -1i64..2).prop_map(|(f, di, dj)| Expr::FieldAccess {
            field: format!("f{f}"),
            indices: vec![
                Index {
                    var: "i".into(),
                    offset: di
                },
                Index {
                    var: "j".into(),
                    offset: dj
                },
            ],
        }),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::ternary(c, t, e)),
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(a, b, op)| {
                let op = match op % 8 {
                    // Division twice: the infallibility judgment is the
                    // property under test.
                    0 | 1 => BinOp::Div,
                    2 => BinOp::Add,
                    3 => BinOp::Sub,
                    4 => BinOp::Mul,
                    5 => BinOp::Lt,
                    6 => BinOp::And,
                    _ => BinOp::Or,
                };
                Expr::binary(op, a, b)
            }),
            inner.clone().prop_map(|a| Expr::unary(UnOp::Neg, a)),
            inner.clone().prop_map(|a| Expr::unary(UnOp::Not, a)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call {
                func: MathFn::Min,
                args: vec![a, b],
            }),
        ]
    })
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_expr(), 1..4).prop_map(|exprs| {
        let n = exprs.len();
        Program {
            statements: exprs
                .into_iter()
                .enumerate()
                .map(|(idx, value)| Stmt {
                    name: if idx + 1 < n {
                        Some(format!("tmp{idx}"))
                    } else {
                        None
                    },
                    value,
                })
                .collect(),
        }
    })
}

/// Slot typings the agreement is checked under. Integer slots (with zeros
/// among the values) are the interesting half: they make division
/// genuinely fallible, so the infallibility judgment must *not* hold and
/// real division errors must surface as `Err`, never as panics.
#[derive(Debug, Clone, Copy)]
enum SlotMode {
    AllF64,
    AllI64,
    Mixed,
}

fn resolver_for(program: &Program, mode: SlotMode) -> MapResolver {
    let mut resolver = MapResolver::new();
    let accesses = AccessExtractor::extract(program);
    for (field, info) in accesses.iter() {
        if info.is_scalar() {
            resolver.insert_scalar(field, Value::F64(1.25));
        }
        for offsets in &info.offsets {
            // Deterministic small values including zero, so integer
            // division by zero actually occurs in some cases.
            let v = offsets.iter().sum::<i64>() + field.len() as i64 - 2;
            let integer_slot = match mode {
                SlotMode::AllF64 => false,
                SlotMode::AllI64 => true,
                SlotMode::Mixed => v.rem_euclid(2) == 0,
            };
            let value = if integer_slot {
                Value::I64(v)
            } else {
                Value::F64(v as f64 * 0.75)
            };
            resolver.insert_access(field, offsets, value);
        }
    }
    resolver
}

/// The agreement check for one program and slot mode. Any panic in here
/// (stack underflow, bad local, out-of-range jump) is itself a failure of
/// the property that verified kernels evaluate safely.
fn check_agreement(program: &Program, mode: SlotMode) -> Result<(), TestCaseError> {
    let optimized = CompiledKernel::compile(program).expect("non-empty programs compile");
    let unoptimized = CompiledKernel::compile_unoptimized(program).unwrap();
    let resolver = resolver_for(program, mode);

    for kernel in [&optimized, &unoptimized] {
        // Gather the real slot values and their types.
        let mut slot_types: Vec<DataType> = Vec::with_capacity(kernel.slots().len());
        let mut values = Vec::with_capacity(kernel.slots().len());
        for slot in kernel.slots() {
            let value = resolver
                .resolve(&slot.field, &slot.offsets)
                .expect("resolver covers every access");
            slot_types.push(value.data_type());
            values.push(value);
        }

        // 1. The verifier accepts every kernel the compiler emits, both
        //    typeless (conservative) and with the real slot types.
        let conservative = verify_kernel(kernel, None);
        prop_assert!(
            conservative.is_ok(),
            "typeless verification rejected `{}`: {:?}",
            program,
            conservative
        );
        let judgment = verify_kernel(kernel, Some(&slot_types));
        prop_assert!(
            judgment.is_ok(),
            "typed verification rejected `{}`: {:?}",
            program,
            judgment
        );
        let judgment = judgment.unwrap();

        // 2. Verifier-accepted kernels evaluate without panicking; this
        //    call is the whole point of the unchecked release eval loops.
        let outcome = kernel.eval_slots(&values, &mut EvalScratch::default());

        // 3. Infallibility judgment: if the verifier proved no error is
        //    reachable, evaluation must not produce one.
        if judgment.infallible {
            prop_assert!(
                outcome.is_ok(),
                "verifier judged `{}` infallible but eval errored: {:?}",
                program,
                outcome
            );
        }

        // 4. A conservative judgment may only ever be *more* pessimistic
        //    than the typed one: typeless-infallible implies
        //    typed-infallible.
        if conservative.unwrap().infallible {
            prop_assert!(judgment.infallible);
        }

        // 5. The typed tier, when it exists, verifies too.
        if let Some(typed) = kernel.specialize(&slot_types) {
            let typed_judgment = verify_typed(&typed);
            prop_assert!(
                typed_judgment.is_ok(),
                "typed-kernel verification rejected `{}`: {:?}",
                program,
                typed_judgment
            );
            let typed_judgment = typed_judgment.unwrap();
            prop_assert_eq!(typed_judgment.branch_free, typed.supports_lanes());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All-float slots: division cannot fail, so every kernel must be
    /// judged infallible and must evaluate without error.
    #[test]
    fn verified_kernels_evaluate_safely_f64(program in arb_program()) {
        check_agreement(&program, SlotMode::AllF64)?;
    }

    /// All-integer slots: division by zero is reachable; the judgment
    /// must stay sound while evaluation reports real errors as `Err`.
    #[test]
    fn verified_kernels_evaluate_safely_i64(program in arb_program()) {
        check_agreement(&program, SlotMode::AllI64)?;
    }

    /// Mixed integer/float slots stress the promotion rules the
    /// infallibility judgment mirrors.
    #[test]
    fn verified_kernels_evaluate_safely_mixed(program in arb_program()) {
        check_agreement(&program, SlotMode::Mixed)?;
    }
}
