//! Property-based tests for the expression language: pretty-printer/parser
//! round trips, folding soundness, and evaluator consistency.

use proptest::prelude::*;
use std::collections::BTreeMap;
use stencilflow_expr::ast::{BinOp, Expr, Index, MathFn, Program, Stmt, UnOp};
use stencilflow_expr::{
    count_ops, critical_path_latency, fold_program, parse_program, AccessExtractor, Evaluator,
    LatencyTable, MapResolver, Value,
};

/// Strategy producing random (but well-formed) expressions over a small set
/// of fields and offsets.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    // Literal leaves are non-negative: negative constants are represented as
    // `Unary(Neg, lit)` by the parser, so a negative literal in the generated
    // AST would not survive a print/parse round trip even though it is
    // semantically identical.
    let leaf = prop_oneof![
        (0i64..5).prop_map(Expr::IntLit),
        (0i32..100).prop_map(|v| Expr::FloatLit(v as f64 / 8.0)),
        (0usize..3usize, -2i64..3, -2i64..3).prop_map(|(f, di, dj)| Expr::FieldAccess {
            field: format!("f{f}"),
            indices: vec![
                Index {
                    var: "i".into(),
                    offset: di
                },
                Index {
                    var: "j".into(),
                    offset: dj
                },
            ],
        }),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(a, b, op)| {
                let op = match op % 6 {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::Div,
                    4 => BinOp::Lt,
                    _ => BinOp::Ge,
                };
                Expr::binary(op, a, b)
            }),
            inner.clone().prop_map(|a| Expr::unary(UnOp::Neg, a)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::ternary(c, t, e)),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(a, b, is_min)| Expr::Call {
                func: if is_min { MathFn::Min } else { MathFn::Max },
                args: vec![a, b],
            }),
            inner.clone().prop_map(|a| Expr::Call {
                func: MathFn::Abs,
                args: vec![a],
            }),
        ]
    })
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_expr(3), 1..4).prop_map(|exprs| {
        let n = exprs.len();
        Program {
            statements: exprs
                .into_iter()
                .enumerate()
                .map(|(idx, value)| Stmt {
                    name: if idx + 1 < n {
                        Some(format!("tmp{idx}"))
                    } else {
                        None
                    },
                    value,
                })
                .collect(),
        }
    })
}

fn resolver_for(program: &Program) -> MapResolver {
    let mut resolver = MapResolver::new();
    let accesses = AccessExtractor::extract(program);
    for (field, info) in accesses.iter() {
        if info.is_scalar() {
            resolver.insert_scalar(field, Value::F64(1.25));
        }
        for offsets in &info.offsets {
            // Deterministic pseudo-values derived from the offsets.
            let v = offsets
                .iter()
                .enumerate()
                .map(|(d, o)| (*o as f64) * (d as f64 + 1.0) * 0.5)
                .sum::<f64>()
                + field.len() as f64;
            resolver.insert_access(field, offsets, Value::F64(v));
        }
    }
    resolver
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pretty-printing a program and re-parsing it yields the same AST.
    #[test]
    fn print_parse_round_trip(program in arb_program()) {
        let printed = program.to_string();
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(program, reparsed);
    }

    /// Constant folding never changes the value a program evaluates to.
    #[test]
    fn folding_preserves_semantics(program in arb_program()) {
        let resolver = resolver_for(&program);
        let original = Evaluator::new(&resolver).eval_program(&program);
        let folded = fold_program(&program);
        let after = Evaluator::new(&resolver).eval_program(&folded);
        match (original, after) {
            (Ok(a), Ok(b)) => prop_assert!(a.approx_eq(b, 1e-9),
                "folding changed value: {a:?} vs {b:?}"),
            (Err(_), Err(_)) => {}
            // Folding may turn an erroring program (integer div by zero on a
            // dead branch) into a succeeding one, but never the reverse.
            (Err(_), Ok(_)) => {}
            (Ok(a), Err(e)) => prop_assert!(false,
                "folding introduced an error: value was {a:?}, error {e}"),
        }
    }

    /// Folding never increases the operation count or the critical path.
    #[test]
    fn folding_never_increases_cost(program in arb_program()) {
        let folded = fold_program(&program);
        let table = LatencyTable::stratix10_defaults();
        prop_assert!(count_ops(&folded).total_logic_ops() <= count_ops(&program).total_logic_ops());
        prop_assert!(critical_path_latency(&folded, &table)
            <= critical_path_latency(&program, &table));
    }

    /// The critical path never exceeds the per-op latency sum (a loose but
    /// structural upper bound), and is zero only for leaf-only programs.
    #[test]
    fn critical_path_bounds(program in arb_program()) {
        let table = LatencyTable::unit();
        let latency = critical_path_latency(&program, &table);
        let ops = count_ops(&program);
        prop_assert!(latency <= ops.total_logic_ops());
    }

    /// Evaluation is deterministic.
    #[test]
    fn evaluation_is_deterministic(program in arb_program()) {
        let resolver = resolver_for(&program);
        let a = Evaluator::new(&resolver).eval_program(&program);
        let b = Evaluator::new(&resolver).eval_program(&program);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

#[test]
fn evaluator_matches_hand_computation() {
    let program = parse_program("x = a[i, j] * 2.0; x + b[i-1, j]").unwrap();
    let mut resolver = MapResolver::new();
    resolver.insert_access("a", &[0, 0], Value::F64(3.0));
    resolver.insert_access("b", &[-1, 0], Value::F64(0.5));
    let locals: BTreeMap<&str, Value> = BTreeMap::new();
    let _ = locals; // silence unused in case of refactors
    let value = Evaluator::new(&resolver).eval_program(&program).unwrap();
    assert_eq!(value.as_f64(), 6.5);
}
