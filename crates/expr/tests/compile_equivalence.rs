//! Property test: the compiled kernel agrees with the tree-walking
//! evaluator on randomly generated programs and resolvers — same values
//! (bit for bit), same types, same errors.

use proptest::prelude::*;
use stencilflow_expr::ast::{BinOp, Expr, Index, MathFn, Program, Stmt, UnOp};
use stencilflow_expr::{
    AccessExtractor, CompiledKernel, EvalScratch, Evaluator, MapResolver, TypedScratch, Value,
};

/// Random well-formed expressions over a small set of fields and offsets
/// (mirrors the strategy of the parser round-trip suite, plus division and
/// logic to stress error and short-circuit paths).
fn arb_expr(_depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..5).prop_map(Expr::IntLit),
        (0i32..100).prop_map(|v| Expr::FloatLit(v as f64 / 8.0)),
        (0usize..3usize, -2i64..3, -2i64..3).prop_map(|(f, di, dj)| Expr::FieldAccess {
            field: format!("f{f}"),
            indices: vec![
                Index {
                    var: "i".into(),
                    offset: di
                },
                Index {
                    var: "j".into(),
                    offset: dj
                },
            ],
        }),
    ];
    leaf.prop_recursive(3, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(a, b, op)| {
                let op = match op % 8 {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::Div,
                    4 => BinOp::Lt,
                    5 => BinOp::And,
                    6 => BinOp::Or,
                    _ => BinOp::Ge,
                };
                Expr::binary(op, a, b)
            }),
            inner.clone().prop_map(|a| Expr::unary(UnOp::Neg, a)),
            inner.clone().prop_map(|a| Expr::unary(UnOp::Not, a)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::ternary(c, t, e)),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(a, b, is_min)| Expr::Call {
                func: if is_min { MathFn::Min } else { MathFn::Max },
                args: vec![a, b],
            }),
            inner.clone().prop_map(|a| Expr::Call {
                func: MathFn::Sqrt,
                args: vec![a],
            }),
        ]
    })
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_expr(3), 1..4).prop_map(|exprs| {
        let n = exprs.len();
        Program {
            statements: exprs
                .into_iter()
                .enumerate()
                .map(|(idx, value)| Stmt {
                    name: if idx + 1 < n {
                        Some(format!("tmp{idx}"))
                    } else {
                        None
                    },
                    value,
                })
                .collect(),
        }
    })
}

/// Deterministic resolver covering every access of the program. `f32_mode`
/// stresses the type-promotion paths with mixed f32/f64 values.
fn resolver_for(program: &Program, f32_mode: bool) -> MapResolver {
    let mut resolver = MapResolver::new();
    let accesses = AccessExtractor::extract(program);
    for (field, info) in accesses.iter() {
        if info.is_scalar() {
            resolver.insert_scalar(field, Value::F64(1.25));
        }
        for offsets in &info.offsets {
            let v = offsets
                .iter()
                .enumerate()
                .map(|(d, o)| (*o as f64) * (d as f64 + 1.0) * 0.5)
                .sum::<f64>()
                + field.len() as f64;
            let value = if f32_mode && offsets.len() % 2 == 0 {
                Value::F32(v as f32)
            } else {
                Value::F64(v)
            };
            resolver.insert_access(field, offsets, value);
        }
    }
    resolver
}

fn check_equivalence(program: &Program, resolver: &MapResolver) -> Result<(), TestCaseError> {
    let interpreted = Evaluator::new(resolver).eval_program(program);
    let kernel = CompiledKernel::compile(program).expect("non-empty programs compile");
    let compiled = kernel.eval(resolver);
    match (interpreted, compiled) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.data_type(), b.data_type());
            prop_assert!(
                a.as_f64().to_bits() == b.as_f64().to_bits()
                    || (a.as_f64().is_nan() && b.as_f64().is_nan()),
                "compiled {b:?} differs from interpreted {a:?} for `{program}`"
            );
        }
        (Err(a), Err(b)) => prop_assert_eq!(a, b),
        (a, b) => prop_assert!(
            false,
            "outcome mismatch for `{program}`: interpreted {a:?}, compiled {b:?}"
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compiled evaluation is bit-identical to interpretation (f64 inputs).
    #[test]
    fn compiled_matches_interpreter_f64(program in arb_program()) {
        let resolver = resolver_for(&program, false);
        check_equivalence(&program, &resolver)?;
    }

    /// ... and with mixed f32/f64 inputs, which stresses type promotion and
    /// per-operation rounding.
    #[test]
    fn compiled_matches_interpreter_mixed_types(program in arb_program()) {
        let resolver = resolver_for(&program, true);
        check_equivalence(&program, &resolver)?;
    }

    /// Whenever a kernel specializes for its bind-time slot types, the
    /// typed `f64` loop agrees bit for bit with the `Value` bytecode (and
    /// therefore, by the tests above, with the interpreter).
    #[test]
    fn typed_kernel_matches_value_path(program in arb_program(), f32_mode in any::<bool>()) {
        let resolver = resolver_for(&program, f32_mode);
        let kernel = CompiledKernel::compile(&program).expect("non-empty programs compile");
        let mut slot_types = Vec::with_capacity(kernel.slots().len());
        let mut values = Vec::with_capacity(kernel.slots().len());
        let mut raw = Vec::with_capacity(kernel.slots().len());
        for slot in kernel.slots() {
            let value = stencilflow_expr::AccessResolver::resolve(
                &resolver, &slot.field, &slot.offsets,
            ).expect("resolver covers every access");
            slot_types.push(value.data_type());
            raw.push(value.as_f64());
            values.push(value);
        }
        if let Some(typed) = kernel.specialize(&slot_types) {
            // Specialized kernels reject every failing construct, so the
            // Value path must succeed too.
            let reference = kernel
                .eval_slots(&values, &mut EvalScratch::default())
                .expect("specialized kernels cannot fail");
            let specialized = typed.eval_slots(&raw, &mut TypedScratch::default());
            prop_assert!(
                reference.as_f64().to_bits() == specialized.to_bits()
                    || (reference.as_f64().is_nan() && specialized.is_nan()),
                "typed mismatch for `{program}`: {reference:?} vs {specialized}"
            );
        }
    }

    /// Compilation is deterministic: two lowerings of the same program are
    /// identical, and re-evaluation yields the same bits.
    #[test]
    fn compilation_is_deterministic(program in arb_program()) {
        let a = CompiledKernel::compile(&program).unwrap();
        let b = CompiledKernel::compile(&program).unwrap();
        prop_assert_eq!(a.ops(), b.ops());
        prop_assert_eq!(a.slots(), b.slots());
        let resolver = resolver_for(&program, false);
        let first = a.eval(&resolver);
        let second = a.eval(&resolver);
        prop_assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }
}
