//! Property test for the optimization pipeline: randomly generated
//! programs with (nested) ternaries and short-circuit logic, asserting the
//! optimized bytecode — if-converted, CSE'd, DCE'd — is bitwise identical
//! to both the unoptimized bytecode and the tree-walking interpreter,
//! across f32, f64, and mixed slot types, on the `Value` path and (where
//! the kernel specializes) the typed and lane paths.

use proptest::prelude::*;
use stencilflow_expr::ast::{BinOp, Expr, Index, MathFn, Program, Stmt, UnOp};
use stencilflow_expr::{
    AccessExtractor, AccessResolver, CompiledKernel, EvalScratch, Evaluator, LaneScratch,
    MapResolver, TypedScratch, Value,
};

/// Random expressions biased towards ternaries (including nested ones) and
/// repeated subexpressions — the constructs if-conversion and CSE act on.
/// Division is included deliberately: it blocks if-conversion of the arm
/// containing it, exercising the mixed jump-plus-select paths.
fn arb_expr(_depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i32..100).prop_map(|v| Expr::FloatLit(v as f64 / 8.0)),
        (0i64..4).prop_map(Expr::IntLit),
        (0usize..3usize, -2i64..3, -2i64..3).prop_map(|(f, di, dj)| Expr::FieldAccess {
            field: format!("f{f}"),
            indices: vec![
                Index {
                    var: "i".into(),
                    offset: di
                },
                Index {
                    var: "j".into(),
                    offset: dj
                },
            ],
        }),
    ];
    leaf.prop_recursive(4, 96, 3, |inner| {
        prop_oneof![
            // The ternary arm appears three times: the offline proptest
            // stand-in has no weighted arms, and nesting should be common.
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::ternary(c, t, e)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::ternary(c, t, e)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::ternary(c, t, e)),
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(a, b, op)| {
                let op = match op % 8 {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::Div,
                    4 => BinOp::Lt,
                    5 => BinOp::And,
                    6 => BinOp::Or,
                    _ => BinOp::Ge,
                };
                Expr::binary(op, a, b)
            }),
            // Duplicated subtree: guaranteed CSE fodder.
            inner
                .clone()
                .prop_map(|a| Expr::binary(BinOp::Mul, a.clone(), a)),
            inner.clone().prop_map(|a| Expr::unary(UnOp::Neg, a)),
            inner.clone().prop_map(|a| Expr::unary(UnOp::Not, a)),
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(a, b, is_min)| {
                Expr::Call {
                    func: if is_min { MathFn::Min } else { MathFn::Max },
                    args: vec![a, b],
                }
            }),
            inner.clone().prop_map(|a| Expr::Call {
                func: MathFn::Sqrt,
                args: vec![a],
            }),
        ]
    })
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_expr(4), 1..4).prop_map(|exprs| {
        let n = exprs.len();
        Program {
            statements: exprs
                .into_iter()
                .enumerate()
                .map(|(idx, value)| Stmt {
                    name: if idx + 1 < n {
                        Some(format!("tmp{idx}"))
                    } else {
                        None
                    },
                    value,
                })
                .collect(),
        }
    })
}

/// Slot typing modes the equivalence is checked under.
#[derive(Debug, Clone, Copy)]
enum SlotMode {
    AllF32,
    AllF64,
    Mixed,
}

fn resolver_for(program: &Program, mode: SlotMode) -> MapResolver {
    let mut resolver = MapResolver::new();
    let accesses = AccessExtractor::extract(program);
    for (field, info) in accesses.iter() {
        if info.is_scalar() {
            resolver.insert_scalar(field, Value::F64(1.25));
        }
        for offsets in &info.offsets {
            let v = offsets
                .iter()
                .enumerate()
                .map(|(d, o)| (*o as f64) * (d as f64 + 1.0) * 0.37)
                .sum::<f64>()
                + field.len() as f64
                - 1.4;
            let f32_slot = match mode {
                SlotMode::AllF32 => true,
                SlotMode::AllF64 => false,
                SlotMode::Mixed => (offsets.iter().sum::<i64>()).rem_euclid(2) == 0,
            };
            let value = if f32_slot {
                Value::F32(v as f32)
            } else {
                Value::F64(v)
            };
            resolver.insert_access(field, offsets, value);
        }
    }
    resolver
}

fn bits_match(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// The full differential check for one program and one slot mode:
/// interpreter vs unoptimized bytecode vs optimized bytecode (values,
/// types, and errors), plus the typed and lane tiers when the optimized
/// kernel specializes.
fn check_optimized_equivalence(program: &Program, mode: SlotMode) -> Result<(), TestCaseError> {
    let resolver = resolver_for(program, mode);
    let interpreted = Evaluator::new(&resolver).eval_program(program);
    let optimized = CompiledKernel::compile(program).expect("non-empty programs compile");
    let unoptimized = CompiledKernel::compile_unoptimized(program).unwrap();
    for kernel in [&optimized, &unoptimized] {
        let compiled = kernel.eval(&resolver);
        match (&interpreted, &compiled) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.data_type(), b.data_type());
                prop_assert!(
                    bits_match(a.as_f64(), b.as_f64()),
                    "compiled {:?} differs from interpreted {:?} for `{}`",
                    b,
                    a,
                    program
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "outcome mismatch for `{program}`: interpreted {a:?}, compiled {b:?}"
            ),
        }
    }

    // Typed and lane tiers of the optimized kernel, when they exist.
    let mut slot_types = Vec::with_capacity(optimized.slots().len());
    let mut values = Vec::with_capacity(optimized.slots().len());
    let mut raw = Vec::with_capacity(optimized.slots().len());
    for slot in optimized.slots() {
        let value = resolver
            .resolve(&slot.field, &slot.offsets)
            .expect("resolver covers every access");
        slot_types.push(value.data_type());
        raw.push(value.as_f64());
        values.push(value);
    }
    if let Some(typed) = optimized.specialize(&slot_types) {
        let reference = optimized
            .eval_slots(&values, &mut EvalScratch::default())
            .expect("specialized kernels cannot fail");
        let specialized = typed.eval_slots(&raw, &mut TypedScratch::default());
        prop_assert!(
            bits_match(reference.as_f64(), specialized),
            "typed mismatch for `{}`: {:?} vs {}",
            program,
            reference,
            specialized
        );
        if typed.supports_lanes() {
            const LANES: usize = 4;
            let lanes: Vec<[f64; LANES]> = raw.iter().map(|&v| [v; LANES]).collect();
            let batched = typed.eval_lanes(&lanes, &mut LaneScratch::<LANES>::default());
            for lane in batched {
                prop_assert!(
                    bits_match(specialized, lane),
                    "lane mismatch for `{program}`: {specialized} vs {lane}"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Optimized bytecode is bitwise identical to the unoptimized bytecode
    /// and to the interpreter on all-f32 slots (per-operation rounding).
    #[test]
    fn optimized_matches_interpreter_f32(program in arb_program()) {
        check_optimized_equivalence(&program, SlotMode::AllF32)?;
    }

    /// ... on all-f64 slots.
    #[test]
    fn optimized_matches_interpreter_f64(program in arb_program()) {
        check_optimized_equivalence(&program, SlotMode::AllF64)?;
    }

    /// ... and on mixed f32/f64 slots, stressing promotion across the
    /// select joins.
    #[test]
    fn optimized_matches_interpreter_mixed(program in arb_program()) {
        check_optimized_equivalence(&program, SlotMode::Mixed)?;
    }
}
