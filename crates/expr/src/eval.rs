//! Evaluation of stencil code segments.
//!
//! The evaluator is shared by the load/store reference executor
//! (`stencilflow-reference`) and by the functional mode of the spatial
//! hardware simulator (`stencilflow-sim`): both provide an
//! [`AccessResolver`] that maps field accesses at constant offsets (and
//! scalar symbols) to concrete [`Value`]s, and the evaluator computes the
//! output value of the stencil at one point of the iteration space.

use crate::ast::{BinOp, Expr, MathFn, Program, UnOp};
use crate::error::{ExprError, Result};
use crate::value::{CompareOp, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Resolves field accesses and scalar symbols to runtime values.
///
/// Implementations decide what an access *means*: the reference executor
/// resolves offsets against a dense grid with boundary-condition handling,
/// while the spatial simulator resolves them against shift-register internal
/// buffers.
pub trait AccessResolver {
    /// Resolve an access to `field` at the given constant `offsets`.
    ///
    /// The `offsets` slice has one entry per index used in the access (so a
    /// lower-dimensional access like `a2[i, k]` passes two offsets). Scalar
    /// symbol references pass an empty slice.
    ///
    /// Returns `None` if the symbol cannot be resolved; the evaluator turns
    /// that into [`ExprError::UnresolvedSymbol`].
    fn resolve(&self, field: &str, offsets: &[i64]) -> Option<Value>;
}

/// Simple map-backed resolver, mainly useful in tests and small tools.
///
/// Entries are kept sorted by `(field, offsets)` and looked up by binary
/// search with borrowed keys, so [`AccessResolver::resolve`] performs no
/// allocation (the obvious `BTreeMap<(String, Vec<i64>), _>` representation
/// would have to build an owned key for every lookup).
#[derive(Debug, Clone, Default)]
pub struct MapResolver {
    entries: Vec<((String, Vec<i64>), Value)>,
}

impl MapResolver {
    /// Create an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    fn position(&self, field: &str, offsets: &[i64]) -> std::result::Result<usize, usize> {
        self.entries
            .binary_search_by(|((f, o), _)| match f.as_str().cmp(field) {
                Ordering::Equal => o.as_slice().cmp(offsets),
                other => other,
            })
    }

    /// Register the value returned for an access to `field` at `offsets`.
    pub fn insert_access(&mut self, field: &str, offsets: &[i64], value: Value) {
        match self.position(field, offsets) {
            Ok(found) => self.entries[found].1 = value,
            Err(insert_at) => self
                .entries
                .insert(insert_at, ((field.to_string(), offsets.to_vec()), value)),
        }
    }

    /// Register a scalar symbol.
    pub fn insert_scalar(&mut self, field: &str, value: Value) {
        self.insert_access(field, &[], value);
    }
}

impl AccessResolver for MapResolver {
    fn resolve(&self, field: &str, offsets: &[i64]) -> Option<Value> {
        self.position(field, offsets)
            .ok()
            .map(|found| self.entries[found].1)
    }
}

/// Evaluates code segments against an [`AccessResolver`].
pub struct Evaluator<'a, R: AccessResolver + ?Sized> {
    resolver: &'a R,
}

impl<'a, R: AccessResolver + ?Sized> Evaluator<'a, R> {
    /// Create an evaluator that resolves accesses through `resolver`.
    pub fn new(resolver: &'a R) -> Self {
        Evaluator { resolver }
    }

    /// Evaluate a full code segment, returning the value of its final
    /// (output) statement.
    ///
    /// # Errors
    ///
    /// Returns an error if a symbol cannot be resolved, an unknown local is
    /// referenced, or arithmetic fails (integer division by zero).
    pub fn eval_program(&self, program: &Program) -> Result<Value> {
        let mut locals: BTreeMap<&str, Value> = BTreeMap::new();
        let mut last = None;
        for stmt in &program.statements {
            let value = self.eval_expr(&stmt.value, &locals)?;
            if let Some(name) = &stmt.name {
                locals.insert(name.as_str(), value);
            }
            last = Some(value);
        }
        last.ok_or(ExprError::EmptyProgram)
    }

    /// Evaluate a single expression with the given local-variable bindings.
    pub fn eval_expr(&self, expr: &Expr, locals: &BTreeMap<&str, Value>) -> Result<Value> {
        match expr {
            Expr::IntLit(v) => Ok(Value::I64(*v)),
            Expr::FloatLit(v) => Ok(Value::F64(*v)),
            Expr::Var(name) => {
                if let Some(v) = locals.get(name.as_str()) {
                    Ok(*v)
                } else if let Some(v) = self.resolver.resolve(name, &[]) {
                    Ok(v)
                } else {
                    Err(ExprError::UnresolvedSymbol { name: name.clone() })
                }
            }
            Expr::FieldAccess { field, indices } => {
                let offsets: Vec<i64> = indices.iter().map(|ix| ix.offset).collect();
                self.resolver
                    .resolve(field, &offsets)
                    .ok_or_else(|| ExprError::UnresolvedSymbol {
                        name: format!("{field}{offsets:?}"),
                    })
            }
            Expr::Unary { op, operand } => {
                let v = self.eval_expr(operand, locals)?;
                Ok(match op {
                    UnOp::Neg => v.neg(),
                    UnOp::Not => v.not(),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    let l = self.eval_expr(lhs, locals)?;
                    if !l.as_bool() {
                        return Ok(Value::Bool(false));
                    }
                    let r = self.eval_expr(rhs, locals)?;
                    return Ok(Value::Bool(r.as_bool()));
                }
                if *op == BinOp::Or {
                    let l = self.eval_expr(lhs, locals)?;
                    if l.as_bool() {
                        return Ok(Value::Bool(true));
                    }
                    let r = self.eval_expr(rhs, locals)?;
                    return Ok(Value::Bool(r.as_bool()));
                }
                let l = self.eval_expr(lhs, locals)?;
                let r = self.eval_expr(rhs, locals)?;
                Ok(match op {
                    BinOp::Add => l.add(r),
                    BinOp::Sub => l.sub(r),
                    BinOp::Mul => l.mul(r),
                    BinOp::Div => l.div(r)?,
                    BinOp::Lt => l.compare(r, CompareOp::Lt),
                    BinOp::Gt => l.compare(r, CompareOp::Gt),
                    BinOp::Le => l.compare(r, CompareOp::Le),
                    BinOp::Ge => l.compare(r, CompareOp::Ge),
                    BinOp::Eq => l.compare(r, CompareOp::Eq),
                    BinOp::Ne => l.compare(r, CompareOp::Ne),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                })
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                let c = self.eval_expr(cond, locals)?;
                if c.as_bool() {
                    self.eval_expr(then, locals)
                } else {
                    self.eval_expr(otherwise, locals)
                }
            }
            Expr::Call { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_expr(a, locals)?);
                }
                Ok(eval_math_fn(*func, &values))
            }
        }
    }
}

/// Evaluate a built-in math function on already-evaluated arguments.
///
/// The result type follows the promoted type of the arguments, so `sqrt` of
/// an `f32` pipeline value stays `f32` (matching what the generated hardware
/// would compute).
pub fn eval_math_fn(func: MathFn, args: &[Value]) -> Value {
    let dtype = args
        .iter()
        .map(|v| v.data_type())
        .reduce(|a, b| a.promote(b))
        .unwrap_or(crate::types::DataType::Float64);
    let dtype = if dtype.is_float() {
        dtype
    } else {
        // Math functions always produce floating point.
        crate::types::DataType::Float64
    };
    let a = args.first().map(|v| v.as_f64()).unwrap_or(0.0);
    let b = args.get(1).map(|v| v.as_f64()).unwrap_or(0.0);
    Value::from_f64(math_fn_raw(func, a, b), dtype)
}

/// Raw `f64` math-function evaluation shared by [`eval_math_fn`] and the
/// type-specialized kernels ([`crate::compile::TypedKernel`]). Unary
/// functions ignore `b`. Callers apply the result-type rounding themselves.
pub fn math_fn_raw(func: MathFn, a: f64, b: f64) -> f64 {
    match func {
        MathFn::Sqrt => a.sqrt(),
        MathFn::Abs => a.abs(),
        MathFn::Min => a.min(b),
        MathFn::Max => a.max(b),
        MathFn::Exp => a.exp(),
        MathFn::Log => a.ln(),
        MathFn::Pow => a.powf(b),
        MathFn::Sin => a.sin(),
        MathFn::Cos => a.cos(),
        MathFn::Tan => a.tan(),
        MathFn::Floor => a.floor(),
        MathFn::Ceil => a.ceil(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn eval(code: &str, resolver: &MapResolver) -> Result<Value> {
        let prog = parse_program(code).unwrap();
        Evaluator::new(resolver).eval_program(&prog)
    }

    #[test]
    fn evaluates_arithmetic() {
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(2.0));
        r.insert_access("b", &[0], Value::F32(3.0));
        assert_eq!(eval("a[i] * b[i] + 1.0", &r).unwrap().as_f64(), 7.0);
        assert_eq!(eval("(a[i] + b[i]) / 2.0", &r).unwrap().as_f64(), 2.5);
    }

    #[test]
    fn evaluates_locals_in_order() {
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(4.0));
        let v = eval("x = a[i] * 2.0; y = x + 1.0; y * y", &r).unwrap();
        assert_eq!(v.as_f64(), 81.0);
    }

    #[test]
    fn evaluates_ternary_branches() {
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(-2.0));
        assert_eq!(eval("a[i] > 0.0 ? a[i] : -a[i]", &r).unwrap().as_f64(), 2.0);
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(5.0));
        assert_eq!(eval("a[i] > 0.0 ? a[i] : -a[i]", &r).unwrap().as_f64(), 5.0);
    }

    #[test]
    fn evaluates_math_functions() {
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(9.0));
        r.insert_access("b", &[0], Value::F32(-3.0));
        assert_eq!(eval("sqrt(a[i])", &r).unwrap().as_f64(), 3.0);
        assert_eq!(eval("abs(b[i])", &r).unwrap().as_f64(), 3.0);
        assert_eq!(eval("min(a[i], abs(b[i]))", &r).unwrap().as_f64(), 3.0);
        assert_eq!(eval("max(a[i], b[i])", &r).unwrap().as_f64(), 9.0);
        assert_eq!(eval("pow(b[i], 2.0)", &r).unwrap().as_f64(), 9.0);
    }

    #[test]
    fn short_circuit_logic() {
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(0.0));
        // The right operand would divide by zero if evaluated eagerly on
        // integers; short circuiting avoids it.
        let v = eval("a[i] != 0.0 && 1 / 0 > 0 ? 1.0 : 2.0", &r).unwrap();
        assert_eq!(v.as_f64(), 2.0);
    }

    #[test]
    fn unresolved_symbol_errors() {
        let r = MapResolver::new();
        assert!(matches!(
            eval("missing[i]", &r),
            Err(ExprError::UnresolvedSymbol { .. })
        ));
        assert!(matches!(
            eval("missing_scalar + 1.0", &r),
            Err(ExprError::UnresolvedSymbol { .. })
        ));
    }

    #[test]
    fn scalar_symbols_resolve() {
        let mut r = MapResolver::new();
        r.insert_scalar("dt", Value::F32(0.25));
        r.insert_access("a", &[0], Value::F32(8.0));
        assert_eq!(eval("a[i] * dt", &r).unwrap().as_f64(), 2.0);
    }

    #[test]
    fn f32_pipeline_stays_f32() {
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(2.0));
        let v = eval("sqrt(a[i])", &r).unwrap();
        assert_eq!(v.data_type(), crate::types::DataType::Float32);
    }
}
